//! Cross-crate pipeline tests: synthetic population → marketplace → crawl →
//! quantify → reports.

use fairank::core::fairness::FairnessCriterion;
use fairank::data::filter::Filter;
use fairank::marketplace::crawler::crawl_marketplace;
use fairank::marketplace::scenario::{qapa_like, taskrabbit_like};
use fairank::marketplace::Transparency;
use fairank::session::report::{auditor_report, end_user_report, job_owner_sweep};

#[test]
fn taskrabbit_crawl_detects_injected_rating_bias() {
    let market = taskrabbit_like(400, 42).unwrap();
    let crawl = crawl_marketplace(
        &market,
        &Transparency::full(),
        &FairnessCriterion::default(),
    )
    .unwrap();
    assert_eq!(crawl.jobs.len(), 6);
    let ranked = crawl.ranked_by_unfairness();
    // The pure-rating job concentrates every injected rating penalty.
    assert_eq!(
        ranked[0].job_id, "rated-anything",
        "expected the rating-only job to be most unfair; got {:?}",
        ranked.iter().map(|j| &j.job_id).collect::<Vec<_>>()
    );
}

#[test]
fn auditor_names_the_injected_victim_groups() {
    let market = taskrabbit_like(500, 7).unwrap();
    let report = auditor_report(
        &market,
        &Transparency::full(),
        &FairnessCriterion::default(),
        2,
        25,
    )
    .unwrap();
    let rated = report
        .rows
        .iter()
        .find(|r| r.job_id == "rated-anything")
        .unwrap();
    let least = rated.least_favored.as_deref().unwrap();
    assert!(
        least.contains("Female") || least.contains("African-American"),
        "least favored should reflect the injected bias, got {least}"
    );
    assert!(rated.least_favored_advantage < -0.05);
}

#[test]
fn qapa_marketplace_full_pipeline() {
    let market = qapa_like(300, 3).unwrap();
    let report = auditor_report(
        &market,
        &Transparency::full(),
        &FairnessCriterion::default(),
        1,
        15,
    )
    .unwrap();
    assert_eq!(report.rows.len(), 5);
    // The customer-rating job should show the injected origin bias.
    let rated = report
        .rows
        .iter()
        .find(|r| r.job_id == "best-rated")
        .unwrap();
    let least = rated.least_favored.as_deref().unwrap();
    assert!(
        least.contains("Maghreb") || least.contains("Afrique") || least.contains("origin"),
        "got {least}"
    );
}

#[test]
fn job_owner_sweep_reduces_worst_case_unfairness() {
    let market = taskrabbit_like(300, 11).unwrap();
    let base = market.job("deep-clean").unwrap().scoring.clone();
    let report = job_owner_sweep(
        market.workers(),
        &base,
        "rating",
        &[0.0, 0.5, 1.0],
        &FairnessCriterion::default(),
    )
    .unwrap();
    let fairest = &report.rows[report.fairest];
    let full_rating = report.rows.last().unwrap();
    assert!(fairest.unfairness <= full_rating.unfairness);
}

#[test]
fn end_user_gets_consistent_cross_job_ranking() {
    let market = taskrabbit_like(300, 13).unwrap();
    let report = end_user_report(
        &market,
        &Filter::all().eq("gender", "Female"),
        &FairnessCriterion::default(),
    )
    .unwrap();
    assert_eq!(report.rows.len(), 6);
    // Percentiles are sane and sorted.
    for row in &report.rows {
        assert!((0.0..=1.0).contains(&row.group_mean_percentile));
        assert!(row.group_size > 0);
    }
    for w in report.rows.windows(2) {
        assert!(w[0].group_mean_percentile >= w[1].group_mean_percentile);
    }
}

#[test]
fn blackbox_crawl_is_weaker_but_not_blind() {
    let market = taskrabbit_like(400, 19).unwrap();
    let criterion = FairnessCriterion::default();
    let full = crawl_marketplace(&market, &Transparency::full(), &criterion).unwrap();
    let blackbox = crawl_marketplace(&market, &Transparency::blackbox(10), &criterion).unwrap();
    let full_max = full.ranked_by_unfairness()[0].outcome.unfairness;
    let bb_max = blackbox.ranked_by_unfairness()[0].outcome.unfairness;
    // Blackbox observation still detects unfairness…
    assert!(bb_max > 0.0);
    // …and full transparency finds at least a comparable amount.
    assert!(full_max > 0.0);
}
