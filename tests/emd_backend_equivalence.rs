//! The differential conformance suite of the pluggable EMD backend layer.
//!
//! Every [`EmdBackend`] implementation is pinned against the reference
//! semantics on random histograms (proptest), on degenerate shapes (empty
//! bins, single-leaf nodes, all-equal scores), and on real leaf sets from
//! the seed datasets (Table 1 and the biased synthetic population). The
//! pinned bounds, per backend:
//!
//! * `batched` vs `1d` — **bit-identical** (0 ULP): the batched backend
//!   hoists normalized masses but folds every pair in the reference
//!   summation order.
//! * `kernel` vs `1d` — **bit-identical** (0 ULP): the structure-of-arrays
//!   fold runs the exact per-pair IEEE operation sequence of the reference,
//!   just transposed for vectorization.
//! * `transport` vs `1d` — within `1e-9` (successive-shortest-path solver
//!   epsilon on ≤ 64-bin probability vectors).
//! * every backend — **bitwise symmetric**: `d(a, b)` and `d(b, a)` have
//!   equal bits (the transport solver canonicalizes its input order).
//!
//! The engine-level half property-tests that a `SplitEngine` running the
//! batched backend reproduces the per-pair `1d` engine bit for bit while
//! never doing more memo/EMD evaluations, and that QUANTIFY's search
//! results do not depend on the backend choice.

use proptest::prelude::*;

use fairank::core::emd::{Emd, EmdBackendKind};
use fairank::core::engine::SplitEngine;
use fairank::core::fairness::{Aggregator, FairnessCriterion, Objective};
use fairank::core::histogram::{Histogram, HistogramSpec};
use fairank::core::partition::Partition;
use fairank::core::quantify::Quantify;
use fairank::core::scoring::ScoreSource;
use fairank::core::space::{ProtectedAttribute, RankingSpace};

/// Pinned agreement bound of the transport solver vs the 1-D closed form.
const TRANSPORT_EPS: f64 = 1e-9;

/// A set of 2–6 random histograms sharing one random spec (1–24 bins,
/// per-bin counts up to 40 — including all-zero, i.e. empty, histograms).
fn histogram_set() -> impl Strategy<Value = Vec<Histogram>> {
    (1usize..=24, 2usize..=6).prop_flat_map(|(bins, count)| {
        prop::collection::vec(prop::collection::vec(0u64..=40, bins), count).prop_map(
            move |count_vecs| {
                let spec = HistogramSpec::unit(bins).expect("valid spec");
                count_vecs
                    .into_iter()
                    .map(|counts| Histogram::from_counts(spec, counts))
                    .collect()
            },
        )
    })
}

/// A random small ranking space (same shape as the engine-equivalence
/// suite): 2–4 protected attributes with 2–4 values each, 8–60 rows.
fn ranking_space() -> impl Strategy<Value = RankingSpace> {
    (2usize..=4, 8usize..=60).prop_flat_map(|(n_attrs, n_rows)| {
        let attrs = prop::collection::vec(
            (2u32..=4).prop_flat_map(move |card| prop::collection::vec(0..card, n_rows)),
            n_attrs,
        );
        let scores = prop::collection::vec(0.0f64..=1.0, n_rows);
        (attrs, scores).prop_map(|(attr_codes, scores)| {
            let attributes = attr_codes
                .into_iter()
                .enumerate()
                .map(|(i, codes)| {
                    let card = codes.iter().copied().max().unwrap_or(0) + 1;
                    ProtectedAttribute {
                        name: format!("a{i}"),
                        codes,
                        labels: (0..card).map(|c| format!("v{c}")).collect(),
                    }
                })
                .collect();
            RankingSpace::new(attributes, scores).expect("generated space is valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pair_distances_conform_on_random_histograms(hists in histogram_set()) {
        let one_d = Emd::new(EmdBackendKind::OneD);
        let transport = Emd::new(EmdBackendKind::Transport);
        let batched = Emd::new(EmdBackendKind::Batched);
        for a in &hists {
            for b in &hists {
                let reference = one_d.distance(a, b).unwrap();
                // Batched: bit-identical to the closed form.
                let d = batched.distance(a, b).unwrap();
                prop_assert_eq!(reference.to_bits(), d.to_bits(), "batched {} vs {}", d, reference);
                // Transport: within the pinned solver epsilon.
                let d = transport.distance(a, b).unwrap();
                prop_assert!(
                    (d - reference).abs() <= TRANSPORT_EPS,
                    "transport {} vs 1d {}", d, reference
                );
                // Every backend: bitwise symmetric.
                for kind in EmdBackendKind::all() {
                    let emd = Emd::new(kind);
                    let ab = emd.distance(a, b).unwrap();
                    let ba = emd.distance(b, a).unwrap();
                    prop_assert_eq!(ab.to_bits(), ba.to_bits(), "{:?}: {} vs {}", kind, ab, ba);
                }
            }
        }
    }

    #[test]
    fn pairwise_batches_conform_on_random_histograms(hists in histogram_set()) {
        let one_d = Emd::new(EmdBackendKind::OneD);
        for kind in EmdBackendKind::all() {
            let emd = Emd::new(kind);
            let batch = emd.pairwise(&hists).unwrap();
            prop_assert_eq!(batch.len(), hists.len() * (hists.len() - 1) / 2);
            let mut k = 0;
            for i in 0..hists.len() {
                for j in (i + 1)..hists.len() {
                    // Each batch entry equals that backend's own pair
                    // distance bit for bit (order preserved), and the 1-D
                    // family is bit-identical to the reference closed form.
                    let own = emd.distance(&hists[i], &hists[j]).unwrap();
                    prop_assert_eq!(batch[k].to_bits(), own.to_bits(), "{:?}", kind);
                    if kind != EmdBackendKind::Transport {
                        let reference = one_d.distance(&hists[i], &hists[j]).unwrap();
                        prop_assert_eq!(batch[k].to_bits(), reference.to_bits());
                    }
                    k += 1;
                }
            }
            // Cross batches agree with the flattened pair loop too.
            let (left, right) = hists.split_at(hists.len() / 2);
            let cross = emd.cross(left, right).unwrap();
            let mut k = 0;
            for a in left {
                for b in right {
                    prop_assert_eq!(
                        cross[k].to_bits(),
                        emd.distance(a, b).unwrap().to_bits()
                    );
                    k += 1;
                }
            }
        }
    }

    #[test]
    fn batched_engine_is_bit_identical_and_never_busier(space in ranking_space()) {
        for objective in [Objective::MostUnfair, Objective::LeastUnfair] {
            let one_d = FairnessCriterion::new(objective, Aggregator::Mean);
            let batched = one_d.with_emd(Emd::new(EmdBackendKind::Batched));
            let a = Quantify::new(one_d).run_space(&space).unwrap();
            let b = Quantify::new(batched).run_space(&space).unwrap();
            prop_assert_eq!(
                a.unfairness.to_bits(),
                b.unfairness.to_bits(),
                "{:?}: {} vs {}", objective, a.unfairness, b.unfairness
            );
            prop_assert_eq!(&a.partitions, &b.partitions);
            prop_assert_eq!(&a.tree, &b.tree);
            prop_assert_eq!(a.stats.candidate_splits, b.stats.candidate_splits);
            prop_assert_eq!(a.stats.histograms_built, b.stats.histograms_built);
            // The batch path replaces the per-pair memo walk: never more
            // memo/EMD evaluations, and the batch counter is live.
            prop_assert!(
                b.stats.emd_calls + b.stats.emd_cache_hits
                    <= a.stats.emd_calls + a.stats.emd_cache_hits
            );
            prop_assert!(b.stats.pairwise_batches > 0);
            prop_assert_eq!(a.stats.pairwise_batches, 0);
        }
    }

    #[test]
    fn transport_engine_still_matches_naive_evaluation(space in ranking_space()) {
        // The canonical (unordered) memo key must stay a pure optimization
        // for the transport backend too: engine == naive bit for bit.
        let criterion = FairnessCriterion::default()
            .with_emd(Emd::new(EmdBackendKind::Transport));
        let engine = Quantify::new(criterion).run_space(&space).unwrap();
        let naive = Quantify::new(criterion)
            .with_naive_evaluation()
            .run_space(&space)
            .unwrap();
        prop_assert_eq!(engine.unfairness.to_bits(), naive.unfairness.to_bits());
        prop_assert_eq!(&engine.partitions, &naive.partitions);
        prop_assert_eq!(&engine.tree, &naive.tree);
    }
}

// ---- degenerate shapes ------------------------------------------------

#[test]
fn empty_bin_conventions_hold_for_every_backend() {
    let spec = HistogramSpec::unit(10).unwrap();
    let empty = Histogram::empty(spec);
    let full = Histogram::from_scores(spec, [0.3, 0.8]);
    for kind in EmdBackendKind::all() {
        let emd = Emd::new(kind);
        assert_eq!(emd.distance(&empty, &empty).unwrap(), 0.0, "{kind:?}");
        assert_eq!(emd.distance(&empty, &full).unwrap(), 1.0, "{kind:?}");
        assert_eq!(emd.distance(&full, &empty).unwrap(), 1.0, "{kind:?}");
        let batch = emd.pairwise(&[empty.clone(), full.clone(), empty.clone()]).unwrap();
        assert_eq!(batch, vec![1.0, 0.0, 1.0], "{kind:?}");
    }
}

#[test]
fn all_equal_scores_are_zero_distance_under_every_backend() {
    // Every score in one bin: any two such histograms are identical
    // distributions, whatever their sizes.
    let spec = HistogramSpec::unit(10).unwrap();
    let a = Histogram::from_scores(spec, std::iter::repeat_n(0.55, 3));
    let b = Histogram::from_scores(spec, std::iter::repeat_n(0.55, 17));
    for kind in EmdBackendKind::all() {
        let d = Emd::new(kind).distance(&a, &b).unwrap();
        assert!(d.abs() < 1e-12, "{kind:?} gave {d}");
    }
}

#[test]
fn single_leaf_nodes_aggregate_to_zero_under_every_backend() {
    let g = ProtectedAttribute::from_values("g", &["a", "a", "b"]);
    let space = RankingSpace::new(vec![g], vec![0.1, 0.2, 0.9]).unwrap();
    for kind in EmdBackendKind::all() {
        let criterion = FairnessCriterion::default().with_emd(Emd::new(kind));
        let mut engine = SplitEngine::new(&space, criterion);
        // A single partition has no pairs: unfairness is 0 by convention.
        let u = engine.unfairness(&[Partition::root(&space)]).unwrap();
        assert_eq!(u, 0.0, "{kind:?}");
        // ... and versus an empty sibling set aggregates to 0 too.
        let v = engine.versus(&Partition::root(&space), &[]).unwrap();
        assert_eq!(v, 0.0, "{kind:?}");
    }
}

#[test]
fn degenerate_single_bin_spec_conforms() {
    // One bin: every non-empty histogram is the same distribution.
    let spec = HistogramSpec::unit(1).unwrap();
    let a = Histogram::from_scores(spec, [0.1, 0.9]);
    let b = Histogram::from_scores(spec, [0.5]);
    for kind in EmdBackendKind::all() {
        let d = Emd::new(kind).distance(&a, &b).unwrap();
        assert!(d.abs() < 1e-12, "{kind:?} gave {d}");
    }
}

// ---- non-finite and extreme score inputs ------------------------------

#[test]
fn non_finite_scores_are_rejected_before_any_backend_runs() {
    use fairank::core::error::CoreError;
    // NaN and ±inf scores must surface as a structured validation error at
    // space construction — no backend ever sees them, so no backend can
    // propagate NaN into trees or unfairness values.
    for (bad, row) in [
        (f64::NAN, 0usize),
        (f64::INFINITY, 1),
        (f64::NEG_INFINITY, 2),
        (-f64::NAN, 3),
    ] {
        let mut scores = vec![0.1, 0.4, 0.6, 0.9];
        scores[row] = bad;
        let g = ProtectedAttribute::from_values("g", &["a", "b", "a", "b"]);
        let err = RankingSpace::new(vec![g], scores).unwrap_err();
        match err {
            CoreError::NonFiniteScore { row: r, value } => {
                assert_eq!(r, row, "error pinpoints the offending row");
                assert!(!value.is_finite());
            }
            other => panic!("expected NonFiniteScore, got {other:?}"),
        }
    }
}

#[test]
fn denormal_and_inf_adjacent_scores_stay_finite_under_every_backend() {
    // Finite-but-extreme scores are legal input: subnormals underflow-prone
    // on the low end, `f64::MAX`-scale values overflow-prone on the high
    // end. Every backend must produce finite, mutually conforming results —
    // never a NaN leaking into the search.
    let denormal = vec![
        f64::from_bits(1), // smallest positive subnormal
        f64::MIN_POSITIVE,
        1e-300,
        0.0,
        0.25,
        0.5,
        0.75,
        1.0,
    ];
    // Near the top of the finite range, but with headroom: at full
    // `f64::MAX` the *correct* EMD (≈ total mass × a ~1e307 bin width)
    // itself exceeds f64::MAX — overflow in the true answer, not a backend
    // defect. MAX/64 keeps the magnitudes astronomical while the exact
    // distances stay representable.
    let big = f64::MAX / 64.0;
    let inf_adjacent = vec![big, big / 2.0, big / 4.0, 1.0, 0.0, big, big / 8.0, 0.5];
    for scores in [denormal, inf_adjacent] {
        let g = ProtectedAttribute::from_values("g", &["a", "b", "a", "b", "a", "b", "a", "b"]);
        let h = ProtectedAttribute::from_values("h", &["x", "x", "y", "y", "x", "x", "y", "y"]);
        let space = RankingSpace::new(vec![g, h], scores).expect("finite scores are valid");
        let reference = Quantify::new(FairnessCriterion::default().fit_range(&space))
            .run_space(&space)
            .expect("reference run");
        assert!(
            reference.unfairness.is_finite(),
            "reference unfairness went non-finite: {}",
            reference.unfairness
        );
        for kind in EmdBackendKind::all() {
            let criterion = FairnessCriterion::default()
                .with_emd(Emd::new(kind))
                .fit_range(&space);
            let outcome = Quantify::new(criterion).run_space(&space).expect("runs");
            assert!(
                outcome.unfairness.is_finite(),
                "{kind:?} produced non-finite unfairness {}",
                outcome.unfairness
            );
            // The 1-D family must still conform bit for bit. Transport is
            // only epsilon-bound, and at f64::MAX magnitudes its solver
            // epsilon can legitimately flip a near-tie split decision — so
            // it is held to finiteness only here (its agreement on normal
            // data is pinned by the suites above).
            if kind != EmdBackendKind::Transport {
                assert_eq!(outcome.partitions, reference.partitions, "{kind:?}");
                assert_eq!(outcome.tree, reference.tree, "{kind:?}");
                assert_eq!(
                    outcome.unfairness.to_bits(),
                    reference.unfairness.to_bits(),
                    "{kind:?}: {} vs {}",
                    outcome.unfairness,
                    reference.unfairness
                );
            }
        }
    }
}

// ---- real leaf sets from the seed datasets ----------------------------

/// Runs QUANTIFY on a prepared space under every backend and checks the
/// conformance contract: identical search results everywhere, bit-identical
/// unfairness for the 1-D family, `TRANSPORT_EPS` agreement for transport.
fn assert_backends_agree_on(space: &RankingSpace) {
    let reference = Quantify::new(FairnessCriterion::default().fit_range(space))
        .run_space(space)
        .expect("reference run");
    for kind in EmdBackendKind::all() {
        let criterion = FairnessCriterion::default()
            .with_emd(Emd::new(kind))
            .fit_range(space);
        let outcome = Quantify::new(criterion).run_space(space).expect("runs");
        assert_eq!(
            outcome.partitions, reference.partitions,
            "{kind:?} found a different partitioning"
        );
        assert_eq!(outcome.tree, reference.tree, "{kind:?} tree differs");
        match kind {
            EmdBackendKind::Transport => assert!(
                (outcome.unfairness - reference.unfairness).abs() <= TRANSPORT_EPS,
                "{kind:?}: {} vs {}",
                outcome.unfairness,
                reference.unfairness
            ),
            _ => assert_eq!(
                outcome.unfairness.to_bits(),
                reference.unfairness.to_bits(),
                "{kind:?}: {} vs {}",
                outcome.unfairness,
                reference.unfairness
            ),
        }
    }
}

#[test]
fn backends_agree_on_the_table1_leaf_sets() {
    let space = fairank::data::paper::table1_space().expect("paper space builds");
    assert_backends_agree_on(&space);
}

#[test]
fn backends_agree_on_the_biased_synthetic_population() {
    let dataset = fairank::data::synth::biased_crowdsourcing_spec(300, 11)
        .generate()
        .expect("generates");
    let scoring = fairank::core::scoring::LinearScoring::builder()
        .weight("rating", 0.7)
        .weight("language_test", 0.3)
        .build(&dataset)
        .expect("builds");
    let space = dataset
        .to_space(&ScoreSource::Function(scoring))
        .expect("space");
    assert_backends_agree_on(&space);
}
