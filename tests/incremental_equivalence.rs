//! Differential suite for the incremental delta-evaluation subsystem:
//! random churn sequences (arrivals, departures, rescores — including
//! emptying a histogram bin and re-filling it) must leave a
//! `DeltaEngine` bitwise-identical to a from-scratch `Quantify` run over
//! the mutated space, under every EMD backend, while never evaluating
//! more EMDs than the full recompute it replaces.

use proptest::prelude::*;

use fairank::core::emd::{Emd, EmdBackendKind};
use fairank::core::fairness::{Aggregator, FairnessCriterion, Objective};
use fairank::core::incremental::DeltaEngine;
use fairank::core::quantify::{Quantify, QuantifyOutcome};
use fairank::core::space::{ProtectedAttribute, RankingSpace, SpaceDelta};

// ---------------------------------------------------------------- helpers

/// A random small ranking space: 2–3 protected attributes with 2–4 values
/// each, 10–40 individuals, scores in [0, 1].
fn ranking_space() -> impl Strategy<Value = RankingSpace> {
    (2usize..=3, 10usize..=40).prop_flat_map(|(n_attrs, n_rows)| {
        let attrs = prop::collection::vec(
            (2u32..=4).prop_flat_map(move |card| prop::collection::vec(0..card, n_rows)),
            n_attrs,
        );
        let scores = prop::collection::vec(0.0f64..=1.0, n_rows);
        (attrs, scores).prop_map(|(attr_codes, scores)| {
            let attributes = attr_codes
                .into_iter()
                .enumerate()
                .map(|(i, codes)| {
                    let card = codes.iter().copied().max().unwrap_or(0) + 1;
                    ProtectedAttribute {
                        name: format!("a{i}"),
                        codes,
                        labels: (0..card).map(|c| format!("v{c}")).collect(),
                    }
                })
                .collect();
            RankingSpace::new(attributes, scores).expect("generated space is valid")
        })
    })
}

/// An abstract churn op; row/label choices are seeds resolved against the
/// *current* population at apply time so sequences stay valid as rows
/// arrive and depart.
#[derive(Debug, Clone, Copy)]
enum ChurnOp {
    /// Rescore row `seed % population` to `score`.
    Rescore { seed: u32, score: f64 },
    /// Insert a row whose label for attribute `i` is picked by
    /// `(seed + i) % labels`, with score `score`.
    Insert { seed: u32, score: f64 },
    /// Remove row `seed % population` (skipped when only one row remains).
    Remove { seed: u32 },
}

fn churn_op() -> impl Strategy<Value = ChurnOp> {
    (0u8..3, 0u32..u32::MAX, 0.0f64..=1.0).prop_map(|(kind, seed, score)| match kind {
        0 => ChurnOp::Rescore { seed, score },
        1 => ChurnOp::Insert { seed, score },
        _ => ChurnOp::Remove { seed },
    })
}

/// Resolves abstract ops against the engine's current space into one
/// concrete `SpaceDelta` batch.
fn resolve_batch(space: &RankingSpace, ops: &[ChurnOp]) -> SpaceDelta {
    let mut delta = SpaceDelta::new();
    // Track population as the batch itself mutates it: ops in one delta
    // apply sequentially, so later row indices must be valid *then*.
    let mut population = space.num_individuals();
    for op in ops {
        match *op {
            ChurnOp::Rescore { seed, score } => {
                delta = delta.rescore((seed as usize % population) as u32, score);
            }
            ChurnOp::Insert { seed, score } => {
                let labels: Vec<String> = space
                    .attributes()
                    .iter()
                    .enumerate()
                    .map(|(i, attr)| attr.labels[(seed as usize + i) % attr.labels.len()].clone())
                    .collect();
                delta = delta.insert(labels, score);
                population += 1;
            }
            ChurnOp::Remove { seed } => {
                if population > 1 {
                    delta = delta.remove((seed as usize % population) as u32);
                    population -= 1;
                }
            }
        }
    }
    delta
}

fn all_backends() -> [EmdBackendKind; 4] {
    [
        EmdBackendKind::OneD,
        EmdBackendKind::Transport,
        EmdBackendKind::Batched,
        EmdBackendKind::Kernel,
    ]
}

fn criterion_for(backend: EmdBackendKind) -> FairnessCriterion {
    FairnessCriterion::new(Objective::MostUnfair, Aggregator::Mean).with_emd(Emd::new(backend))
}

fn assert_bitwise_equal(backend: EmdBackendKind, delta: &QuantifyOutcome, full: &QuantifyOutcome) {
    assert_eq!(
        delta.unfairness.to_bits(),
        full.unfairness.to_bits(),
        "{backend:?}: unfairness bits diverged (delta {}, full {})",
        delta.unfairness,
        full.unfairness
    );
    assert_eq!(delta.partitions, full.partitions, "{backend:?}");
    assert_eq!(delta.tree, full.tree, "{backend:?}");
    assert_eq!(
        delta.stats.nodes_evaluated, full.stats.nodes_evaluated,
        "{backend:?}"
    );
    assert_eq!(
        delta.stats.splits_performed, full.stats.splits_performed,
        "{backend:?}"
    );
    assert_eq!(
        delta.stats.candidate_splits, full.stats.candidate_splits,
        "{backend:?}"
    );
}

// ---------------------------------------------------------------- proptest

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Random churn batches: after every apply + requantify, the delta
    // outcome is bitwise-identical to a fresh full recompute over the
    // mutated space, for all four EMD backends, and the delta run never
    // evaluates more EMDs than the full one.
    #[test]
    fn random_churn_matches_full_recompute(
        space in ranking_space(),
        batches in prop::collection::vec(prop::collection::vec(churn_op(), 1..6), 1..3),
    ) {
        for backend in all_backends() {
            let search = Quantify::new(criterion_for(backend)).with_min_partition_size(2);
            let mut engine = DeltaEngine::new(space.clone(), search.clone()).unwrap();
            engine.requantify().unwrap();
            for ops in &batches {
                let delta_ops = resolve_batch(engine.space(), ops);
                engine.apply(&delta_ops).unwrap();
                let delta = engine.requantify().unwrap();
                let full = search.run_space(engine.space()).unwrap();
                assert_bitwise_equal(backend, &delta, &full);
                prop_assert!(
                    delta.stats.emd_calls <= full.stats.emd_calls,
                    "{backend:?}: delta evaluated {} EMDs, full recompute {}",
                    delta.stats.emd_calls,
                    full.stats.emd_calls
                );
            }
        }
    }

    // The same churn sequence applied twice from the same starting space
    // produces byte-for-byte identical outcomes (modulo wall-clock).
    #[test]
    fn churn_replay_is_deterministic(
        space in ranking_space(),
        ops in prop::collection::vec(churn_op(), 1..8),
    ) {
        let search = Quantify::default().with_min_partition_size(2);
        let run = |space: &RankingSpace| -> QuantifyOutcome {
            let mut engine = DeltaEngine::new(space.clone(), search.clone()).unwrap();
            engine.requantify().unwrap();
            let delta_ops = resolve_batch(engine.space(), &ops);
            engine.apply(&delta_ops).unwrap();
            engine.requantify().unwrap()
        };
        let first = run(&space);
        let second = run(&space);
        prop_assert_eq!(first.unfairness.to_bits(), second.unfairness.to_bits());
        prop_assert_eq!(first.partitions, second.partitions);
        prop_assert_eq!(first.tree, second.tree);
        // Stats carry no timing, so whole structs must agree.
        prop_assert_eq!(first.stats, second.stats);
    }
}

// ------------------------------------------------------- directed scenarios

/// Empties one score-histogram bin entirely (every row that maps to it
/// rescored away), requantifies, then re-fills the bin — delta must stay
/// bitwise-identical to full at every step, under every backend.
#[test]
fn emptying_and_refilling_a_bin_stays_bitwise_identical() {
    // Two clusters: 6 rows near 0.05 (bottom bin of the default 10-bin
    // [0,1] histogram) and 10 spread across upper bins.
    let genders: Vec<&str> = (0..16).map(|i| if i % 2 == 0 { "F" } else { "M" }).collect();
    let regions: Vec<String> = (0..16).map(|i| format!("r{}", i % 3)).collect();
    let region_refs: Vec<&str> = regions.iter().map(String::as_str).collect();
    let scores: Vec<f64> = (0..16)
        .map(|i| {
            if i < 6 {
                0.02 + i as f64 * 0.01 // all inside bin 0
            } else {
                0.35 + (i - 6) as f64 * 0.07
            }
        })
        .collect();
    let space = RankingSpace::new(
        vec![
            ProtectedAttribute::from_values("gender", &genders),
            ProtectedAttribute::from_values("region", &region_refs),
        ],
        scores,
    )
    .unwrap();

    for backend in all_backends() {
        let search = Quantify::new(criterion_for(backend)).with_min_partition_size(2);
        let mut engine = DeltaEngine::new(space.clone(), search.clone()).unwrap();
        engine.requantify().unwrap();

        // Drain bin 0: rescore the six low rows into upper bins.
        let mut drain = SpaceDelta::new();
        for row in 0..6u32 {
            drain = drain.rescore(row, 0.55 + row as f64 * 0.05);
        }
        engine.apply(&drain).unwrap();
        let delta = engine.requantify().unwrap();
        let full = search.run_space(engine.space()).unwrap();
        assert_bitwise_equal(backend, &delta, &full);

        // Re-fill it: three rescores back down plus two fresh arrivals
        // landing in bin 0, and one departure for good measure.
        let refill = SpaceDelta::new()
            .rescore(0, 0.03)
            .rescore(2, 0.08)
            .rescore(4, 0.01)
            .insert(vec!["F", "r1"], 0.05)
            .insert(vec!["M", "r2"], 0.09)
            .remove(10);
        engine.apply(&refill).unwrap();
        let delta = engine.requantify().unwrap();
        let full = search.run_space(engine.space()).unwrap();
        assert_bitwise_equal(backend, &delta, &full);
        assert!(
            delta.stats.emd_calls <= full.stats.emd_calls,
            "{backend:?}: delta evaluated {} EMDs, full recompute {}",
            delta.stats.emd_calls,
            full.stats.emd_calls
        );
        assert!(
            delta.stats.delta_reused_histograms > 0,
            "{backend:?}: refill run reused nothing"
        );
    }
}
