//! Integration tests for the paper's published artifacts (experiments E1
//! and E2): Table 1 scores and the Figure 2 partitioning.

use fairank::core::emd::{Emd, EmdBackendKind};
use fairank::core::fairness::{Aggregator, FairnessCriterion, Objective};
use fairank::core::partition::is_full_disjoint;
use fairank::core::quantify::Quantify;
use fairank::core::scoring::ScoreSource;
use fairank::data::paper;

#[test]
fn e1_table1_scores_match_published_values() {
    let dataset = paper::table1_dataset();
    let scores = ScoreSource::Function(paper::table1_scoring())
        .resolve(&dataset)
        .expect("scoring resolves");
    assert_eq!(scores.len(), 10);
    for (i, (got, want)) in scores.iter().zip(paper::TABLE1_FW).enumerate() {
        assert!(
            (got - want).abs() < 1e-9,
            "w{}: computed {got}, published {want}",
            i + 1
        );
    }
}

#[test]
fn e2_figure2_partitioning_structure_and_unfairness() {
    let space = paper::table1_space().expect("table 1 space");
    let parts = paper::figure2_partitioning(&space);
    assert_eq!(parts.len(), 4);
    assert!(is_full_disjoint(&parts, 10));

    // Figure 2's member sets.
    let by_label: Vec<(String, Vec<u32>)> = parts
        .iter()
        .map(|p| (p.label(&space), p.rows.clone()))
        .collect();
    let find = |label: &str| -> &Vec<u32> {
        &by_label
            .iter()
            .find(|(l, _)| l == label)
            .unwrap_or_else(|| panic!("missing partition {label}"))
            .1
    };
    // w1,w5,w7,w10 are rows 0,4,6,9; w2,w6,w8,w9 are rows 1,5,7,8.
    assert_eq!(find("gender=Female"), &vec![0, 4, 6, 9]);
    assert_eq!(find("gender=Male ∧ language=English"), &vec![1, 5, 7, 8]);
    assert_eq!(find("gender=Male ∧ language=Indian"), &vec![2]);
    assert_eq!(find("gender=Male ∧ language=Other"), &vec![3]);

    // Average pairwise EMD of the partitioning is a stable, positive value.
    let criterion = FairnessCriterion::default();
    let u = criterion.unfairness(&parts, space.scores()).unwrap();
    assert!(u > 0.2 && u < 0.5, "unexpected unfairness {u}");

    // Both EMD backends agree on it.
    let transport = FairnessCriterion::default().with_emd(Emd::new(EmdBackendKind::Transport));
    let u2 = transport.unfairness(&parts, space.scores()).unwrap();
    assert!((u - u2).abs() < 1e-9);
}

#[test]
fn quantify_beats_or_matches_figure2_on_most_unfair() {
    let space = paper::table1_space().unwrap();
    let criterion = FairnessCriterion::default();
    let figure2 = paper::figure2_unfairness(&criterion).unwrap();
    let outcome = Quantify::new(criterion).run_space(&space).unwrap();
    assert!(
        outcome.unfairness >= figure2 - 1e-12,
        "greedy {} < figure2 {}",
        outcome.unfairness,
        figure2
    );
    assert!(is_full_disjoint(&outcome.partitions, 10));
}

#[test]
fn least_unfair_on_table1_is_no_more_unfair_than_figure2() {
    let space = paper::table1_space().unwrap();
    let criterion = FairnessCriterion::new(Objective::LeastUnfair, Aggregator::Mean);
    let outcome = Quantify::new(criterion).run_space(&space).unwrap();
    let figure2 = paper::figure2_unfairness(&FairnessCriterion::default()).unwrap();
    assert!(outcome.unfairness <= figure2 + 1e-12);
}

#[test]
fn all_aggregators_work_on_table1() {
    let space = paper::table1_space().unwrap();
    for objective in [Objective::MostUnfair, Objective::LeastUnfair] {
        for aggregator in Aggregator::all() {
            let criterion = FairnessCriterion::new(objective, aggregator);
            let outcome = Quantify::new(criterion).run_space(&space).unwrap();
            assert!(
                is_full_disjoint(&outcome.partitions, 10),
                "{objective:?}/{aggregator:?}"
            );
            assert!(outcome.unfairness.is_finite());
        }
    }
}
