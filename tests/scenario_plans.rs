//! Wire contract and structural invariants of the scenario-plan layer:
//! serde round trips for `ScenarioSpec` / `ScenarioReport` (and their
//! `Response` envelope), and a property test pinning `compile`'s cell
//! count to the spec's grid cardinality.

use proptest::prelude::*;

use fairank::core::emd::EmdBackendKind;
use fairank::core::fairness::{Aggregator, Objective};
use fairank::core::plan::SearchStrategy;
use fairank::session::plan::{
    compile, CriterionGrid, MarketSpec, Perspective, ScenarioOutcome, ScenarioReport,
    ScenarioSpec,
};
use fairank::session::response::Response;
use fairank::session::Session;

fn session() -> Session {
    let mut s = Session::new();
    s.add_dataset("table1", fairank::data::paper::table1_dataset())
        .unwrap();
    s.add_function("paper-f", fairank::data::paper::table1_scoring())
        .unwrap();
    s
}

fn round_trip_spec(spec: &ScenarioSpec) {
    let json = serde_json::to_string(spec).unwrap();
    let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(spec, &back, "round trip changed {json}");
}

#[test]
fn scenario_spec_round_trips_every_perspective() {
    let market = MarketSpec {
        preset: "taskrabbit".into(),
        n: 120,
        seed: 9,
    };
    round_trip_spec(&ScenarioSpec::new(Perspective::Grid {
        datasets: vec!["a".into(), "b".into()],
        functions: vec!["f".into()],
        filter: Some("gender=Female".into()),
    }));
    round_trip_spec(&ScenarioSpec {
        perspective: Perspective::Auditor {
            market: market.clone(),
            k: Some(4),
            ranking_only: true,
            subgroup_depth: 2,
            min_subgroup: 10,
        },
        strategy: Some(SearchStrategy::Beam { width: 4 }),
        criteria: Some(CriterionGrid {
            objectives: vec![Objective::MostUnfair, Objective::LeastUnfair],
            aggregators: vec![Aggregator::Mean, Aggregator::Variance],
            bins: vec![5, 10],
            emds: vec![EmdBackendKind::OneD, EmdBackendKind::Batched],
        }),
    });
    round_trip_spec(&ScenarioSpec {
        perspective: Perspective::JobOwner {
            market: market.clone(),
            job: "wood-panels".into(),
            skill: "rating".into(),
            weights: vec![0.0, 0.5, 1.0],
        },
        strategy: Some(SearchStrategy::Exhaustive { budget: 5000 }),
        criteria: None,
    });
    round_trip_spec(&ScenarioSpec {
        perspective: Perspective::EndUser {
            market,
            groups: vec!["gender=Female".into(), "city=Paris".into()],
        },
        strategy: Some(SearchStrategy::Quantify {
            max_depth: Some(3),
            min_partition: 2,
        }),
        criteria: None,
    });
}

#[test]
fn scenario_report_round_trips_for_every_outcome_shape() {
    let check = |spec: &ScenarioSpec| -> ScenarioReport {
        let mut s = session();
        let report = compile(&s, spec).unwrap().run(&mut s).unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: ScenarioReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back, "report round trip changed");
        // The Response envelope (what the wire actually carries).
        let response = Response::Scenario(report.clone());
        let json = serde_json::to_string(&response).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(response, back);
        report
    };

    let grid = check(&ScenarioSpec::new(Perspective::Grid {
        datasets: vec!["table1".into()],
        functions: vec!["paper-f".into()],
        filter: None,
    }));
    assert!(matches!(grid.outcome, ScenarioOutcome::Grid(_)));

    let market = MarketSpec {
        preset: "taskrabbit".into(),
        n: 60,
        seed: 3,
    };
    let audit = check(&ScenarioSpec::new(Perspective::Auditor {
        market: market.clone(),
        k: None,
        ranking_only: false,
        subgroup_depth: 1,
        min_subgroup: 6,
    }));
    assert!(matches!(audit.outcome, ScenarioOutcome::Audit(_)));

    let sweep = check(&ScenarioSpec::new(Perspective::JobOwner {
        market: market.clone(),
        job: "wood-panels".into(),
        skill: "rating".into(),
        weights: vec![0.0, 1.0],
    }));
    assert!(matches!(sweep.outcome, ScenarioOutcome::JobOwner(_)));

    let view = check(&ScenarioSpec::new(Perspective::EndUser {
        market,
        groups: vec!["gender=Female".into()],
    }));
    assert!(matches!(view.outcome, ScenarioOutcome::EndUser(_)));
}

#[test]
fn scenario_report_carries_per_cell_engine_counters() {
    let mut s = session();
    let spec = ScenarioSpec {
        perspective: Perspective::Grid {
            datasets: vec!["table1".into()],
            functions: vec!["paper-f".into()],
            filter: None,
        },
        strategy: None,
        criteria: Some(CriterionGrid {
            objectives: vec![Objective::MostUnfair],
            aggregators: vec![Aggregator::Mean, Aggregator::Max],
            bins: vec![10],
            emds: vec![EmdBackendKind::OneD],
        }),
    };
    let report = compile(&s, &spec).unwrap().run_parallel(&mut s).unwrap();
    assert_eq!(report.cells.len(), 2);
    for cell in &report.cells {
        assert!(!cell.label.is_empty());
        assert!(cell.unfairness.is_some());
        // The engine did real work and said so.
        assert!(cell.histograms_built > 0, "cell {:?}", cell.label);
        assert!(cell.emd_calls > 0, "cell {:?}", cell.label);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compile_cell_count_matches_grid_cardinality(
        objective_count in 1usize..=2,
        aggregator_count in 1usize..=6,
        bins in prop::collection::vec(2usize..24, 1..4),
        emd_count in 1usize..=3,
        dataset_copies in 1usize..4,
        function_copies in 1usize..4,
    ) {
        let objectives: Vec<Objective> =
            [Objective::MostUnfair, Objective::LeastUnfair][..objective_count].to_vec();
        let aggregators: Vec<Aggregator> = Aggregator::all()[..aggregator_count].to_vec();
        let mut s = Session::new();
        let mut datasets = Vec::new();
        for i in 0..dataset_copies {
            let name = format!("d{i}");
            s.add_dataset(&name, fairank::data::paper::table1_dataset()).unwrap();
            datasets.push(name);
        }
        let mut functions = Vec::new();
        for i in 0..function_copies {
            let name = format!("f{i}");
            s.add_function(&name, fairank::data::paper::table1_scoring()).unwrap();
            functions.push(name);
        }
        let emds: Vec<EmdBackendKind> =
            EmdBackendKind::all()[..emd_count].to_vec();
        let grid = CriterionGrid {
            objectives,
            aggregators,
            bins,
            emds,
        };
        let spec = ScenarioSpec {
            perspective: Perspective::Grid {
                datasets: datasets.clone(),
                functions: functions.clone(),
                filter: None,
            },
            strategy: None,
            criteria: Some(grid.clone()),
        };
        let plan = compile(&s, &spec).unwrap();
        prop_assert_eq!(
            plan.cell_count(),
            datasets.len() * functions.len() * grid.cardinality()
        );
        prop_assert_eq!(plan.cell_labels().len(), plan.cell_count());
    }
}
