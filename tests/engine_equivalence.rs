//! The split engine must be a pure optimization: `SplitEngine`-backed
//! `QUANTIFY` has to produce bit-identical trees, partitions, and
//! unfairness values to the seed's naive evaluation order on arbitrary
//! spaces — while demonstrably doing less work. Property-tested over random
//! spaces and pinned on the paper's Table 1 fixture.

use proptest::prelude::*;

use fairank::core::fairness::{Aggregator, FairnessCriterion, Objective};
use fairank::core::quantify::{Quantify, SplitEvaluation};
use fairank::core::space::{ProtectedAttribute, RankingSpace};
use fairank::data::paper::{table1_dataset, table1_scoring};
use fairank::prelude::ScoreSource;

/// A random small ranking space: 2–4 protected attributes with 2–4 values
/// each, 8–60 individuals, scores in [0, 1].
fn ranking_space() -> impl Strategy<Value = RankingSpace> {
    (2usize..=4, 8usize..=60).prop_flat_map(|(n_attrs, n_rows)| {
        let attrs = prop::collection::vec(
            (2u32..=4).prop_flat_map(move |card| prop::collection::vec(0..card, n_rows)),
            n_attrs,
        );
        let scores = prop::collection::vec(0.0f64..=1.0, n_rows);
        (attrs, scores).prop_map(|(attr_codes, scores)| {
            let attributes = attr_codes
                .into_iter()
                .enumerate()
                .map(|(i, codes)| {
                    let card = codes.iter().copied().max().unwrap_or(0) + 1;
                    ProtectedAttribute {
                        name: format!("a{i}"),
                        codes,
                        labels: (0..card).map(|c| format!("v{c}")).collect(),
                    }
                })
                .collect();
            RankingSpace::new(attributes, scores).expect("generated space is valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_is_bit_identical_to_naive_evaluation(space in ranking_space()) {
        for objective in [Objective::MostUnfair, Objective::LeastUnfair] {
            for eval in [SplitEvaluation::PaperSiblings, SplitEvaluation::Holistic] {
                let criterion = FairnessCriterion::new(objective, Aggregator::Mean);
                let engine = Quantify::new(criterion)
                    .with_split_evaluation(eval)
                    .run_space(&space)
                    .unwrap();
                let naive = Quantify::new(criterion)
                    .with_split_evaluation(eval)
                    .with_naive_evaluation()
                    .run_space(&space)
                    .unwrap();
                // Bit-identical results: no tolerance, exact equality.
                prop_assert_eq!(
                    engine.unfairness.to_bits(),
                    naive.unfairness.to_bits(),
                    "{:?}/{:?}: {} vs {}",
                    objective, eval, engine.unfairness, naive.unfairness
                );
                prop_assert_eq!(&engine.partitions, &naive.partitions);
                prop_assert_eq!(&engine.tree, &naive.tree);
                // Identical search trajectory.
                prop_assert_eq!(engine.stats.nodes_evaluated, naive.stats.nodes_evaluated);
                prop_assert_eq!(engine.stats.candidate_splits, naive.stats.candidate_splits);
                prop_assert_eq!(engine.stats.splits_performed, naive.stats.splits_performed);
                // Never more work than the naive order.
                prop_assert!(engine.stats.histograms_built <= naive.stats.histograms_built);
                prop_assert!(engine.stats.emd_calls <= naive.stats.emd_calls);
            }
        }
    }

    #[test]
    fn engine_agrees_across_aggregators(space in ranking_space()) {
        for aggregator in Aggregator::all() {
            let criterion = FairnessCriterion::new(Objective::MostUnfair, aggregator);
            let engine = Quantify::new(criterion).run_space(&space).unwrap();
            let naive = Quantify::new(criterion)
                .with_naive_evaluation()
                .run_space(&space)
                .unwrap();
            prop_assert_eq!(
                engine.unfairness.to_bits(),
                naive.unfairness.to_bits(),
                "{:?}",
                aggregator
            );
            prop_assert_eq!(&engine.partitions, &naive.partitions);
        }
    }
}

#[test]
fn golden_table1_engine_counters() {
    let criterion = FairnessCriterion::new(Objective::MostUnfair, Aggregator::Mean);
    let engine = Quantify::new(criterion)
        .run(&table1_dataset(), &ScoreSource::from(table1_scoring()))
        .expect("engine run");
    let naive = Quantify::new(criterion)
        .with_naive_evaluation()
        .run(&table1_dataset(), &ScoreSource::from(table1_scoring()))
        .expect("naive run");

    // Same pinned outcome (the golden_table1 suite pins the values; here we
    // pin the equivalence).
    assert_eq!(engine.unfairness, naive.unfairness);
    assert_eq!(engine.partitions, naive.partitions);

    // The memo is live and the histogram count drops vs. the naive count.
    assert!(
        engine.stats.emd_cache_hits > 0,
        "stats: {:?}",
        engine.stats
    );
    assert!(
        engine.stats.histograms_built < naive.stats.histograms_built,
        "engine {} vs naive {}",
        engine.stats.histograms_built,
        naive.stats.histograms_built
    );
    assert!(engine.stats.emd_calls < naive.stats.emd_calls);
    assert_eq!(naive.stats.emd_cache_hits, 0);
}

#[test]
fn max_depth_zero_is_the_trivial_outcome() {
    let genders = ProtectedAttribute::from_values("g", &["a", "b", "a", "b"]);
    let space = RankingSpace::new(vec![genders], vec![0.1, 0.9, 0.2, 0.8]).unwrap();
    let outcome = Quantify::default()
        .with_max_depth(0)
        .run_space(&space)
        .unwrap();
    assert_eq!(outcome.partitions.len(), 1);
    assert_eq!(outcome.tree.len(), 1);
    assert_eq!(outcome.unfairness, 0.0);
    assert_eq!(outcome.stats.splits_performed, 0);
    assert_eq!(outcome.stats.candidate_splits, 0);
}
