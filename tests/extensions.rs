//! Integration tests for the extension features (beyond the paper's demo):
//! beam search, decision explanations, exposure fairness, ranking feedback
//! dynamics, Incognito anonymization, conditional demographics.

use fairank::anonymize::datafly::auto_hierarchies;
use fairank::anonymize::{incognito, is_k_anonymous};
use fairank::core::beam::BeamSearch;
use fairank::core::explain::{explain_tree, Decision};
use fairank::core::exposure::{exposure_disparity, exposures_from_scores};
use fairank::core::fairness::{Aggregator, FairnessCriterion};
use fairank::core::partition::Partition;
use fairank::core::quantify::Quantify;
use fairank::core::scoring::ScoreSource;
use fairank::data::paper;
use fairank::marketplace::dynamics::{simulate_feedback, FeedbackConfig};
use fairank::marketplace::scenario::taskrabbit_like;

#[test]
fn beam_search_beats_greedy_on_table1() {
    let space = paper::table1_space().unwrap();
    let criterion = FairnessCriterion::default();
    let greedy = Quantify::new(criterion).run_space(&space).unwrap();
    let beam = BeamSearch::new(criterion, 16).run_space(&space).unwrap();
    assert!(
        beam.unfairness >= greedy.unfairness - 1e-12,
        "beam {} vs greedy {}",
        beam.unfairness,
        greedy.unfairness
    );
}

#[test]
fn explanations_cover_the_table1_tree_and_name_the_first_split() {
    let space = paper::table1_space().unwrap();
    let criterion = FairnessCriterion::default();
    let outcome = Quantify::new(criterion).run_space(&space).unwrap();
    let explanations = explain_tree(&space, &outcome.tree, &criterion).unwrap();
    assert_eq!(explanations.len(), outcome.tree.len());
    match &explanations[0].decision {
        Decision::Split { name, .. } => {
            // The root split attribute must be one of Table 1's protected
            // attributes, and the candidate table must list alternatives.
            assert!(
                ["gender", "country", "year_of_birth", "language", "ethnicity"]
                    .contains(&name.as_str()),
                "unexpected first split {name}"
            );
            assert!(explanations[0].candidates.len() >= 2);
        }
        other => panic!("root should split, got {other:?}"),
    }
}

#[test]
fn exposure_and_emd_agree_on_the_figure2_partitioning() {
    let space = paper::table1_space().unwrap();
    let parts = paper::figure2_partitioning(&space);
    let criterion = FairnessCriterion::default();
    let emd_u = criterion.unfairness(&parts, space.scores()).unwrap();
    let exposure = exposures_from_scores(space.scores()).unwrap();
    let gap = exposure_disparity(&parts, &exposure, Aggregator::Mean);
    assert!(emd_u > 0.0 && gap > 0.0);
}

#[test]
fn exposure_is_zero_for_the_trivial_partitioning() {
    let space = paper::table1_space().unwrap();
    let exposure = exposures_from_scores(space.scores()).unwrap();
    let root = vec![Partition::root(&space)];
    assert_eq!(exposure_disparity(&root, &exposure, Aggregator::Mean), 0.0);
}

#[test]
fn feedback_loop_runs_on_a_marketplace_and_reports_series() {
    let market = taskrabbit_like(150, 23).unwrap();
    let outcome = simulate_feedback(
        &market,
        "rated-anything",
        "rating",
        "ethnicity",
        &FairnessCriterion::default(),
        FeedbackConfig {
            rounds: 5,
            top_k: 15,
            boost: 0.08,
            decay: 0.01,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(outcome.rounds.len(), 6);
    assert!(outcome.rounds.iter().all(|r| r.unfairness.is_finite()));
    assert!(outcome.rounds.iter().all(|r| r.tracked_gap >= 0.0));
}

#[test]
fn incognito_anonymizes_table1_and_stays_quantifiable() {
    let ds = paper::table1_dataset();
    let qis = ["gender", "country", "year_of_birth", "language", "ethnicity"];
    let hierarchies = auto_hierarchies(&ds, &qis).unwrap();
    let out = incognito(&ds, &qis, &hierarchies, 2).unwrap();
    assert!(is_k_anonymous(&out.dataset, &qis, 2).unwrap());
    // The anonymized Table 1 still quantifies.
    let outcome = Quantify::new(FairnessCriterion::default())
        .run(&out.dataset, &ScoreSource::Function(paper::table1_scoring()))
        .unwrap();
    assert!(outcome.unfairness >= 0.0);
    // With 10 individuals and 5 high-cardinality QIs, most attributes must
    // generalize substantially.
    assert!(out.precision < 1.0);
}

#[test]
fn conditional_demographics_flow_into_quantification() {
    use fairank::data::bias::BiasRule;
    use fairank::data::dist::SkillDistribution;
    use fairank::data::synth::PopulationSpec;

    let spec = PopulationSpec::builder(400, 9)
        .demographic("country", vec![("India", 0.5), ("America", 0.5)])
        .unwrap()
        .demographic("language", vec![("English", 1.0)])
        .unwrap()
        .conditioned_on("country", "India", vec![("Indian", 0.7), ("English", 0.3)])
        .unwrap()
        .skill("rating", SkillDistribution::Beta { alpha: 3.0, beta: 2.0 })
        .bias(BiasRule::shift("language", "Indian", "rating", -0.2))
        .build();
    let ds = spec.generate().unwrap();
    let f = fairank::core::scoring::LinearScoring::builder()
        .weight("rating", 1.0)
        .build(&ds)
        .unwrap();
    let outcome = Quantify::new(FairnessCriterion::default())
        .run(&ds, &ScoreSource::Function(f))
        .unwrap();
    // The bias rides on language, which correlates with country; the
    // search must find substantial unfairness.
    assert!(outcome.unfairness > 0.05, "u = {}", outcome.unfairness);
}
