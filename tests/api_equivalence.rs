//! The byte-identity contract of the typed-API redesign.
//!
//! `execute(session, cmd)` used to format results inline; it is now
//! `present::render(&apply(session, cmd)?)`. This suite freezes the
//! pre-redesign formatting as a local oracle (`legacy`) and asserts that
//! every CLI command still produces the *exact* bytes it did before the
//! structured [`Response`] layer existed — read-only commands against live
//! session state, mutating commands against their frozen acknowledgement
//! lines.

use fairank::session::command::{apply, Command};
use fairank::session::{present, Session};

/// Runs one command through the new typed path and returns the rendered
/// text (exactly what the REPL prints).
fn run(session: &mut Session, line: &str) -> String {
    let command = Command::parse(line).unwrap_or_else(|e| panic!("parse {line:?}: {e}"));
    let response =
        apply(session, command).unwrap_or_else(|e| panic!("apply {line:?}: {e}"));
    present::render(&response)
}

/// Frozen copies of the formatting the string-era `execute` performed
/// inline (and of the old `render` module it called). Deliberately *not*
/// shared with production code: this module is the oracle.
mod legacy {
    use fairank::core::histogram::Histogram;
    use fairank::session::{Panel, Session};

    pub const HELP: &str = "\
FaiRank commands:
  datasets | funcs | panels            list session objects
  load <name> <path.csv>               load a CSV dataset
  generate <name> <preset> [n=] [seed=]  presets: crowdsourcing, biased,
                                       taskrabbit, qapa
  define <name> <attr*w+attr*w…>       define a scoring function
  data <name> [rows=10]                print the head of a dataset
  describe <name>                      per-column summary statistics
  save <dir> | open <dir>              persist / restore the session
  filter <new> <src> \"<expr>\"          derive a filtered dataset
  anonymize <new> <src> k=2 [method=mondrian|datafly]
  quantify <dataset> <func> [objective=most|least] [agg=mean|max|min|variance]
           [bins=10] [emd=1d|transport|batched|kernel] [where=\"<expr>\"] [opaque]
  subgroups <dataset> <func> [depth=2] [min=5] [top=5]
                                       most/least favored subgroups
  show <panel>                         render a panel's partitioning tree
  node <panel> <node>                  the Node box for one tree node
  why <panel> <node>                   explain the search decision at a node
  compare <a> <b>                      compare two panels
  export <panel> <path.json>           export a panel as JSON
  audit <taskrabbit|qapa> [n=] [seed=] [k=] [ranking-only]
  jobowner <preset> <job> <skill> [n=] [seed=]
  enduser <preset> \"<group expr>\" [n=] [seed=]
  stream <preset> <job> [n=] [seed=] [rounds=] [arrivals=] [departures=]
         [rescores=] [stream-seed=] [k=] [ranking-only]
                                       incremental re-audit over live churn
  scenario grid <ds,..> <func,..> [objectives=] [aggs=] [bins=] [emd=]
           [strategy=quantify|beam|exhaustive] [width=] [depth=] [min=]
           [budget=] [where=\"<expr>\"]   compile a grid into parallel cells
  scenario auditor <preset> [n=] [seed=] [k=] [ranking-only] [sg-depth=] [sg-min=]
  scenario jobowner <preset> <job> <skill> [weights=w1,w2,..] [n=] [seed=]
  scenario enduser <preset> \"<group>\"… [n=] [seed=]
  scenario stream <preset> <job> [rounds=] [arrivals=] [departures=] [rescores=]
           [stream-seed=] [n=] [seed=] [k=] [ranking-only]
  scenario <spec.json>                 run a scenario plan from a JSON spec
  sessions | evict <name>              registry admin (server --admin only)
  help | quit
";

    const SPARK_LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

    fn sparkline(hist: &Histogram) -> String {
        if hist.is_empty() {
            return "·".repeat(hist.spec().bins());
        }
        let max = hist.counts().iter().copied().max().unwrap_or(0).max(1);
        hist.counts()
            .iter()
            .map(|&c| {
                if c == 0 {
                    SPARK_LEVELS[0]
                } else {
                    let idx = ((c as f64 / max as f64) * (SPARK_LEVELS.len() - 1) as f64)
                        .round() as usize;
                    SPARK_LEVELS[idx.clamp(1, SPARK_LEVELS.len() - 1)]
                }
            })
            .collect()
    }

    pub fn render_tree(panel: &Panel) -> String {
        let mut out = String::new();
        render_node(panel, 0, "", true, true, &mut out);
        out
    }

    fn render_node(
        panel: &Panel,
        node: usize,
        prefix: &str,
        is_last: bool,
        is_root: bool,
        out: &mut String,
    ) {
        let stats = panel.node_stats(node).expect("tree node exists");
        let connector = if is_root {
            ""
        } else if is_last {
            "└─ "
        } else {
            "├─ "
        };
        let label = stats
            .label
            .rsplit(" ∧ ")
            .next()
            .unwrap_or(&stats.label)
            .to_string();
        let annotation = if stats.is_leaf {
            format!(
                " (n={}, μ={:.3}) {}",
                stats.size,
                stats.mean_score,
                sparkline(&stats.histogram)
            )
        } else {
            format!(
                " (n={}) ⊢ split on {}",
                stats.size,
                stats.split_attribute.as_deref().unwrap_or("?")
            )
        };
        out.push_str(prefix);
        out.push_str(connector);
        out.push_str(&format!("[{node}] "));
        out.push_str(&label);
        out.push_str(&annotation);
        out.push('\n');

        let children = &panel.outcome.tree.node(node).children;
        let child_prefix = if is_root {
            String::new()
        } else {
            format!("{prefix}{}", if is_last { "   " } else { "│  " })
        };
        for (i, &child) in children.iter().enumerate() {
            render_node(
                panel,
                child,
                &child_prefix,
                i + 1 == children.len(),
                false,
                out,
            );
        }
    }

    pub fn render_general(panel: &Panel) -> String {
        let info = panel.general_info();
        format!(
            "Panel #{} — {}\n\
             unfairness      {:.6}\n\
             partitions      {}\n\
             tree nodes      {}\n\
             max depth       {}\n\
             individuals     {}\n\
             search time     {} µs\n\
             splits scored   {}\n\
             histograms      {}\n\
             EMD calls       {} ({} cache hits, {} batches)\n\
             delta reuse     {} histograms, {} EMD entries invalidated\n",
            panel.id,
            panel.config.describe(),
            info.unfairness,
            info.num_partitions,
            info.tree_nodes,
            info.max_depth,
            info.individuals,
            info.elapsed_us,
            info.candidate_splits,
            info.histograms_built,
            info.emd_calls,
            info.emd_cache_hits,
            info.pairwise_batches,
            info.delta_reused_histograms,
            info.delta_invalidated_emds,
        )
    }

    pub fn render_node_box(panel: &Panel, node: usize) -> String {
        let stats = panel.node_stats(node).expect("node exists");
        let kind = if stats.is_leaf {
            "final partition".to_string()
        } else {
            format!(
                "internal, split on {}",
                stats.split_attribute.as_deref().unwrap_or("?")
            )
        };
        let divergence = stats
            .divergence_vs_siblings
            .map(|d| format!("{d:.4}"))
            .unwrap_or_else(|| "-".into());
        format!(
            "Node [{}] {}\n\
             kind            {}\n\
             individuals     {}\n\
             mean score      {:.4}\n\
             score range     [{:.4}, {:.4}]\n\
             vs siblings     {}\n\
             histogram       {}  (bins of {:?})\n",
            stats.node,
            stats.label,
            kind,
            stats.size,
            stats.mean_score,
            stats.min_score,
            stats.max_score,
            divergence,
            sparkline(&stats.histogram),
            stats.histogram.counts(),
        )
    }

    pub fn quantify_output(panel: &Panel) -> String {
        format!(
            "panel #{}: unfairness {:.6} over {} partitions\n{}",
            panel.id,
            panel.outcome.unfairness,
            panel.outcome.partitions.len(),
            render_tree(panel)
        )
    }

    pub fn datasets(session: &Session) -> String {
        let names = session.dataset_names();
        if names.is_empty() {
            return "no datasets — try `generate d biased` or `load d file.csv`".into();
        }
        names
            .iter()
            .map(|n| {
                let ds = session.dataset(n).expect("listed");
                format!("{n}  ({} rows, {} columns)", ds.num_rows(), ds.schema().len())
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    pub fn functions(session: &Session) -> String {
        let names = session.function_names();
        if names.is_empty() {
            return "no functions — try `define f rating*0.7+language_test*0.3`".into();
        }
        names
            .iter()
            .map(|n| {
                let f = session.function(n).expect("listed");
                let terms: Vec<String> = f
                    .terms()
                    .iter()
                    .map(|(a, w)| format!("{w}·{a}"))
                    .collect();
                format!("{n} = {}", terms.join(" + "))
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    pub fn panels(session: &Session) -> String {
        if session.panels().is_empty() {
            return "no panels — run `quantify <dataset> <function>`".into();
        }
        session
            .panels()
            .iter()
            .map(|p| {
                format!(
                    "#{}  u={:.4}  {}",
                    p.id,
                    p.outcome.unfairness,
                    p.config.describe()
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    pub fn compare(session: &Session, a: usize, b: usize) -> String {
        let pa = session.panel(a).expect("panel a");
        let pb = session.panel(b).expect("panel b");
        let ia = pa.general_info();
        let ib = pb.general_info();
        let delta = ib.unfairness - ia.unfairness;
        format!(
            "compare      #{a:<28} #{b}\n\
             config       {:<28} {}\n\
             unfairness   {:<28.6} {:.6}  (Δ {:+.6})\n\
             partitions   {:<28} {}\n\
             individuals  {:<28} {}\n",
            pa.config.describe(),
            pb.config.describe(),
            ia.unfairness,
            ib.unfairness,
            delta,
            ia.num_partitions,
            ib.num_partitions,
            ia.individuals,
            ib.individuals,
        )
    }

    pub fn subgroups(
        session: &Session,
        dataset: &str,
        function: &str,
        depth: usize,
        min_size: usize,
        top: usize,
    ) -> String {
        use fairank::core::fairness::FairnessCriterion;
        use fairank::core::scoring::ScoreSource;
        use fairank::core::subgroup::{least_favored, most_favored, subgroup_stats};
        let f = session.function(function).expect("function").clone();
        let ds = session.dataset(dataset).expect("dataset");
        let space = ds.to_space(&ScoreSource::Function(f)).expect("space");
        let criterion = FairnessCriterion::default().fit_range(&space);
        let stats = subgroup_stats(&space, &criterion, depth, min_size).expect("stats");
        let mut out = format!(
            "subgroups of {dataset} under {function} (depth ≤ {depth}, size ≥ {min_size}): {}\n",
            stats.len()
        );
        out.push_str("most favored:\n");
        for s in most_favored(&stats, top) {
            out.push_str(&format!(
                "  {:<44} n={:<4} advantage {:+.3}  divergence {:.3}\n",
                s.label, s.size, s.advantage, s.divergence
            ));
        }
        out.push_str("least favored:\n");
        for s in least_favored(&stats, top) {
            out.push_str(&format!(
                "  {:<44} n={:<4} advantage {:+.3}  divergence {:.3}\n",
                s.label, s.size, s.advantage, s.divergence
            ));
        }
        out
    }
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fairank_api_equiv_{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn every_command_matches_the_pre_redesign_transcript() {
    let dir = tmpdir("script");
    let mut s = Session::new();

    // -- fixed text and empty listings ------------------------------------
    assert_eq!(run(&mut s, "help"), legacy::HELP);
    assert_eq!(
        run(&mut s, "datasets"),
        "no datasets — try `generate d biased` or `load d file.csv`"
    );
    assert_eq!(
        run(&mut s, "funcs"),
        "no functions — try `define f rating*0.7+language_test*0.3`"
    );
    assert_eq!(
        run(&mut s, "panels"),
        "no panels — run `quantify <dataset> <function>`"
    );

    // -- mutating acknowledgements (frozen one-liners) --------------------
    assert_eq!(
        run(&mut s, "generate pop biased n=120 seed=5"),
        "generated pop = biased(n=120, seed=5)"
    );
    assert_eq!(
        run(&mut s, "define f rating*0.7+language_test*0.3"),
        "defined f = rating*0.7+language_test*0.3"
    );
    let filtered = run(&mut s, r#"filter women pop "gender=Female""#);
    let women_rows = s.dataset("women").unwrap().num_rows();
    assert_eq!(filtered, format!("women = pop where gender=Female ({women_rows} rows)"));
    assert_eq!(
        run(&mut s, "anonymize anon pop k=4 method=mondrian"),
        "anon = Mondrian(pop, k=4), 0 rows suppressed"
    );

    // -- populated listings (oracle over live state) ----------------------
    assert_eq!(run(&mut s, "datasets"), legacy::datasets(&s));
    assert_eq!(run(&mut s, "funcs"), legacy::functions(&s));

    // -- data head and describe -------------------------------------------
    assert_eq!(run(&mut s, "data pop rows=7"), s.dataset("pop").unwrap().render_head(7));
    assert_eq!(
        run(&mut s, "data pop rows=500"), // more than the dataset holds
        s.dataset("pop").unwrap().render_head(500)
    );
    assert_eq!(
        run(&mut s, "describe pop"),
        fairank::data::stats::describe(s.dataset("pop").unwrap())
    );

    // -- quantifications (tree text from the frozen renderer) -------------
    let created = run(&mut s, "quantify pop f");
    assert_eq!(created, legacy::quantify_output(s.panel(0).unwrap()));
    let created = run(&mut s, "quantify pop f objective=least agg=max bins=5");
    assert_eq!(created, legacy::quantify_output(s.panel(1).unwrap()));
    let created = run(&mut s, r#"quantify pop f where="gender=Female""#);
    assert_eq!(created, legacy::quantify_output(s.panel(2).unwrap()));
    let created = run(&mut s, "quantify pop f opaque");
    assert_eq!(created, legacy::quantify_output(s.panel(3).unwrap()));
    assert_eq!(run(&mut s, "panels"), legacy::panels(&s));

    // -- panel inspection --------------------------------------------------
    let expected = format!(
        "{}\n{}",
        legacy::render_general(s.panel(0).unwrap()),
        legacy::render_tree(s.panel(0).unwrap())
    );
    assert_eq!(run(&mut s, "show 0"), expected);
    for node in 0..s.panel(0).unwrap().outcome.tree.len() {
        assert_eq!(
            run(&mut s, &format!("node 0 {node}")),
            legacy::render_node_box(s.panel(0).unwrap(), node)
        );
    }
    {
        use fairank::core::explain::{explain_tree, render_explanation};
        let p = s.panel(0).unwrap();
        let explanations =
            explain_tree(&p.space, &p.outcome.tree, p.criterion()).unwrap();
        let expected = render_explanation(&explanations[0]);
        assert_eq!(run(&mut s, "why 0 0"), expected);
    }
    assert_eq!(run(&mut s, "compare 0 1"), legacy::compare(&s, 0, 1));

    // -- subgroups ---------------------------------------------------------
    assert_eq!(
        run(&mut s, "subgroups pop f depth=2 min=10 top=3"),
        legacy::subgroups(&s, "pop", "f", 2, 10, 3)
    );

    // -- export ------------------------------------------------------------
    let export_path = dir.join("panel.json");
    assert_eq!(
        run(&mut s, &format!("export 0 {}", export_path.display())),
        format!("exported panel #0 to {}", export_path.display())
    );
    assert!(export_path.exists());

    // -- persistence -------------------------------------------------------
    let save_dir = dir.join("saved");
    assert_eq!(
        run(&mut s, &format!("save {}", save_dir.display())),
        format!("saved 3 dataset(s) and 1 function(s) to {}", save_dir.display())
    );
    let mut fresh = Session::new();
    assert_eq!(
        run(&mut fresh, &format!("open {}", save_dir.display())),
        format!(
            "opened session from {}: 3 dataset(s), 1 function(s)",
            save_dir.display()
        )
    );

    // -- load --------------------------------------------------------------
    let csv_path = dir.join("tiny.csv");
    std::fs::write(&csv_path, "gender,rating\nF,0.4\nM,0.9\n").unwrap();
    assert_eq!(
        run(&mut fresh, &format!("load tiny {}", csv_path.display())),
        format!("loaded tiny (2 rows) from {}", csv_path.display())
    );

    // -- quit --------------------------------------------------------------
    assert_eq!(run(&mut fresh, "quit"), "quit");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scenario_reports_match_the_pre_redesign_transcript() {
    use fairank::core::fairness::FairnessCriterion;
    use fairank::marketplace::{scenario, Transparency};
    use fairank::session::report;

    let mut s = Session::new();

    // audit taskrabbit n=120 seed=4 — the old arm rendered the report it
    // built; the oracle rebuilds the identical (deterministic) report.
    let market = scenario::taskrabbit_like(120, 4).unwrap();
    // The old arm's min-subgroup floor was `(n / 20).max(2)`; n=120 ⇒ 6.
    let expected = report::auditor_report(
        &market,
        &Transparency::full(),
        &FairnessCriterion::default(),
        2,
        6,
    )
    .unwrap()
    .render();
    assert_eq!(run(&mut s, "audit taskrabbit n=120 seed=4"), expected);

    // jobowner taskrabbit wood-panels rating n=120 seed=4
    let base = market.job("wood-panels").unwrap().scoring.clone();
    let expected = report::job_owner_sweep(
        market.workers(),
        &base,
        "rating",
        &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        &FairnessCriterion::default(),
    )
    .unwrap()
    .render();
    assert_eq!(
        run(&mut s, "jobowner taskrabbit wood-panels rating n=120 seed=4"),
        expected
    );

    // enduser taskrabbit "gender=Female" n=120 seed=4
    let filter = fairank::data::filter::Filter::parse("gender=Female").unwrap();
    let expected = report::end_user_report(&market, &filter, &FairnessCriterion::default())
        .unwrap()
        .render();
    assert_eq!(
        run(&mut s, r#"enduser taskrabbit "gender=Female" n=120 seed=4"#),
        expected
    );
}

#[test]
fn execute_facade_is_render_of_apply() {
    use fairank::session::command::execute;
    let mut a = Session::new();
    let mut b = Session::new();
    // ("show" is excluded: its General box prints the search's wall-clock
    // time, which differs between the two sessions' independent runs.)
    for line in [
        "generate pop biased n=60 seed=2",
        "define f rating*1.0",
        "quantify pop f",
        "panels",
        "node 0 0",
        "compare 0 0",
        "quit",
    ] {
        let via_execute = execute(&mut a, Command::parse(line).unwrap()).unwrap();
        let via_apply = run(&mut b, line);
        assert_eq!(via_execute, via_apply, "line {line:?}");
    }
}
