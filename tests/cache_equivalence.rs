//! The correctness contract of the cross-session cell cache: a scenario
//! cell served from the cache is *bitwise-identical* to the same cell
//! computed fresh — same unfairness bits, same partitions, same rendered
//! rows — under every EMD backend. The cache is pure memoization over the
//! deterministic engine; these tests freeze that claim, plus the
//! operational edges: eviction forces a recompute that still matches, and
//! concurrent claimants of one key coalesce into a single compute.

use std::sync::{Arc, Barrier};

use fairank::core::emd::EmdBackendKind;
use fairank::core::fairness::{Aggregator, Objective};
use fairank::session::command::{apply, Command};
use fairank::session::plan::{self, CriterionGrid, Perspective, ScenarioReport, ScenarioSpec};
use fairank::session::{CellCache, DatasetStore, Session};

/// A session with one synthetic dataset and two scoring functions, built
/// against `store` so every test session shares dataset storage the way
/// registry sessions do.
fn seeded_session(store: Arc<DatasetStore>) -> Session {
    let mut session = Session::with_store(store);
    for line in [
        "generate pop biased n=120 seed=7",
        "define f rating*1.0",
        "define g rating*0.5+language_test*0.5",
    ] {
        apply(&mut session, Command::parse(line).unwrap()).unwrap();
    }
    session
}

/// A grid spec over both functions × objectives × aggregators under one
/// EMD backend: 8 cells, all cacheable.
fn grid_spec(backend: EmdBackendKind) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(Perspective::Grid {
        datasets: vec!["pop".into()],
        functions: vec!["f".into(), "g".into()],
        filter: None,
    });
    spec.criteria = Some(CriterionGrid {
        objectives: vec![Objective::MostUnfair, Objective::LeastUnfair],
        aggregators: vec![Aggregator::Mean, Aggregator::Max],
        bins: vec![10],
        emds: vec![backend],
    });
    spec
}

/// Runs the spec on `session` with every cell routed through `cache`.
fn run_cached(
    session: &mut Session,
    spec: &ScenarioSpec,
    cache: &CellCache,
) -> ScenarioReport {
    plan::compile(session, spec)
        .unwrap()
        .execute_with(|cells| {
            cells
                .into_iter()
                .map(|cell| cell.execute_cached(cache))
                .collect()
        })
        .finish(Some(session))
        .unwrap()
}

/// Asserts two reports carry bitwise-identical results: grid rows must
/// match on the exact f64 bit pattern of unfairness, not an epsilon, and
/// every per-cell stat except wall-clock and the cache counters (which
/// differ by design between a computing and a served run) must be equal.
fn assert_bitwise_identical(fresh: &ScenarioReport, cached: &ScenarioReport) {
    assert_eq!(fresh.perspective, cached.perspective);
    assert_eq!(fresh.strategy, cached.strategy);
    assert_eq!(fresh.outcome, cached.outcome);
    let (plan::ScenarioOutcome::Grid(a), plan::ScenarioOutcome::Grid(b)) =
        (&fresh.outcome, &cached.outcome)
    else {
        panic!("grid specs reduce to grid outcomes");
    };
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.config, y.config);
        assert_eq!(
            x.unfairness.to_bits(),
            y.unfairness.to_bits(),
            "unfairness of {} differs in bits",
            x.config
        );
        assert_eq!(x.partitions, y.partitions);
    }
    assert_eq!(fresh.cells.len(), cached.cells.len());
    for (x, y) in fresh.cells.iter().zip(&cached.cells) {
        let mut x = x.clone();
        let mut y = y.clone();
        x.elapsed_us = 0;
        y.elapsed_us = 0;
        x.cache_hits = 0;
        y.cache_hits = 0;
        x.cache_misses = 0;
        y.cache_misses = 0;
        assert_eq!(x, y, "cell stats diverged beyond wall-clock/cache counters");
    }
}

#[test]
fn cached_reruns_are_bitwise_identical_under_every_emd_backend() {
    for backend in [
        EmdBackendKind::OneD,
        EmdBackendKind::Transport,
        EmdBackendKind::Batched,
        EmdBackendKind::Kernel,
    ] {
        let store = Arc::new(DatasetStore::new());
        let cache = CellCache::new(64);
        let spec = grid_spec(backend);

        // Oracle: the same grid with the cache disabled — pure computes.
        let mut fresh_session = seeded_session(Arc::clone(&store));
        let fresh = run_cached(&mut fresh_session, &spec, &CellCache::new(0));

        // First cached run populates; second run (new session, same
        // content) is served entirely from the cache.
        let mut warm_session = seeded_session(Arc::clone(&store));
        let first = run_cached(&mut warm_session, &spec, &cache);
        let mut served_session = seeded_session(Arc::clone(&store));
        let served = run_cached(&mut served_session, &spec, &cache);

        assert_bitwise_identical(&fresh, &first);
        assert_bitwise_identical(&fresh, &served);
        assert!(
            first.cells.iter().all(|c| c.cache_misses == 1),
            "{backend:?}: first run must compute every cell"
        );
        assert!(
            served.cells.iter().all(|c| c.cache_hits == 1),
            "{backend:?}: second run must be served entirely from cache"
        );
        let stats = cache.stats();
        assert_eq!(stats.misses, 8, "{backend:?}");
        assert_eq!(stats.hits, 8, "{backend:?}");
        assert_eq!(stats.evictions, 0, "{backend:?}");
    }
}

#[test]
fn distinct_backends_occupy_distinct_cache_keys() {
    // The backend is part of the cache key: a transport-backend grid must
    // never be served a memoized 1d outcome, even over the same dataset,
    // function and criterion shape.
    let store = Arc::new(DatasetStore::new());
    let cache = CellCache::new(64);
    let mut session = seeded_session(Arc::clone(&store));
    run_cached(&mut session, &grid_spec(EmdBackendKind::OneD), &cache);
    let report = run_cached(&mut session, &grid_spec(EmdBackendKind::Transport), &cache);
    assert!(
        report.cells.iter().all(|c| c.cache_misses == 1),
        "a different EMD backend must miss, not alias the 1d entries"
    );
    assert_eq!(cache.stats().entries, 16);
}

#[test]
fn eviction_forces_a_recompute_that_still_matches() {
    let store = Arc::new(DatasetStore::new());
    // Cap 2 under an 8-cell grid: entries churn through the LRU on every
    // run, so the rerun recomputes most cells instead of being served.
    let cache = CellCache::new(2);
    let spec = grid_spec(EmdBackendKind::OneD);

    let mut first_session = seeded_session(Arc::clone(&store));
    let first = run_cached(&mut first_session, &spec, &cache);
    assert!(cache.stats().evictions > 0, "cap 2 must evict under 8 cells");

    let mut second_session = seeded_session(Arc::clone(&store));
    let second = run_cached(&mut second_session, &spec, &cache);
    assert_bitwise_identical(&first, &second);
    // The recomputed cells are indistinguishable from the originals; the
    // cache never holds more than its cap.
    assert!(cache.stats().entries <= 2);
    assert!(second.cells.iter().any(|c| c.cache_misses == 1));
}

#[test]
fn concurrent_sessions_coalesce_to_one_compute_per_cell() {
    // 8 clients fire the same 1-cell grid at once. Single-flight must fold
    // them into exactly one compute — misses counts actual computes, so
    // the stats are the proof, not a timing heuristic.
    const CLIENTS: usize = 8;
    let store = Arc::new(DatasetStore::new());
    let cache = Arc::new(CellCache::new(64));
    let mut spec = grid_spec(EmdBackendKind::OneD);
    spec.criteria = Some(CriterionGrid {
        objectives: vec![Objective::MostUnfair],
        aggregators: vec![Aggregator::Mean],
        bins: vec![10],
        emds: vec![EmdBackendKind::OneD],
    });

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut threads = Vec::new();
    for _ in 0..CLIENTS {
        let store = Arc::clone(&store);
        let cache = Arc::clone(&cache);
        let spec = spec.clone();
        let barrier = Arc::clone(&barrier);
        threads.push(std::thread::spawn(move || {
            let mut session = seeded_session(store);
            barrier.wait();
            run_cached(&mut session, &spec, &cache)
        }));
    }
    let reports: Vec<ScenarioReport> =
        threads.into_iter().map(|t| t.join().unwrap()).collect();

    let stats = cache.stats();
    assert_eq!(
        stats.misses, 2,
        "one compute per distinct cell (f and g), no duplicates"
    );
    assert_eq!(stats.hits as usize, 2 * CLIENTS - 2);
    for report in &reports[1..] {
        assert_bitwise_identical(&reports[0], report);
    }
}
