//! Property-based tests (proptest) over the core invariants:
//! EMD metric axioms, backend agreement, QUANTIFY partitioning validity,
//! rank/score consistency, k-anonymity postconditions, CSV round-trips.

use proptest::prelude::*;

use fairank::anonymize::{is_k_anonymous, mondrian, MondrianConfig};
use fairank::core::emd::{one_d::emd_1d_mass, transport::transport_emd, Emd, EmdBackendKind};
use fairank::core::fairness::{Aggregator, FairnessCriterion, Objective};
use fairank::core::histogram::{Histogram, HistogramSpec};
use fairank::core::exhaustive::ExhaustiveSearch;
use fairank::core::partition::is_full_disjoint;
use fairank::core::quantify::Quantify;
use fairank::core::scoring::{ranking_to_scores, scores_to_ranking};
use fairank::core::space::{ProtectedAttribute, RankingSpace};
use fairank::data::csv::{read_csv_str, write_csv_string, CsvOptions};
use fairank::data::schema::AttributeRole;
use fairank::data::Dataset;

// ---------------------------------------------------------------- helpers

fn mass_vector(bins: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, bins).prop_map(|mut v| {
        let sum: f64 = v.iter().sum();
        if sum <= 0.0 {
            v[0] = 1.0;
        } else {
            for x in v.iter_mut() {
                *x /= sum;
            }
        }
        v
    })
}

fn abs_cost(n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            c[i * n + j] = (i as f64 - j as f64).abs();
        }
    }
    c
}

/// A random small ranking space: 2–4 protected attributes with 2–4 values
/// each, 8–60 individuals, scores in [0, 1].
fn ranking_space() -> impl Strategy<Value = RankingSpace> {
    (2usize..=4, 8usize..=60).prop_flat_map(|(n_attrs, n_rows)| {
        let attrs = prop::collection::vec(
            (2u32..=4).prop_flat_map(move |card| {
                prop::collection::vec(0..card, n_rows)
            }),
            n_attrs,
        );
        let scores = prop::collection::vec(0.0f64..=1.0, n_rows);
        (attrs, scores).prop_map(|(attr_codes, scores)| {
            let attributes = attr_codes
                .into_iter()
                .enumerate()
                .map(|(i, codes)| {
                    let card = codes.iter().copied().max().unwrap_or(0) + 1;
                    ProtectedAttribute {
                        name: format!("a{i}"),
                        codes,
                        labels: (0..card).map(|c| format!("v{c}")).collect(),
                    }
                })
                .collect();
            RankingSpace::new(attributes, scores).expect("generated space is valid")
        })
    })
}

/// A smaller space the exhaustive search can enumerate: 2 attributes of
/// 2–3 values, 6–20 individuals.
fn small_ranking_space() -> impl Strategy<Value = RankingSpace> {
    (6usize..=20).prop_flat_map(|n_rows| {
        let attrs = prop::collection::vec(
            (2u32..=3).prop_flat_map(move |card| prop::collection::vec(0..card, n_rows)),
            2,
        );
        let scores = prop::collection::vec(0.0f64..=1.0, n_rows);
        (attrs, scores).prop_map(|(attr_codes, scores)| {
            let attributes = attr_codes
                .into_iter()
                .enumerate()
                .map(|(i, codes)| {
                    let card = codes.iter().copied().max().unwrap_or(0) + 1;
                    ProtectedAttribute {
                        name: format!("a{i}"),
                        codes,
                        labels: (0..card).map(|c| format!("v{c}")).collect(),
                    }
                })
                .collect();
            RankingSpace::new(attributes, scores).expect("generated space is valid")
        })
    })
}

// ------------------------------------------------------------- EMD axioms

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn emd_is_nonnegative_and_zero_on_identity(a in mass_vector(12)) {
        let d = emd_1d_mass(&a, &a, 0.1);
        prop_assert!(d.abs() < 1e-12);
    }

    #[test]
    fn emd_is_symmetric(a in mass_vector(10), b in mass_vector(10)) {
        let ab = emd_1d_mass(&a, &b, 0.1);
        let ba = emd_1d_mass(&b, &a, 0.1);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn emd_satisfies_triangle_inequality(
        a in mass_vector(8),
        b in mass_vector(8),
        c in mass_vector(8),
    ) {
        let ab = emd_1d_mass(&a, &b, 1.0);
        let bc = emd_1d_mass(&b, &c, 1.0);
        let ac = emd_1d_mass(&a, &c, 1.0);
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn transport_solver_matches_cdf_closed_form(
        a in mass_vector(9),
        b in mass_vector(9),
    ) {
        let plan = transport_emd(&a, &b, &abs_cost(9), 9).unwrap();
        let cdf = emd_1d_mass(&a, &b, 1.0);
        prop_assert!((plan.cost - cdf).abs() < 1e-8,
            "transport {} vs cdf {}", plan.cost, cdf);
    }

    #[test]
    fn emd_backends_agree_on_histograms(
        scores_a in prop::collection::vec(0.0f64..=1.0, 1..40),
        scores_b in prop::collection::vec(0.0f64..=1.0, 1..40),
    ) {
        let spec = HistogramSpec::unit(10).unwrap();
        let ha = Histogram::from_scores(spec, scores_a);
        let hb = Histogram::from_scores(spec, scores_b);
        let d1 = Emd::new(EmdBackendKind::OneD).distance(&ha, &hb).unwrap();
        let d2 = Emd::new(EmdBackendKind::Transport).distance(&ha, &hb).unwrap();
        prop_assert!((d1 - d2).abs() < 1e-8);
        // Bounded by the score range.
        prop_assert!(d1 <= 1.0 + 1e-12);
    }
}

// -------------------------------------------------------------- histograms

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_conserves_mass(
        scores in prop::collection::vec(-1.0f64..=2.0, 0..100),
        bins in 1usize..40,
    ) {
        let spec = HistogramSpec::unit(bins).unwrap();
        let h = Histogram::from_scores(spec, scores.iter().copied());
        prop_assert_eq!(h.total() as usize, scores.len());
        let count_sum: u64 = h.counts().iter().sum();
        prop_assert_eq!(count_sum, h.total());
        if !scores.is_empty() {
            let mass_sum: f64 = h.mass().iter().sum();
            prop_assert!((mass_sum - 1.0).abs() < 1e-9);
        }
    }
}

// ---------------------------------------------------------------- quantify

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn quantify_always_yields_full_disjoint_partitionings(space in ranking_space()) {
        for objective in [Objective::MostUnfair, Objective::LeastUnfair] {
            let criterion = FairnessCriterion::new(objective, Aggregator::Mean);
            let outcome = Quantify::new(criterion).run_space(&space).unwrap();
            prop_assert!(is_full_disjoint(&outcome.partitions, space.num_individuals()));
            prop_assert!(outcome.unfairness.is_finite());
            prop_assert!(outcome.unfairness >= 0.0);
            // Leaves of the tree are exactly the partitions.
            prop_assert_eq!(outcome.tree.leaf_partitions().len(), outcome.partitions.len());
        }
    }

    #[test]
    fn exhaustive_optimum_bounds_the_greedy(space in small_ranking_space()) {
        // Note: greedy-most vs greedy-least need NOT dominate each other
        // (both are heuristics); the sound invariant is that the exact
        // search bounds each greedy result from its own side.
        for objective in [Objective::MostUnfair, Objective::LeastUnfair] {
            let criterion = FairnessCriterion::new(objective, Aggregator::Mean);
            let exact = ExhaustiveSearch::new(criterion)
                .with_budget(200_000)
                .without_dedupe()
                .run_space(&space);
            let Ok(exact) = exact else { continue }; // budget blown: skip
            let greedy = Quantify::new(criterion).run_space(&space).unwrap();
            match objective {
                Objective::MostUnfair => {
                    prop_assert!(greedy.unfairness <= exact.best_value + 1e-9)
                }
                Objective::LeastUnfair => {
                    prop_assert!(greedy.unfairness >= exact.best_value - 1e-9)
                }
            }
        }
    }
}

// ------------------------------------------------------------ rank ↔ score

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ranking_round_trip_preserves_order(
        scores in prop::collection::vec(0.0f64..=1.0, 2..50),
    ) {
        let ranking = scores_to_ranking(&scores);
        let pseudo = ranking_to_scores(&ranking, scores.len()).unwrap();
        let reranked = scores_to_ranking(&pseudo);
        prop_assert_eq!(ranking, reranked);
        // Pseudo-scores span exactly [0, 1].
        let max = pseudo.iter().cloned().fold(f64::MIN, f64::max);
        let min = pseudo.iter().cloned().fold(f64::MAX, f64::min);
        prop_assert!((max - 1.0).abs() < 1e-12);
        prop_assert!(min.abs() < 1e-12);
    }
}

// --------------------------------------------------------------- exposure

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exposures_have_unit_mean_and_positive_values(
        scores in prop::collection::vec(0.0f64..=1.0, 1..80),
    ) {
        use fairank::core::exposure::exposures_from_scores;
        let exp = exposures_from_scores(&scores).unwrap();
        prop_assert_eq!(exp.len(), scores.len());
        let mean: f64 = exp.iter().sum::<f64>() / exp.len() as f64;
        prop_assert!((mean - 1.0).abs() < 1e-9);
        prop_assert!(exp.iter().all(|&e| e > 0.0));
    }

    #[test]
    fn exposure_disparity_is_bounded_by_group_extremes(space in small_ranking_space()) {
        use fairank::core::exposure::{
            exposure_disparity, exposures_from_scores, group_exposures,
        };
        use fairank::core::partition::Partition;
        let exp = exposures_from_scores(space.scores()).unwrap();
        let parts = Partition::root(&space).split(&space, 0);
        prop_assume!(parts.len() >= 2);
        let groups = group_exposures(&parts, &exp);
        let max = groups.iter().map(|g| g.mean_exposure).fold(f64::MIN, f64::max);
        let min = groups.iter().map(|g| g.mean_exposure).fold(f64::MAX, f64::min);
        for agg in Aggregator::all() {
            if matches!(agg, Aggregator::Variance | Aggregator::StdDev) {
                continue; // different units
            }
            let d = exposure_disparity(&parts, &exp, agg);
            prop_assert!(d <= max - min + 1e-9, "{agg:?}: {d} > {}", max - min);
            prop_assert!(d >= -1e-12);
        }
    }
}

// ------------------------------------------------------------------- beam

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn beam_is_bounded_by_exhaustive_and_improves_with_width(
        space in small_ranking_space(),
    ) {
        use fairank::core::beam::BeamSearch;
        let criterion = FairnessCriterion::default();
        let exact = ExhaustiveSearch::new(criterion)
            .with_budget(200_000)
            .without_dedupe()
            .run_space(&space);
        let Ok(exact) = exact else { return Ok(()); };
        let narrow = BeamSearch::new(criterion, 1).run_space(&space).unwrap();
        let wide = BeamSearch::new(criterion, 32).run_space(&space).unwrap();
        prop_assert!(narrow.unfairness <= exact.best_value + 1e-9);
        prop_assert!(wide.unfairness <= exact.best_value + 1e-9);
        prop_assert!(wide.unfairness >= narrow.unfairness - 1e-9);
        prop_assert!(is_full_disjoint(&wide.partitions, space.num_individuals()));
    }
}

// ------------------------------------------------------------- k-anonymity

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mondrian_output_is_always_k_anonymous(
        genders in prop::collection::vec(0u8..3, 12..60),
        years in prop::collection::vec(1950i64..2010, 12..60),
        k in 2usize..6,
    ) {
        let n = genders.len().min(years.len());
        let gender_strs: Vec<String> =
            genders[..n].iter().map(|g| format!("g{g}")).collect();
        let ds = Dataset::builder()
            .categorical("gender", AttributeRole::Protected, &gender_strs)
            .integer("year", AttributeRole::Protected, years[..n].to_vec())
            .float("s", AttributeRole::Observed, vec![0.5; n])
            .build()
            .unwrap();
        prop_assume!(k <= n);
        let out = mondrian(&ds, &["gender", "year"], MondrianConfig { k }).unwrap();
        prop_assert!(is_k_anonymous(&out.dataset, &["gender", "year"], k).unwrap());
        prop_assert_eq!(out.dataset.num_rows(), n);
    }
}

// ------------------------------------------------------------------- CSV

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn csv_round_trip_is_lossless_for_categoricals(
        // Non-empty values: an empty value in a single-column CSV is
        // indistinguishable from a blank line, which the reader skips.
        values in prop::collection::vec("[a-z ,\"\n]{1,12}", 1..30),
    ) {
        let ds = Dataset::builder()
            .categorical("text", AttributeRole::Meta, &values)
            .build()
            .unwrap();
        let csv = write_csv_string(&ds);
        let back = read_csv_str(&csv, &CsvOptions::default());
        // Values that are pure numbers may legitimately re-infer as numeric;
        // restrict the check to datasets that round-trip as text.
        if let Ok(back) = back {
            if back.schema().field("text").map(|f| f.dtype)
                == ds.schema().field("text").map(|f| f.dtype)
            {
                for r in 0..ds.num_rows() {
                    prop_assert_eq!(
                        ds.column("text").unwrap().data.render(r),
                        back.column("text").unwrap().data.render(r)
                    );
                }
            }
        }
    }
}
