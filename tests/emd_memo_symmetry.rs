//! Regression suite for the transport-memo symmetry fix.
//!
//! The seed's engine memo was keyed by the *directed* content-id pair, and
//! only the 1-D closed form (bitwise symmetric by negation-exactness) got
//! a mirror entry — a transport `(a, b)` computation was recomputed for
//! `(b, a)`, and the two directions were not guaranteed bit-identical.
//! The backend layer fixes both: the transport solver canonicalizes its
//! input order (so `d(a, b)` and `d(b, a)` share bits by construction) and
//! the memo keys on the unordered pair, so directional repeats share one
//! entry and surface as `emd_cache_hits`.

use fairank::core::emd::{Emd, EmdBackendKind};
use fairank::core::engine::SplitEngine;
use fairank::core::fairness::FairnessCriterion;
use fairank::core::histogram::{Histogram, HistogramSpec};
use fairank::core::partition::Partition;
use fairank::core::space::{ProtectedAttribute, RankingSpace};

fn hist(scores: &[f64]) -> Histogram {
    Histogram::from_scores(HistogramSpec::unit(10).unwrap(), scores.iter().copied())
}

/// A two-attribute space whose groups have clearly distinct score
/// distributions (so every pair distance is a real computation).
fn space() -> RankingSpace {
    let gender =
        ProtectedAttribute::from_values("gender", &["F", "M", "F", "M", "F", "M", "F", "M"]);
    let noise =
        ProtectedAttribute::from_values("noise", &["x", "x", "y", "y", "x", "y", "x", "y"]);
    RankingSpace::new(
        vec![gender, noise],
        vec![0.1, 0.9, 0.2, 0.8, 0.15, 0.85, 0.12, 0.88],
    )
    .unwrap()
}

#[test]
fn transport_distance_is_bitwise_symmetric_at_the_emd_level() {
    let emd = Emd::new(EmdBackendKind::Transport);
    let pairs = [
        (hist(&[0.05, 0.15, 0.8]), hist(&[0.4, 0.5, 0.6, 0.95])),
        (hist(&[0.33, 0.66]), hist(&[0.1])),
        (hist(&[0.0, 1.0]), hist(&[0.5, 0.5, 0.5])),
    ];
    for (a, b) in &pairs {
        let ab = emd.distance(a, b).unwrap();
        let ba = emd.distance(b, a).unwrap();
        assert_eq!(ab.to_bits(), ba.to_bits(), "{ab} vs {ba}");
    }
}

#[test]
fn directional_repeats_hit_the_same_transport_memo_entry() {
    let s = space();
    let criterion =
        FairnessCriterion::default().with_emd(Emd::new(EmdBackendKind::Transport));
    let mut engine = SplitEngine::new(&s, criterion);
    let parts = Partition::root(&s).split(&s, 0);

    // (a, b): a real computation.
    let forward = engine.versus(&parts[0], &parts[1..]).unwrap();
    let calls_after_forward = engine.stats().emd_calls;
    let hits_after_forward = engine.stats().emd_cache_hits;
    assert!(calls_after_forward > 0);

    // (b, a): the seed recomputed here; now it must hit the shared entry.
    let backward = engine.versus(&parts[1], &parts[..1]).unwrap();
    assert_eq!(
        engine.stats().emd_calls,
        calls_after_forward,
        "the reverse direction must not recompute"
    );
    assert_eq!(
        engine.stats().emd_cache_hits,
        hits_after_forward + 1,
        "the reverse lookup must be served from the memo"
    );
    assert_eq!(forward.to_bits(), backward.to_bits());
}

#[test]
fn repeated_transport_unfairness_is_fully_cached() {
    let s = space();
    let criterion =
        FairnessCriterion::default().with_emd(Emd::new(EmdBackendKind::Transport));
    let mut engine = SplitEngine::new(&s, criterion);
    let parts = Partition::root(&s).split(&s, 0);

    let first = engine.unfairness(&parts).unwrap();
    let calls = engine.stats().emd_calls;
    // Reversed partition order flips every pair's direction.
    let reversed: Vec<Partition> = parts.iter().rev().cloned().collect();
    let second = engine.unfairness(&reversed).unwrap();
    assert_eq!(engine.stats().emd_calls, calls);
    assert!(engine.stats().emd_cache_hits > 0);
    assert_eq!(first.to_bits(), second.to_bits());
}

#[test]
fn every_backend_shares_one_memo_entry_per_unordered_pair() {
    for kind in EmdBackendKind::all() {
        let s = space();
        let criterion = FairnessCriterion::default().with_emd(Emd::new(kind));
        let mut engine = SplitEngine::new(&s, criterion);
        let parts = Partition::root(&s).split(&s, 0);
        let _ = engine.versus(&parts[0], &parts[1..]).unwrap();
        let calls = engine.stats().emd_calls;
        let _ = engine.versus(&parts[1], &parts[..1]).unwrap();
        assert_eq!(engine.stats().emd_calls, calls, "{kind:?} recomputed");
        assert!(engine.stats().emd_cache_hits > 0, "{kind:?} never hit");
    }
}
