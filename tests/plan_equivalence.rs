//! The byte-identity contract of the scenario-plan redesign.
//!
//! `quantify_grid`, `auditor_report`, `job_owner_sweep` and
//! `end_user_report` used to hand-roll imperative loops; they are now thin
//! builders over `plan::compile`/`plan::run`. This suite freezes the
//! pre-plan loops as local oracles (`legacy`) and asserts the plan-backed
//! entry points still produce the *exact* reports — struct-equal and
//! byte-identical once rendered. Wall-clock fields (panel `elapsed_us`)
//! are the only values zeroed before comparison: they are measurements,
//! not results.

use fairank::core::fairness::{Aggregator, FairnessCriterion, Objective};
use fairank::data::filter::Filter;
use fairank::marketplace::scenario::taskrabbit_like;
use fairank::marketplace::{Marketplace, Transparency};
use fairank::session::config::Configuration;
use fairank::session::present;
use fairank::session::report::{
    auditor_report, end_user_report, job_owner_sweep, AuditorJobRow, AuditorReport,
    EndUserJobRow, EndUserReport, JobOwnerReport, VariantRow,
};
use fairank::session::response::{PanelView, Response};
use fairank::session::Session;

/// Frozen copies of the pre-plan imperative loops. Deliberately *not*
/// shared with production code: this module is the oracle.
mod legacy {
    use super::*;
    use fairank::core::quantify::Quantify;
    use fairank::core::scoring::{LinearScoring, ScoreSource};
    use fairank::core::subgroup::{least_favored, most_favored, subgroup_stats};
    use fairank::data::Dataset;

    pub fn auditor_report(
        marketplace: &Marketplace,
        transparency: &Transparency,
        criterion: &FairnessCriterion,
        subgroup_depth: usize,
        min_subgroup: usize,
    ) -> AuditorReport {
        let mut rows = Vec::with_capacity(marketplace.jobs().len());
        for job in marketplace.jobs() {
            let obs = marketplace.observe(&job.id, transparency).unwrap();
            let space = obs.dataset.to_space(&obs.source).unwrap();
            let fitted = criterion.fit_range(&space);
            let outcome = Quantify::new(fitted).run_space(&space).unwrap();
            let stats =
                subgroup_stats(&space, &fitted, subgroup_depth, min_subgroup).unwrap();
            let most = most_favored(&stats, 1);
            let least = least_favored(&stats, 1);
            rows.push(AuditorJobRow {
                job_id: job.id.clone(),
                title: job.title.clone(),
                unfairness: outcome.unfairness,
                partitions: outcome.partitions.len(),
                most_favored: most.first().map(|s| s.label.clone()),
                most_favored_advantage: most.first().map_or(0.0, |s| s.advantage),
                least_favored: least.first().map(|s| s.label.clone()),
                least_favored_advantage: least.first().map_or(0.0, |s| s.advantage),
            });
        }
        rows.sort_by(|a, b| {
            b.unfairness
                .partial_cmp(&a.unfairness)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        AuditorReport {
            marketplace: marketplace.name.clone(),
            transparency: transparency.clone(),
            rows,
        }
    }

    fn rebalanced_variant(base: &LinearScoring, skill: &str, weight: f64) -> LinearScoring {
        let others_total: f64 = base
            .terms()
            .iter()
            .filter(|(n, _)| n != skill)
            .map(|(_, w)| w)
            .sum();
        let mut builder = LinearScoring::builder();
        for (name, w) in base.terms() {
            if name == skill {
                continue;
            }
            let rescaled = if others_total > 0.0 {
                w / others_total * (1.0 - weight)
            } else {
                0.0
            };
            builder = builder.weight(name.clone(), rescaled);
        }
        builder = builder.weight(skill, weight);
        builder.build_unchecked().unwrap()
    }

    pub fn job_owner_sweep(
        dataset: &Dataset,
        base: &LinearScoring,
        skill: &str,
        weights: &[f64],
        criterion: &FairnessCriterion,
    ) -> JobOwnerReport {
        let mut rows = Vec::with_capacity(weights.len());
        for &w in weights {
            let variant = rebalanced_variant(base, skill, w);
            let space = dataset
                .to_space(&ScoreSource::Function(variant.clone()))
                .unwrap();
            let outcome = Quantify::new(*criterion).run_space(&space).unwrap();
            rows.push(VariantRow {
                label: format!("{skill}={w:.2}"),
                weights: variant.terms().to_vec(),
                unfairness: outcome.unfairness,
                partitions: outcome.partitions.len(),
            });
        }
        let fairest = rows
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.unfairness
                    .partial_cmp(&b.unfairness)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        JobOwnerReport {
            skill: skill.to_string(),
            rows,
            fairest,
        }
    }

    pub fn end_user_report(marketplace: &Marketplace, group: &Filter) -> EndUserReport {
        let workers = marketplace.workers();
        let group_rows = group.matching_rows(workers).unwrap();
        let n = workers.num_rows();
        let mut member = vec![false; n];
        for &r in &group_rows {
            member[r as usize] = true;
        }
        let mut rows = Vec::with_capacity(marketplace.jobs().len());
        for job in marketplace.jobs() {
            let scores = marketplace.scores_for(&job.id).unwrap();
            let ranking = marketplace.ranking_for(&job.id).unwrap();
            let mut rank_of = vec![0usize; n];
            for (rank, &row) in ranking.iter().enumerate() {
                rank_of[row as usize] = rank;
            }
            let denom = (n.max(2) - 1) as f64;
            let (mut pct_sum, mut g_sum, mut o_sum, mut o_count) =
                (0.0, 0.0, 0.0, 0usize);
            for row in 0..n {
                if member[row] {
                    pct_sum += 1.0 - rank_of[row] as f64 / denom;
                    g_sum += scores[row];
                } else {
                    o_sum += scores[row];
                    o_count += 1;
                }
            }
            let g_count = group_rows.len();
            rows.push(EndUserJobRow {
                job_id: job.id.clone(),
                title: job.title.clone(),
                group_mean_percentile: if g_count == 0 {
                    0.0
                } else {
                    pct_sum / g_count as f64
                },
                group_mean_score: if g_count == 0 { 0.0 } else { g_sum / g_count as f64 },
                others_mean_score: if o_count == 0 { 0.0 } else { o_sum / o_count as f64 },
                group_size: g_count,
            });
        }
        rows.sort_by(|a, b| {
            b.group_mean_percentile
                .partial_cmp(&a.group_mean_percentile)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        EndUserReport {
            group: group.render(),
            rows,
        }
    }
}

fn market() -> Marketplace {
    taskrabbit_like(260, 17).unwrap()
}

#[test]
fn auditor_report_is_byte_identical_to_the_pre_plan_loop() {
    let m = market();
    for (depth, min) in [(1usize, 20usize), (2, 10)] {
        let criterion = FairnessCriterion::default();
        let expected = legacy::auditor_report(&m, &Transparency::full(), &criterion, depth, min);
        let actual =
            auditor_report(&m, &Transparency::full(), &criterion, depth, min).unwrap();
        assert_eq!(expected, actual, "depth={depth} min={min}");
        assert_eq!(expected.render(), actual.render());
    }
    // Under reduced transparency too (anonymized data + ranking-only).
    let blackbox = Transparency::blackbox(4);
    let expected =
        legacy::auditor_report(&m, &blackbox, &FairnessCriterion::default(), 1, 20);
    let actual =
        auditor_report(&m, &blackbox, &FairnessCriterion::default(), 1, 20).unwrap();
    assert_eq!(expected, actual);
    assert_eq!(expected.render(), actual.render());
}

#[test]
fn job_owner_sweep_is_byte_identical_to_the_pre_plan_loop() {
    let m = market();
    let base = m.job("wood-panels").unwrap().scoring.clone();
    for criterion in [
        FairnessCriterion::default(),
        FairnessCriterion::new(Objective::LeastUnfair, Aggregator::Max),
    ] {
        let weights = [0.0, 0.25, 0.5, 0.75, 1.0];
        let expected =
            legacy::job_owner_sweep(m.workers(), &base, "rating", &weights, &criterion);
        let actual =
            job_owner_sweep(m.workers(), &base, "rating", &weights, &criterion).unwrap();
        assert_eq!(expected, actual);
        assert_eq!(expected.render(), actual.render());
    }
}

#[test]
fn end_user_report_is_byte_identical_to_the_pre_plan_loop() {
    let m = market();
    for group in [
        Filter::all().eq("gender", "Female"),
        Filter::all().eq("gender", "Male").eq("city", "Paris"),
        Filter::all().eq("gender", "Nonexistent"),
    ] {
        let expected = legacy::end_user_report(&m, &group);
        let actual = end_user_report(&m, &group, &FairnessCriterion::default()).unwrap();
        assert_eq!(expected, actual, "group {}", group.render());
        assert_eq!(expected.render(), actual.render());
    }
}

/// Renders a panel with its wall-clock zeroed (a measurement, not a
/// result).
fn render_panel_stable(session: &Session, id: usize) -> String {
    let mut view = PanelView::from_panel(session.panel(id).unwrap()).unwrap();
    view.elapsed_us = 0;
    present::render(&Response::PanelDetail(view))
}

#[test]
fn quantify_grid_matches_sequential_quantify_byte_for_byte() {
    let mut grid_session = Session::new();
    let mut seq_session = Session::new();
    for s in [&mut grid_session, &mut seq_session] {
        s.add_dataset("table1", fairank::data::paper::table1_dataset())
            .unwrap();
        s.add_function("paper-f", fairank::data::paper::table1_scoring())
            .unwrap();
    }
    let configs: Vec<Configuration> = Aggregator::all()
        .into_iter()
        .flat_map(|agg| {
            [Objective::MostUnfair, Objective::LeastUnfair].map(|objective| {
                Configuration::new("table1", "paper-f")
                    .with_criterion(FairnessCriterion::new(objective, agg))
            })
        })
        .collect();

    let ids = grid_session.quantify_grid(configs.clone()).unwrap();
    assert_eq!(ids, (0..configs.len()).collect::<Vec<_>>());
    for config in configs {
        seq_session.quantify(config).unwrap();
    }
    for &id in &ids {
        assert_eq!(
            render_panel_stable(&grid_session, id),
            render_panel_stable(&seq_session, id),
            "panel #{id} diverged between grid and sequential quantification"
        );
    }
}

#[test]
fn quantify_grid_still_validates_before_committing() {
    let mut s = Session::new();
    s.add_dataset("table1", fairank::data::paper::table1_dataset())
        .unwrap();
    s.add_function("paper-f", fairank::data::paper::table1_scoring())
        .unwrap();
    let configs = vec![
        Configuration::new("table1", "paper-f"),
        Configuration::new("ghost", "paper-f"),
    ];
    assert!(s.quantify_grid(configs).is_err());
    assert!(s.panels().is_empty());
}
