//! Golden test pinning the Table 1 pipeline end to end, so the paper
//! reproduction cannot silently drift: the recovered scoring function's
//! per-row scores, the induced ranking, and the most-unfair partitioning
//! QUANTIFY finds (with its unfairness value) are all asserted against
//! values captured from the current implementation and cross-checked
//! against the published `f(w)` column.

use fairank::core::scoring::scores_to_ranking;
use fairank::data::paper::{table1_dataset, table1_scoring, table1_space, TABLE1_FW};
use fairank::prelude::*;

/// The ranking Table 1's `f(w)` column induces (row indices, best first):
/// w7 > w2 > w5 > w4 > w3 > w10 > w1 > w9 > w6 > w8.
const GOLDEN_RANKING: [u32; 10] = [6, 1, 4, 3, 2, 9, 0, 8, 5, 7];

/// Mean-pairwise-EMD unfairness of the most-unfair partitioning QUANTIFY
/// finds on Table 1 (10-bin unit histograms): exactly 166/450.
const GOLDEN_UNFAIRNESS: f64 = 0.36888888888888893;

/// The most-unfair partitioning itself: `(label, rows)` leaves in tree
/// order. QUANTIFY splits on year_of_birth first (every singleton birth
/// year is maximally spread), then splits the two 2-person year groups on
/// gender and country respectively.
const GOLDEN_PARTITIONS: [(&str, &[u32]); 10] = [
    ("year_of_birth=1963 ∧ gender=Female", &[4]),
    ("year_of_birth=1963 ∧ gender=Male", &[3]),
    ("year_of_birth=1976 ∧ country=India", &[2]),
    ("year_of_birth=1976 ∧ country=America", &[1]),
    ("year_of_birth=1982", &[6]),
    ("year_of_birth=1992", &[8]),
    ("year_of_birth=1995", &[5]),
    ("year_of_birth=2000", &[9]),
    ("year_of_birth=2004", &[0]),
    ("year_of_birth=2008", &[7]),
];

#[test]
fn recovered_scoring_reproduces_the_published_scores() {
    let space = table1_space().expect("paper space builds");
    assert_eq!(space.scores().len(), TABLE1_FW.len());
    for (i, (&got, &published)) in space.scores().iter().zip(&TABLE1_FW).enumerate() {
        assert!(
            (got - published).abs() < 1e-9,
            "row w{}: scored {got}, Table 1 prints {published}",
            i + 1
        );
    }
}

#[test]
fn table1_ranking_is_pinned() {
    let space = table1_space().expect("paper space builds");
    assert_eq!(scores_to_ranking(space.scores()), GOLDEN_RANKING);
}

#[test]
fn quantify_most_unfair_partitioning_is_pinned_under_every_backend() {
    use fairank::core::emd::{Emd, EmdBackendKind};

    let space = table1_space().expect("paper space builds");
    let want: Vec<(String, Vec<u32>)> = GOLDEN_PARTITIONS
        .iter()
        .map(|(label, rows)| (label.to_string(), rows.to_vec()))
        .collect();
    // The backend choice must never change the reported unfairness or the
    // partitioning: the 1-D family (`1d`, `batched`) reproduces the golden
    // to the last bit, the transport solver to its pinned 1e-9 epsilon.
    for backend in EmdBackendKind::all() {
        let criterion = FairnessCriterion::new(Objective::MostUnfair, Aggregator::Mean)
            .with_emd(Emd::new(backend));
        let outcome = Quantify::new(criterion)
            .run(&table1_dataset(), &ScoreSource::from(table1_scoring()))
            .expect("quantify runs on Table 1");
        let eps = match backend {
            EmdBackendKind::Transport => 1e-9,
            _ => 1e-12,
        };
        assert!(
            (outcome.unfairness - GOLDEN_UNFAIRNESS).abs() < eps,
            "{backend:?} unfairness drifted: {:.17} vs pinned {GOLDEN_UNFAIRNESS:.17}",
            outcome.unfairness
        );
        let got: Vec<(String, Vec<u32>)> = outcome
            .partitions
            .iter()
            .map(|p| (p.label(&space), p.rows.clone()))
            .collect();
        assert_eq!(got, want, "{backend:?} found a different partitioning");
    }
}

#[test]
fn quantify_is_deterministic_across_runs() {
    let criterion = FairnessCriterion::new(Objective::MostUnfair, Aggregator::Mean);
    let a = Quantify::new(criterion)
        .run(&table1_dataset(), &ScoreSource::from(table1_scoring()))
        .expect("first run");
    let b = Quantify::new(criterion)
        .run(&table1_dataset(), &ScoreSource::from(table1_scoring()))
        .expect("second run");
    assert_eq!(a.unfairness, b.unfairness);
    assert_eq!(a.partitions, b.partitions);
}
