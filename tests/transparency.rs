//! Integration tests for the transparency settings (experiments E5, E6):
//! fairness quantification under k-anonymized data and ranking-only
//! observation.

use fairank::anonymize::{datafly, is_k_anonymous, mondrian, DataflyConfig, MondrianConfig};
use fairank::core::fairness::FairnessCriterion;
use fairank::core::quantify::Quantify;
use fairank::core::scoring::{scores_to_ranking, LinearScoring, ScoreSource};
use fairank::data::synth::biased_crowdsourcing_spec;
use fairank::data::Dataset;

const QIS: [&str; 5] = ["gender", "country", "birth_decade", "language", "ethnicity"];

fn population() -> Dataset {
    biased_crowdsourcing_spec(400, 21).generate().unwrap()
}

fn rating_fn(ds: &Dataset) -> LinearScoring {
    LinearScoring::builder()
        .weight("rating", 1.0)
        .build(ds)
        .unwrap()
}

#[test]
fn e5_mondrian_anonymization_preserves_quantifiability() {
    let ds = population();
    let source = ScoreSource::Function(rating_fn(&ds));
    let quantify = Quantify::new(FairnessCriterion::default());
    let baseline = quantify.run(&ds, &source).unwrap();
    assert!(baseline.unfairness > 0.0);

    let mut last_partitions = usize::MAX;
    for k in [2, 10, 50] {
        let anon = mondrian(&ds, &QIS, MondrianConfig { k }).unwrap().dataset;
        assert!(is_k_anonymous(&anon, &QIS, k).unwrap());
        let outcome = quantify.run(&anon, &source).unwrap();
        // Quantification still works and still finds unfairness.
        assert!(outcome.unfairness > 0.0, "k={k}");
        // Higher k → coarser groups → no more partitions than before.
        assert!(
            outcome.partitions.len() <= last_partitions,
            "k={k}: {} partitions after {}",
            outcome.partitions.len(),
            last_partitions
        );
        last_partitions = outcome.partitions.len();
    }
}

#[test]
fn e5_datafly_anonymization_pipeline() {
    let ds = population();
    let out = datafly(
        &ds,
        &QIS,
        &[],
        DataflyConfig {
            k: 5,
            max_suppression: 0.05,
        },
    )
    .unwrap();
    assert!(is_k_anonymous(&out.dataset, &QIS, 5).unwrap());
    assert!(out.dataset.num_rows() >= (0.95 * ds.num_rows() as f64) as usize);
    let source = ScoreSource::Function(rating_fn(&out.dataset));
    let outcome = Quantify::new(FairnessCriterion::default())
        .run(&out.dataset, &source)
        .unwrap();
    assert!(outcome.unfairness >= 0.0);
}

#[test]
fn e6_ranking_only_detects_the_same_biased_attribute() {
    let ds = population();
    let source = ScoreSource::Function(rating_fn(&ds));
    let quantify = Quantify::new(FairnessCriterion::default());
    let transparent = quantify.run(&ds, &source).unwrap();

    let scores = source.resolve(&ds).unwrap();
    let ranking = ScoreSource::Ranking(scores_to_ranking(&scores));
    let opaque = quantify.run(&ds, &ranking).unwrap();

    assert!(transparent.unfairness > 0.0);
    assert!(opaque.unfairness > 0.0);

    // Both settings should pick a bias-carrying attribute for the first
    // split (gender or ethnicity carry the injected rating penalties).
    let space = ds.to_space(&source).unwrap();
    let first_attr = |outcome: &fairank::core::quantify::QuantifyOutcome| -> String {
        let root = outcome.tree.node(outcome.tree.root());
        root.split_attr
            .and_then(|a| space.attribute(a))
            .map(|a| a.name.clone())
            .unwrap_or_default()
    };
    let t_attr = first_attr(&transparent);
    let o_attr = first_attr(&opaque);
    for attr in [&t_attr, &o_attr] {
        assert!(
            attr == "gender" || attr == "ethnicity" || attr == "country",
            "first split should reflect injected bias, got {attr}"
        );
    }
}

#[test]
fn anonymization_shrinks_the_attack_surface_monotonically() {
    let ds = population();
    // Count distinct QI combinations (equivalence classes) at each k.
    let raw_classes = fairank::anonymize::equivalence_classes(&ds, &QIS)
        .unwrap()
        .len();
    let mut last = raw_classes;
    for k in [2, 5, 20] {
        let anon = mondrian(&ds, &QIS, MondrianConfig { k }).unwrap().dataset;
        let classes = fairank::anonymize::equivalence_classes(&anon, &QIS)
            .unwrap()
            .len();
        assert!(classes <= last, "k={k}");
        last = classes;
    }
}
