//! The three demonstration scenarios (§4) driven end-to-end through the
//! session command language — the scripted version of the EDBT demo.

use fairank::session::command::{execute, Command};
use fairank::session::Session;

fn run(session: &mut Session, line: &str) -> String {
    execute(
        session,
        Command::parse(line).unwrap_or_else(|e| panic!("parse {line:?}: {e}")),
    )
    .unwrap_or_else(|e| panic!("execute {line:?}: {e}"))
}

#[test]
fn demo_script_auditor() {
    let mut s = Session::new();
    let out = run(&mut s, "audit taskrabbit n=200 seed=42");
    assert!(out.contains("AUDITOR REPORT"));
    assert!(out.contains("rated-anything"));
    // Transparency variants of the same audit.
    let bb = run(&mut s, "audit taskrabbit n=200 seed=42 k=5 ranking-only");
    assert!(bb.contains("AUDITOR REPORT"));
}

#[test]
fn demo_script_job_owner() {
    let mut s = Session::new();
    let out = run(&mut s, "jobowner qapa code coding n=200 seed=42");
    assert!(out.contains("JOB OWNER SWEEP"));
    assert!(out.contains("← fairest"));
}

#[test]
fn demo_script_end_user() {
    let mut s = Session::new();
    let out = run(&mut s, r#"enduser qapa "origin=Maghreb" n=200 seed=42"#);
    assert!(out.contains("END-USER REPORT"));
    assert!(out.contains("origin=Maghreb"));
}

#[test]
fn demo_script_interactive_exploration() {
    // The Figure 3 flow: pick a dataset, a function, a criterion; compare
    // panels; inspect nodes; export.
    let mut s = Session::new();
    s.add_dataset("table1", fairank::data::paper::table1_dataset())
        .unwrap();
    s.add_function("paper-f", fairank::data::paper::table1_scoring())
        .unwrap();

    let p0 = run(&mut s, "quantify table1 paper-f");
    assert!(p0.contains("panel #0"));
    let p1 = run(&mut s, "quantify table1 paper-f objective=least");
    assert!(p1.contains("panel #1"));
    let cmp = run(&mut s, "compare 0 1");
    assert!(cmp.contains("Δ"));

    let tree = run(&mut s, "show 0");
    assert!(tree.contains("ALL"));
    let node = run(&mut s, "node 0 0");
    assert!(node.contains("individuals     10"));

    // Filter then re-quantify, as the interface allows.
    run(&mut s, r#"filter males table1 "gender=Male""#);
    let p2 = run(&mut s, "quantify males paper-f");
    assert!(p2.contains("panel #2"));
    assert_eq!(s.panel(2).unwrap().general_info().individuals, 6);

    // Anonymize then re-quantify (data transparency).
    run(&mut s, "anonymize anon table1 k=2");
    let p3 = run(&mut s, "quantify anon paper-f");
    assert!(p3.contains("panel #3"));

    // Function-opaque quantification (process transparency).
    let p4 = run(&mut s, "quantify table1 paper-f opaque");
    assert!(p4.contains("panel #4"));
}

#[test]
fn generated_presets_are_usable_end_to_end() {
    let mut s = Session::new();
    for (name, preset) in [
        ("a", "crowdsourcing"),
        ("b", "biased"),
        ("c", "taskrabbit"),
        ("d", "qapa"),
    ] {
        let out = run(&mut s, &format!("generate {name} {preset} n=80 seed=1"));
        assert!(out.contains("generated"));
    }
    run(&mut s, "define f rating*1.0");
    assert!(run(&mut s, "quantify b f").contains("panel #0"));
    // The qapa population has customer_rating instead of rating.
    run(&mut s, "define g customer_rating*1.0");
    assert!(run(&mut s, "quantify d g").contains("panel #1"));
}
