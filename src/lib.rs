//! # FaiRank
//!
//! A from-scratch Rust reproduction of *FaiRank: An Interactive System to
//! Explore Fairness of Ranking in Online Job Marketplaces* (Ghizzawi,
//! Marinescu, Elbassuoni, Amer-Yahia, Bisson — EDBT 2019).
//!
//! FaiRank takes a set of individuals with *protected* attributes (gender,
//! age, ethnicity, …) and *observed* attributes (skills, reputation), plus a
//! scoring function used to rank them for jobs. It searches the space of
//! partitionings of the individuals induced by protected-attribute values for
//! the partitioning on which the scoring function is most (or least) unfair,
//! where unfairness aggregates pairwise Earth Mover's Distances between the
//! partitions' score histograms.
//!
//! This facade crate re-exports the entire workspace:
//!
//! * [`core`] — the paper's contribution: scoring, histograms, EMD,
//!   unfairness, the `QUANTIFY` greedy partitioning algorithm and its
//!   exhaustive baseline.
//! * [`data`] — dataset substrate: columnar storage, CSV/JSON IO, filters,
//!   the paper's Table 1 dataset, and synthetic crowdsourcing generators.
//! * [`anonymize`] — data-transparency substrate: k-anonymity (Datafly and
//!   Mondrian), l-diversity, generalization hierarchies (ARX substitute).
//! * [`marketplace`] — simulated online job marketplaces with transparency
//!   modes and a blackbox crawler.
//! * [`session`] — the interactive exploration engine: configurations,
//!   panels, node statistics, role-specific reports — exposed through the
//!   typed request/response API (`apply` → `Response`, rendered by
//!   `present`).
//! * [`service`] — the serving layer: a concurrent session registry and a
//!   JSON-lines TCP server multiplexing many clients over many sessions
//!   (`fairank serve` / `fairank connect`).
//!
//! ## Quickstart
//!
//! ```
//! use fairank::prelude::*;
//!
//! // The example dataset the paper uses throughout (Table 1).
//! let dataset = fairank::data::paper::table1_dataset();
//!
//! // The paper's scoring function, recovered from the published f(w)
//! // column: f = 0.3 · language_test + 0.7 · rating.
//! let scoring = LinearScoring::builder()
//!     .weight("language_test", 0.3)
//!     .weight("rating", 0.7)
//!     .build(&dataset)
//!     .unwrap();
//!
//! // Find the most-unfair partitioning under average pairwise EMD.
//! let criterion = FairnessCriterion::new(Objective::MostUnfair, Aggregator::Mean);
//! let outcome = Quantify::new(criterion)
//!     .run(&dataset, &ScoreSource::from(scoring))
//!     .unwrap();
//! assert!(outcome.unfairness > 0.0);
//! assert!(!outcome.partitions.is_empty());
//! ```

pub use fairank_anonymize as anonymize;
pub use fairank_core as core;
pub use fairank_data as data;
pub use fairank_marketplace as marketplace;
pub use fairank_service as service;
pub use fairank_session as session;

/// One-stop imports for the most common FaiRank workflow.
pub mod prelude {
    pub use fairank_core::{
        emd::{emd_1d, Emd, EmdBackend, EmdBackendKind},
        fairness::{Aggregator, FairnessCriterion, Objective},
        histogram::{Histogram, HistogramSpec},
        partition::{Partition, PartitioningTree},
        quantify::{Quantify, QuantifyOutcome},
        scoring::{LinearScoring, ScoreSource},
    };
    pub use fairank_data::{
        dataset::Dataset,
        filter::Filter,
        schema::{AttributeRole, Schema},
    };
    pub use fairank_service::{Reply, Request, Server, ServerConfig, SessionRegistry};
    pub use fairank_session::{
        command::{apply, Command},
        config::Configuration,
        panel::Panel,
        present,
        response::Response,
        session::Session,
    };
}
