//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in the build environment, so this crate
//! provides the serde façade the workspace compiles against: `Serialize` /
//! `Deserialize` traits plus same-named derive macros (re-exported from the
//! sibling `serde_derive` stub). Instead of serde's visitor architecture it
//! uses a single self-describing [`value::Value`] tree; `serde_json` (also
//! vendored) renders that tree to and from JSON text. The derive macros emit
//! serde's default *externally tagged* enum representation, so the JSON
//! shape matches what upstream serde_json would produce for this codebase.

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    //! The self-describing data model all (de)serialization routes through.

    /// A JSON-shaped value tree.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// Null / missing.
        Null,
        /// Boolean.
        Bool(bool),
        /// Signed integer.
        I64(i64),
        /// Unsigned integer too large for `i64`.
        U64(u64),
        /// Floating point.
        F64(f64),
        /// String.
        Str(String),
        /// Sequence.
        Seq(Vec<Value>),
        /// Key-ordered map (field order preserved).
        Map(Vec<(String, Value)>),
    }

    impl Value {
        /// Map accessor.
        pub fn as_map(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Map(m) => Some(m),
                _ => None,
            }
        }

        /// Sequence accessor.
        pub fn as_seq(&self) -> Option<&[Value]> {
            match self {
                Value::Seq(s) => Some(s),
                _ => None,
            }
        }

        /// String accessor.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// Numeric accessor with lossless-enough widening to `f64`.
        /// `null` is not a number (upstream serde_json errors there too).
        pub fn as_f64(&self) -> Option<f64> {
            match *self {
                Value::I64(i) => Some(i as f64),
                Value::U64(u) => Some(u as f64),
                Value::F64(f) => Some(f),
                _ => None,
            }
        }

        /// Signed-integer accessor.
        pub fn as_i64(&self) -> Option<i64> {
            match *self {
                Value::I64(i) => Some(i),
                Value::U64(u) => i64::try_from(u).ok(),
                Value::F64(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(f as i64),
                _ => None,
            }
        }

        /// Unsigned-integer accessor.
        pub fn as_u64(&self) -> Option<u64> {
            match *self {
                Value::I64(i) => u64::try_from(i).ok(),
                Value::U64(u) => Some(u),
                // `u64::MAX as f64` rounds up to 2^64, so `<` keeps the
                // saturating cast exact for every accepted value.
                Value::F64(f) if f.fract() == 0.0 && (0.0..u64::MAX as f64).contains(&f) => {
                    Some(f as u64)
                }
                _ => None,
            }
        }

        /// Boolean accessor.
        pub fn as_bool(&self) -> Option<bool> {
            match *self {
                Value::Bool(b) => Some(b),
                _ => None,
            }
        }
    }
}

pub mod de {
    //! Deserialization error type.

    /// A deserialization failure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(String);

    impl Error {
        /// Builds an error from any displayable message.
        pub fn custom<T: std::fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    impl std::error::Error for Error {}
}

use de::Error;
use value::Value;

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the data-model tree.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `self` out of the data-model tree.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called when a struct field is absent. `Option<T>` overrides this to
    /// yield `None`; everything else errors.
    fn missing_field(name: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{name}`")))
    }
}

/// Looks up a struct field by name during derive-generated deserialization.
pub fn __field<T: Deserialize>(map: &[(String, Value)], name: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v)
            .map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
        None => T::missing_field(name),
    }
}

// ------------------------------------------------------------- primitives

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| {
                    Error::custom(concat!("expected ", stringify!($t)))
                })?;
                <$t>::try_from(i).map_err(Error::custom)
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64, isize);

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| {
                    Error::custom(concat!("expected ", stringify!($t)))
                })?;
                <$t>::try_from(u).map_err(Error::custom)
            }
        }
    )*};
}

unsigned_impl!(u8, u16, u32, u64, usize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                // JSON has no non-finite numbers; mirror serde_json's
                // permissive mode by emitting null.
                let f = *self as f64;
                if f.is_finite() { Value::F64(f) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

float_impl!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_name: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| {
                    let key = match k.to_value() {
                        Value::Str(s) => s,
                        other => panic!("non-string map key: {other:?}"),
                    };
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! tuple_impl {
    ($(($($idx:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| Error::custom("expected tuple sequence"))?;
                let expected = [$(stringify!($idx)),+].len();
                if seq.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected}, got {}", seq.len()
                    )));
                }
                Ok(($($t::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}

tuple_impl! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}
