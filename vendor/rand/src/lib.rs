//! Offline stand-in for the `rand` crate.
//!
//! The crates.io registry is unreachable in the build environment, so this
//! workspace vendors the slice of the rand 0.8 API that FaiRank actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension trait with `gen::<f64>()` and `gen_range(..)` over integer and
//! float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12-based `StdRng`, but with the same
//! contract the codebase relies on: deterministic for a fixed seed, with
//! high-quality 64-bit output.

use std::ops::{Range, RangeInclusive};

/// Core 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed byte-array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64`, expanded with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(word.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Samples a `Self` from raw random bits; backs [`Rng::gen`].
pub trait Sample01: Sized {
    /// Draws one value from the generator's "standard" distribution
    /// (uniform over the type's natural unit domain).
    fn sample01<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Sample01 for f64 {
    fn sample01<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample01 for f32 {
    fn sample01<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Sample01 for u64 {
    fn sample01<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample01 for u32 {
    fn sample01<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Sample01 for bool {
    fn sample01<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that can be sampled uniformly; backs [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Sample01>::sample01(rng);
                let v = self.start + unit * (self.end - self.start);
                // lo + unit*(hi-lo) can round up to exactly `end`; keep the
                // documented exclusive upper bound.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Sample01>::sample01(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution
    /// (`gen::<f64>()` is uniform in `[0, 1)`).
    fn gen<T: Sample01>(&mut self) -> T {
        T::sample01(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample01(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the stand-in for rand's `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E3779B97F4A7C15,
                    0x6A09E667F3BCC909,
                    0xBB67AE8584CAA73B,
                    0x3C6EF372FE94F82B,
                ];
            }
            StdRng { s }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_for_fixed_seed() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn different_seeds_differ() {
            let mut a = StdRng::seed_from_u64(1);
            let mut b = StdRng::seed_from_u64(2);
            assert_ne!(
                (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
                (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
            );
        }

        #[test]
        fn unit_floats_stay_in_unit_interval_and_cover_it() {
            let mut rng = StdRng::seed_from_u64(7);
            let xs: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
            assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        }

        #[test]
        fn gen_range_respects_bounds() {
            let mut rng = StdRng::seed_from_u64(3);
            for _ in 0..1000 {
                let x: u32 = rng.gen_range(0..5);
                assert!(x < 5);
                let y: f64 = rng.gen_range(0.25..=0.75);
                assert!((0.25..=0.75).contains(&y));
                let z: i64 = rng.gen_range(1950i64..2010);
                assert!((1950..2010).contains(&z));
            }
        }
    }
}
