//! Offline stand-in for the `polling` crate.
//!
//! The registry is unreachable in the build environment, so this crate
//! provides the portable-readiness subset the FaiRank event-loop server
//! drives: register file descriptors with a [`Poller`], block in
//! [`Poller::wait`] until one becomes readable/writable, and wake the
//! waiter from another thread with [`Poller::notify`].
//!
//! Two backends, selected at compile time:
//!
//! * **Linux:** `epoll` in level-triggered mode (no `EPOLLET` — the caller
//!   re-arms nothing; an event repeats until the condition is consumed,
//!   which is exactly what a read-accumulate/write-drain state machine
//!   wants).
//! * **Other unix:** `poll(2)` over a registry of interests rebuilt per
//!   wait. Slower (O(n) per wait) but fully portable.
//!
//! Both keep a self-pipe registered alongside user sources: `notify`
//! writes one byte, the waiter drains it and returns — the classic
//! self-pipe trick, used here so dispatcher threads can hand completed
//! replies back to the event loop without the loop having to tick on a
//! timeout.
//!
//! No `libc` crate exists in this environment; `std` already links the
//! platform C library, so the handful of syscall wrappers are declared
//! directly as `extern "C"` symbols.

#![cfg(unix)]

use std::io;
use std::os::fd::AsRawFd;
use std::time::Duration;

/// Interest in — or readiness of — one registered source.
///
/// `key` is caller-chosen and echoed back on every event for that source;
/// the poller never interprets it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The caller's identifier for the source.
    pub key: usize,
    /// Readable (or closed/errored — a read will not block).
    pub readable: bool,
    /// Writable (or errored — a write will not block).
    pub writable: bool,
}

impl Event {
    /// Interest in readability only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in writability only.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both directions.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest (keeps the source registered; useful to mute a source
    /// without the delete/re-add dance).
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// The readiness poller. `Send + Sync`: `notify` is called from dispatcher
/// threads while the event loop blocks in `wait`.
pub struct Poller {
    imp: imp::Backend,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller").finish_non_exhaustive()
    }
}

impl Poller {
    /// A new poller with its notify pipe armed.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            imp: imp::Backend::new()?,
        })
    }

    /// Registers `source` under `interest.key`. The source must be in
    /// nonblocking mode (readiness does not make blocking calls safe
    /// against spurious wakeups).
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        self.imp.add(source.as_raw_fd(), interest)
    }

    /// Replaces the interest of an already-registered source.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        self.imp.modify(source.as_raw_fd(), interest)
    }

    /// Deregisters a source. Must be called before the descriptor is
    /// closed (a closed fd silently vanishes from epoll, but the poll(2)
    /// backend would keep polling a dead slot).
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.imp.delete(source.as_raw_fd())
    }

    /// Blocks until at least one source is ready, `notify` is called, or
    /// `timeout` elapses (`None` waits forever). Ready events are appended
    /// to `events` (which is cleared first); returns how many were
    /// delivered. Notify wakeups are consumed internally and deliver zero
    /// events. Interrupted waits (`EINTR`) return zero events rather than
    /// erroring, so callers can treat every return as "re-check state".
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        self.imp.wait(events, timeout)
    }

    /// Wakes a blocked [`Poller::wait`] from another thread. Coalesces:
    /// any number of notifies before the next wait produce one wakeup.
    pub fn notify(&self) -> io::Result<()> {
        self.imp.notify()
    }
}

/// Milliseconds for the backend timeout argument: `None` blocks forever
/// (-1); sub-millisecond waits round up so a 100µs timeout does not spin.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            if ms == 0 && !d.is_zero() {
                1
            } else {
                ms.min(i32::MAX as u128) as i32
            }
        }
    }
}

// ------------------------------------------------------------ linux/epoll

#[cfg(target_os = "linux")]
mod imp {
    use super::{timeout_ms, Event};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    #[allow(non_camel_case_types)]
    type c_int = i32;

    // x86-64 epoll_event is packed (the kernel ABI predates the arch);
    // every other architecture uses natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0x80000;

    // O_NONBLOCK / O_CLOEXEC for pipe2 (x86-64 and aarch64 share these).
    const O_NONBLOCK: c_int = 0x800;
    const O_CLOEXEC: c_int = 0x80000;

    /// The sentinel `data` value marking the notify pipe's read end.
    const NOTIFY: u64 = u64::MAX;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub(super) struct Backend {
        epfd: c_int,
        pipe_read: c_int,
        pipe_write: c_int,
    }

    // Raw fds are plain integers; epoll_ctl/epoll_wait/write are
    // thread-safe syscalls.
    unsafe impl Send for Backend {}
    unsafe impl Sync for Backend {}

    impl Backend {
        pub(super) fn new() -> io::Result<Backend> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let mut fds = [0 as c_int; 2];
            if let Err(e) = cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) }) {
                unsafe { close(epfd) };
                return Err(e);
            }
            let backend = Backend {
                epfd,
                pipe_read: fds[0],
                pipe_write: fds[1],
            };
            let mut ev = EpollEvent {
                events: EPOLLIN,
                data: NOTIFY,
            };
            cvt(unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, backend.pipe_read, &mut ev) })?;
            Ok(backend)
        }

        fn mask(interest: Event) -> u32 {
            let mut events = EPOLLRDHUP; // always learn about peer close
            if interest.readable {
                events |= EPOLLIN;
            }
            if interest.writable {
                events |= EPOLLOUT;
            }
            events
        }

        pub(super) fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: Self::mask(interest),
                data: interest.key as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) }).map(|_| ())
        }

        pub(super) fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: Self::mask(interest),
                data: interest.key as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, fd, &mut ev) }).map(|_| ())
        }

        pub(super) fn delete(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    buf.as_mut_ptr(),
                    buf.len() as c_int,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                return if err.kind() == io::ErrorKind::Interrupted {
                    Ok(0)
                } else {
                    Err(err)
                };
            }
            for ev in buf.iter().take(n as usize) {
                // Copy out of the (possibly packed) struct before use.
                let (events, data) = (ev.events, ev.data);
                if data == NOTIFY {
                    self.drain_notify();
                    continue;
                }
                out.push(Event {
                    key: data as usize,
                    // Error/hangup conditions surface as both-ready so the
                    // caller's next read/write observes the actual error.
                    readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                    writable: events & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(out.len())
        }

        pub(super) fn notify(&self) -> io::Result<()> {
            let byte = [1u8];
            // EAGAIN (pipe full) means wakeups are already pending —
            // coalescing is the point.
            let n = unsafe { write(self.pipe_write, byte.as_ptr(), 1) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::WouldBlock {
                    return Err(err);
                }
            }
            Ok(())
        }

        fn drain_notify(&self) {
            let mut buf = [0u8; 64];
            // Nonblocking read end: loop until empty.
            while unsafe { read(self.pipe_read, buf.as_mut_ptr(), buf.len()) } > 0 {}
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            unsafe {
                close(self.pipe_read);
                close(self.pipe_write);
                close(self.epfd);
            }
        }
    }
}

// ------------------------------------------------------- unix poll(2) fallback

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::{timeout_ms, Event};
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    #[allow(non_camel_case_types)]
    type c_int = i32;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    const F_SETFL: c_int = 4;
    // BSD-lineage O_NONBLOCK (macOS, the BSDs); this module never compiles
    // on Linux, whose value differs.
    const O_NONBLOCK: c_int = 0x004;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    }

    pub(super) struct Backend {
        registry: Mutex<HashMap<RawFd, Event>>,
        pipe_read: c_int,
        pipe_write: c_int,
    }

    unsafe impl Send for Backend {}
    unsafe impl Sync for Backend {}

    impl Backend {
        pub(super) fn new() -> io::Result<Backend> {
            let mut fds = [0 as c_int; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            for fd in fds {
                if unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) } < 0 {
                    let err = io::Error::last_os_error();
                    unsafe {
                        close(fds[0]);
                        close(fds[1]);
                    }
                    return Err(err);
                }
            }
            Ok(Backend {
                registry: Mutex::new(HashMap::new()),
                pipe_read: fds[0],
                pipe_write: fds[1],
            })
        }

        pub(super) fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            let mut registry = self.registry.lock().unwrap();
            if registry.contains_key(&fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            registry.insert(fd, interest);
            Ok(())
        }

        pub(super) fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            let mut registry = self.registry.lock().unwrap();
            match registry.get_mut(&fd) {
                Some(slot) => {
                    *slot = interest;
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub(super) fn delete(&self, fd: RawFd) -> io::Result<()> {
            match self.registry.lock().unwrap().remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            // Snapshot interests; keys are resolved against the same
            // snapshot after poll returns.
            let snapshot: Vec<(RawFd, Event)> = self
                .registry
                .lock()
                .unwrap()
                .iter()
                .map(|(fd, ev)| (*fd, *ev))
                .collect();
            let mut fds: Vec<PollFd> = Vec::with_capacity(snapshot.len() + 1);
            fds.push(PollFd {
                fd: self.pipe_read,
                events: POLLIN,
                revents: 0,
            });
            for (fd, interest) in &snapshot {
                let mut events = 0i16;
                if interest.readable {
                    events |= POLLIN;
                }
                if interest.writable {
                    events |= POLLOUT;
                }
                fds.push(PollFd {
                    fd: *fd,
                    events,
                    revents: 0,
                });
            }
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms(timeout)) };
            if n < 0 {
                let err = io::Error::last_os_error();
                return if err.kind() == io::ErrorKind::Interrupted {
                    Ok(0)
                } else {
                    Err(err)
                };
            }
            if fds[0].revents != 0 {
                self.drain_notify();
            }
            for (slot, (_, interest)) in fds[1..].iter().zip(&snapshot) {
                if slot.revents == 0 {
                    continue;
                }
                out.push(Event {
                    key: interest.key,
                    readable: slot.revents & (POLLIN | POLLHUP | POLLERR) != 0,
                    writable: slot.revents & (POLLOUT | POLLHUP | POLLERR) != 0,
                });
            }
            Ok(out.len())
        }

        pub(super) fn notify(&self) -> io::Result<()> {
            let byte = [1u8];
            let n = unsafe { write(self.pipe_write, byte.as_ptr(), 1) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::WouldBlock {
                    return Err(err);
                }
            }
            Ok(())
        }

        fn drain_notify(&self) {
            let mut buf = [0u8; 64];
            while unsafe { read(self.pipe_read, buf.as_mut_ptr(), buf.len()) } > 0 {}
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            unsafe {
                close(self.pipe_read);
                close(self.pipe_write);
            }
        }
    }
}

#[cfg(not(unix))]
compile_error!("the vendored polling stub supports unix targets only");

// ---------------------------------------------------------------- tests

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    fn wait_for(
        poller: &Poller,
        events: &mut Vec<Event>,
        pred: impl Fn(&Event) -> bool,
    ) -> Event {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            assert!(Instant::now() < deadline, "no event within 10s");
            poller
                .wait(events, Some(Duration::from_millis(100)))
                .unwrap();
            if let Some(ev) = events.iter().find(|e| pred(e)) {
                return *ev;
            }
        }
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&listener, Event::readable(7)).unwrap();

        // Nothing pending: a short wait delivers no events.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        let _client = TcpStream::connect(addr).unwrap();
        let ev = wait_for(&poller, &mut events, |e| e.key == 7);
        assert!(ev.readable);
        poller.delete(&listener).unwrap();
    }

    #[test]
    fn stream_reports_writable_then_peer_close_reports_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&server_side, Event::all(3)).unwrap();
        let mut events = Vec::new();
        // A fresh connected socket has send-buffer space: writable.
        let ev = wait_for(&poller, &mut events, |e| e.key == 3 && e.writable);
        assert!(ev.writable);

        // Mute writes, then close the peer: EOF must surface as readable.
        poller.modify(&server_side, Event::readable(3)).unwrap();
        drop(client);
        let ev = wait_for(&poller, &mut events, |e| e.key == 3 && e.readable);
        assert!(ev.readable);
        poller.delete(&server_side).unwrap();
    }

    #[test]
    fn data_arrival_is_level_triggered_until_consumed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&server_side, Event::readable(9)).unwrap();
        client.write_all(b"ping").unwrap();

        let mut events = Vec::new();
        // Unconsumed data keeps reporting readable (level-triggered).
        for _ in 0..2 {
            let ev = wait_for(&poller, &mut events, |e| e.key == 9);
            assert!(ev.readable);
        }
        let mut buf = [0u8; 16];
        let n = server_side.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "consumed data must stop reporting");
        poller.delete(&server_side).unwrap();
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::clone(&poller);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.notify().unwrap();
            // Coalescing: a second notify before the wait is harmless.
            waker.notify().unwrap();
        });
        let mut events = Vec::new();
        let start = Instant::now();
        // Without the notify this would block the full 10 s.
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(9),
            "notify did not wake the waiter"
        );
        assert!(events.is_empty(), "notify must not surface as an event");
        handle.join().unwrap();
    }

    #[test]
    fn none_interest_mutes_a_source() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&server_side, Event::none(4)).unwrap();
        client.write_all(b"x").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(events.is_empty(), "muted source must not report");
        // Un-mute: the pending byte surfaces.
        poller.modify(&server_side, Event::readable(4)).unwrap();
        let ev = wait_for(&poller, &mut events, |e| e.key == 4);
        assert!(ev.readable);
        poller.delete(&server_side).unwrap();
    }
}
