//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` [`Value`] tree to JSON text and parses JSON
//! text back. Supports the full JSON grammar (nested objects/arrays, string
//! escapes incl. `\uXXXX` with surrogate pairs, signed/unsigned/float
//! numbers) so round-trips through derived impls are lossless.

use serde::value::Value;
use serde::{Deserialize, Serialize};

/// A JSON (de)serialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------- writing

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Renders an already-built [`Value`] tree as compact JSON — for callers
/// that transform parsed trees (e.g. normalizing fields before a
/// byte-level comparison) rather than serializing a typed struct.
pub fn value_to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's shortest round-trip formatting, forced to look like a JSON
    // float when integral so the value re-parses as F64.
    let s = f.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    Ok(T::from_value(&value)?)
}

/// Parses JSON text into the data-model tree.
pub fn parse_value_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped UTF-8 runs wholesale.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|e| Error::new(e.to_string()))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|e| Error::new(e.to_string()))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(e.to_string()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("a\"b\\c\nd".into())),
            ("xs".into(), Value::Seq(vec![Value::I64(-3), Value::F64(0.25)])),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            ("big".into(), Value::U64(u64::MAX)),
            ("empty_map".into(), Value::Map(vec![])),
            ("empty_seq".into(), Value::Seq(vec![])),
        ]);
        for text in [
            {
                let mut s = String::new();
                super::write_value(&mut s, &v, None, 0);
                s
            },
            {
                let mut s = String::new();
                super::write_value(&mut s, &v, Some(2), 0);
                s
            },
        ] {
            assert_eq!(parse_value_str(&text).unwrap(), v);
        }
    }

    #[test]
    fn parses_unicode_escapes() {
        let v = parse_value_str("\"a\\u00e9\\ud83d\\ude00b\"").unwrap();
        assert_eq!(v, Value::Str("aé😀b".into()));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1.0, -2.5e-8, 1234567.875, f64::MIN_POSITIVE] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "{text}");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_value_str("1 2").is_err());
        assert!(parse_value_str("{\"a\":}").is_err());
    }
}
