//! Test-harness config, case errors, and the `proptest!` macro family.

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed: skip the case without failing the test.
    Reject(String),
    /// A `prop_assert*` failed: fail the whole test.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failing variant.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds the rejection variant.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Derives a deterministic per-test RNG seed from the test's name, so
/// failures reproduce run-to-run without a seed file.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a: stable across platforms and compiler versions.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the harness can report the case index and seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond).to_string()),
            );
        }
    };
}

/// The test-harness macro: expands each `#[test] fn name(args in strategies)`
/// into a plain `#[test]` that loops over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $(
         #[test]
         fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let seed = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
                let mut rng =
                    <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(seed);
                let mut accepted: u32 = 0;
                let mut rejected: u64 = 0;
                let max_rejects: u64 = (config.cases as u64) * 64 + 1024;
                while accepted < config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::gen_value(&$strategy, &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(why),
                        ) => {
                            rejected += 1;
                            if rejected > max_rejects {
                                panic!(
                                    "proptest {}: too many prop_assume rejections ({why})",
                                    stringify!($name),
                                );
                            }
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest {} failed at case {} (seed {seed}): {msg}",
                                stringify!($name), accepted,
                            );
                        }
                    }
                }
            }
        )*
    };
}
