//! The [`Strategy`] trait and its combinators.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange};
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then draws from the strategy `f`
    /// builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Filters generated values; kept for API parity (retries up to a
    /// bounded number of times, then panics).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, whence }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn gen_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn gen_value(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn gen_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.gen_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter: too many rejections ({})", self.whence);
    }
}

// ------------------------------------------------------------- primitives

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// String strategies from a char-class regex literal (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;

    fn gen_value(&self, rng: &mut StdRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+),)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
}

// Ranges sampled via the vendored rand; keep the bound surfaced so the
// compile error is clear if a new range type sneaks in.
#[allow(dead_code)]
fn _assert_range_samplable<T, R: SampleRange<T>>() {}
