//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API that FaiRank's property suite
//! uses: the [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, `collection::vec`, simple char-class string strategies
//! (`"[a-z]{1,12}"`), `ProptestConfig::with_cases`, `prop_assume!`, the
//! `prop_assert*` macros, and the `proptest!` test-harness macro.
//!
//! Differences from upstream: cases are generated from a per-test
//! deterministic seed and **failures do not shrink** — the failing case is
//! reported as-is with its case index and seed.

pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Size specification for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy produced by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

// The harness macro needs the vendored rand from the caller's context.
#[doc(hidden)]
pub use rand as __rand;

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop` module alias (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_strategy_respects_bounds(
            xs in prop::collection::vec(0.0f64..1.0, 3..10),
        ) {
            prop_assert!(xs.len() >= 3 && xs.len() < 10);
            prop_assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        }

        #[test]
        fn flat_map_threads_runtime_values(
            v in (2u32..=4).prop_flat_map(|card| prop::collection::vec(0..card, 5)),
        ) {
            prop_assert_eq!(v.len(), 5);
            prop_assert!(v.iter().all(|&c| c < 4));
        }

        #[test]
        fn string_regex_strategy_matches_class(
            s in "[a-c]{2,5}",
        ) {
            prop_assert!((2..=5).contains(&s.chars().count()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn assume_rejections_do_not_fail_the_test(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }
}
