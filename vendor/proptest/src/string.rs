//! A tiny char-class regex generator backing `&'static str` strategies.
//!
//! Supports the pattern shapes FaiRank's property tests use: a sequence of
//! atoms, where an atom is a character class `[...]` (with `a-z` ranges and
//! the escapes `\n`, `\r`, `\t`, `\\`, `\"`, `\]`) or a literal character,
//! optionally followed by a `{m,n}` / `{n}` repetition. Anything fancier
//! panics loudly rather than generating the wrong language.

use rand::rngs::StdRng;
use rand::Rng;

enum Atom {
    Class(Vec<(char, char)>),
    Literal(char),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let reps = if piece.min == piece.max {
            piece.min
        } else {
            rng.gen_range(piece.min..=piece.max)
        };
        for _ in 0..reps {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => out.push(sample_class(ranges, rng)),
            }
        }
    }
    out
}

fn sample_class(ranges: &[(char, char)], rng: &mut StdRng) -> char {
    let total: u32 = ranges.iter().map(|(lo, hi)| *hi as u32 - *lo as u32 + 1).sum();
    let mut pick = rng.gen_range(0..total);
    for (lo, hi) in ranges {
        let span = *hi as u32 - *lo as u32 + 1;
        if pick < span {
            return char::from_u32(*lo as u32 + pick)
                .expect("class ranges only cover valid chars");
        }
        pick -= span;
    }
    unreachable!("pick is bounded by the total span");
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = read_class_char(&chars, &mut i);
                    if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                        i += 1;
                        let hi = read_class_char(&chars, &mut i);
                        assert!(lo <= hi, "inverted range in class: {pattern}");
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in pattern: {pattern}"
                );
                i += 1; // the `]`
                assert!(!ranges.is_empty(), "empty character class in {pattern}");
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                let c = unescape(chars[i]);
                i += 1;
                Atom::Literal(c)
            }
            '(' | ')' | '|' | '*' | '+' | '?' | '.' => {
                panic!("proptest stub: unsupported regex feature `{}` in {pattern}", chars[i])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| p + i)
                .unwrap_or_else(|| panic!("unterminated repetition in {pattern}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("repetition lower bound"),
                    n.trim().parse().expect("repetition upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition in {pattern}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn read_class_char(chars: &[char], i: &mut usize) -> char {
    let c = if chars[*i] == '\\' {
        *i += 1;
        unescape(chars[*i])
    } else {
        chars[*i]
    };
    *i += 1;
    c
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generates_only_class_members_with_bounded_length() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let s = generate("[a-z ,\"\n]{1,12}", &mut rng);
            let n = s.chars().count();
            assert!((1..=12).contains(&n), "len {n}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == ' ' || c == ',' || c == '"' || c == '\n'));
        }
    }

    #[test]
    fn literals_and_fixed_repetitions() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(generate("abc", &mut rng), "abc");
        assert_eq!(generate("x{3}", &mut rng), "xxx");
    }
}
