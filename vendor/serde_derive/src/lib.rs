//! Offline stand-in for `serde_derive`.
//!
//! No `syn`/`quote` are available, so this crate parses the derive input by
//! walking `proc_macro::TokenTree`s directly and emits impls of the vendored
//! `serde::Serialize` / `serde::Deserialize` traits (Value-tree model) as
//! formatted source strings.
//!
//! Supported shapes — exactly what the FaiRank workspace derives:
//! * structs with named fields (any visibility, no generics),
//! * enums with unit, tuple, and struct variants (externally tagged).
//!
//! Container/field attributes (`#[serde(...)]`) are not supported and the
//! macro panics on them rather than silently ignoring semantics.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ------------------------------------------------------------------ model

struct Input {
    name: String,
    body: Body,
}

enum Body {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Enum: variants in declaration order.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with this many fields.
    Tuple(usize),
    /// Struct variant with these field names.
    Struct(Vec<String>),
}

// ------------------------------------------------------------------ parse

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }
    let body_group = match &tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            panic!("serde_derive stub: tuple struct `{name}` is not supported")
        }
        other => panic!("serde_derive stub: expected body for `{name}`, found {other:?}"),
    };
    let body_tokens: Vec<TokenTree> = body_group.stream().into_iter().collect();
    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_named_fields(&body_tokens)),
        "enum" => Body::Enum(parse_variants(&body_tokens)),
        other => panic!("serde_derive stub: cannot derive for `{other}`"),
    };
    Input { name, body }
}

/// Skips `#[...]` (and `#![...]`) attribute groups, rejecting `#[serde(...)]`.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
            *i += 1;
        }
        match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                let inner = g.stream().to_string();
                if inner.starts_with("serde") {
                    panic!("serde_derive stub: #[serde(...)] attributes are not supported");
                }
                *i += 1;
            }
            other => panic!("serde_derive stub: malformed attribute: {other:?}"),
        }
    }
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Advances past one type expression: everything until a `,` at zero
/// angle-bracket depth. Parens/brackets/braces are single `Group` tokens, so
/// only `<`/`>` need explicit depth tracking.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tt) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(tokens, &mut i);
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected field name, found {other}"),
        };
        i += 1;
        match &tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive stub: expected `:` after `{field}`, found {other:?}"),
        }
        skip_type(tokens, &mut i);
        i += 1; // consume the comma (or run off the end, which is fine)
        fields.push(field);
    }
    fields
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected variant name, found {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde_derive stub: explicit discriminants are not supported");
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut i = 0;
    while i < tokens.len() {
        // Each skip_type stops at a top-level comma or the end.
        skip_type(tokens, &mut i);
        if i < tokens.len() {
            i += 1; // the comma
            if i < tokens.len() {
                count += 1; // ignore a trailing comma
            }
        }
    }
    count
}

// ---------------------------------------------------------------- codegen

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.body {
        Body::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::value::Value::Map(vec![{pushes}])")
        }
        Body::Enum(variants) => {
            let arms: String = variants.iter().map(|v| serialize_arm(name, v)).collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive stub: generated Serialize impl parses")
}

fn serialize_arm(type_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => format!(
            "{type_name}::{vname} => \
             ::serde::value::Value::Str(String::from(\"{vname}\")),"
        ),
        VariantKind::Tuple(1) => format!(
            "{type_name}::{vname}(f0) => ::serde::value::Value::Map(vec![\
             (String::from(\"{vname}\"), ::serde::Serialize::to_value(f0))]),"
        ),
        VariantKind::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
            let items: String = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                .collect();
            format!(
                "{type_name}::{vname}({}) => ::serde::value::Value::Map(vec![\
                 (String::from(\"{vname}\"), \
                  ::serde::value::Value::Seq(vec![{items}]))]),",
                binds.join(", ")
            )
        }
        VariantKind::Struct(fields) => {
            let binds = fields.join(", ");
            let items: String = fields
                .iter()
                .map(|f| {
                    format!("(String::from(\"{f}\"), ::serde::Serialize::to_value({f})),")
                })
                .collect();
            format!(
                "{type_name}::{vname} {{ {binds} }} => ::serde::value::Value::Map(vec![\
                 (String::from(\"{vname}\"), \
                  ::serde::value::Value::Map(vec![{items}]))]),"
            )
        }
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.body {
        Body::Struct(fields) => {
            let field_inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__field(map, \"{f}\")?,"))
                .collect();
            format!(
                "let map = v.as_map().ok_or_else(|| \
                     ::serde::de::Error::custom(\"expected map for struct {name}\"))?;\n\
                 Ok({name} {{ {field_inits} }})"
            )
        }
        Body::Enum(variants) => deserialize_enum_body(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::value::Value) \
                 -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive stub: generated Deserialize impl parses")
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter(|v| !matches!(v.kind, VariantKind::Unit))
        .map(|v| deserialize_tagged_arm(name, v))
        .collect();
    format!(
        "match v {{\n\
             ::serde::value::Value::Str(tag) => match tag.as_str() {{\n\
                 {unit_arms}\n\
                 other => Err(::serde::de::Error::custom(format!(\
                     \"unknown variant `{{other}}` for enum {name}\"))),\n\
             }},\n\
             ::serde::value::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = (&entries[0].0, &entries[0].1);\n\
                 match tag.as_str() {{\n\
                     {tagged_arms}\n\
                     other => Err(::serde::de::Error::custom(format!(\
                         \"unknown variant `{{other}}` for enum {name}\"))),\n\
                 }}\n\
             }}\n\
             _ => Err(::serde::de::Error::custom(\
                 \"expected string or single-key map for enum {name}\")),\n\
         }}"
    )
}

fn deserialize_tagged_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => unreachable!("unit variants handled separately"),
        VariantKind::Tuple(1) => format!(
            "\"{vname}\" => Ok({name}::{vname}(\
             ::serde::Deserialize::from_value(payload)?)),"
        ),
        VariantKind::Tuple(n) => {
            let elems: String = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&seq[{k}])?,"))
                .collect();
            format!(
                "\"{vname}\" => {{\n\
                     let seq = payload.as_seq().ok_or_else(|| \
                         ::serde::de::Error::custom(\"expected sequence payload\"))?;\n\
                     if seq.len() != {n} {{\n\
                         return Err(::serde::de::Error::custom(\
                             \"wrong tuple arity for {name}::{vname}\"));\n\
                     }}\n\
                     Ok({name}::{vname}({elems}))\n\
                 }}"
            )
        }
        VariantKind::Struct(fields) => {
            let field_inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__field(map, \"{f}\")?,"))
                .collect();
            format!(
                "\"{vname}\" => {{\n\
                     let map = payload.as_map().ok_or_else(|| \
                         ::serde::de::Error::custom(\"expected map payload\"))?;\n\
                     Ok({name}::{vname} {{ {field_inits} }})\n\
                 }}"
            )
        }
    }
}
