//! Offline stand-in for `criterion`.
//!
//! Provides the API surface FaiRank's benches compile against —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`],
//! [`Throughput`], `criterion_group!`, `criterion_main!` — backed by a
//! simple wall-clock measurement loop instead of criterion's statistical
//! machinery: per benchmark it warms up briefly, then reports mean
//! time/iteration (and throughput when declared) on stdout.

use std::time::{Duration, Instant};

/// Measurement entry point handed to each bench function.
pub struct Criterion {
    /// Warm-up budget per benchmark.
    warm_up: Duration,
    /// Measurement budget per benchmark.
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(50),
            measure: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.0, None, self.warm_up, self.measure, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the stub's measurement loop is time-based,
    /// so the sample count does not change behavior.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares input throughput for subsequent benchmarks in the group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.0),
            self.throughput,
            self.criterion.warm_up,
            self.criterion.measure,
            f,
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.0),
            self.throughput,
            self.criterion.warm_up,
            self.criterion.measure,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op beyond API parity).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Input volume per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the bencher's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(
    label: &str,
    throughput: Option<Throughput>,
    warm_up: Duration,
    measure: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Warm-up: double iterations until the warm-up budget is spent, which
    // also calibrates how many iterations fill the measurement window.
    let mut iterations: u64 = 1;
    let mut per_iter;
    let warm_start = Instant::now();
    loop {
        let mut b = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = b.elapsed.checked_div(iterations as u32).unwrap_or_default();
        if warm_start.elapsed() >= warm_up || iterations > u64::MAX / 2 {
            break;
        }
        iterations = iterations.saturating_mul(2);
    }
    let target = if per_iter.is_zero() {
        iterations
    } else {
        (measure.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000_000) as u64
    };
    let mut b = Bencher {
        iterations: target,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean_ns = b.elapsed.as_nanos() as f64 / target as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.3e} elem/s)", n as f64 * 1e9 / mean_ns),
        Throughput::Bytes(n) => format!(" ({:.3e} B/s)", n as f64 * 1e9 / mean_ns),
    });
    println!(
        "bench {label:<50} {:>14.1} ns/iter{} [{} iters]",
        mean_ns,
        rate.unwrap_or_default(),
        target
    );
}

/// Re-export for bench code that uses `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles bench functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmarks_run_and_report() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measure: Duration::from_millis(2),
        };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("id", |b| b.iter(|| ()));
        group.finish();
    }
}
