//! Scenario plans: compile a whole grid of fairness analyses into
//! independent cells and run them in parallel, in-process.
//!
//! ```text
//! cargo run --example scenario_plan
//! ```

use fairank::core::emd::EmdBackendKind;
use fairank::core::fairness::{Aggregator, Objective};
use fairank::session::plan::{
    compile, CriterionGrid, Perspective, ScenarioOutcome, ScenarioSpec,
};
use fairank::session::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A session with a biased synthetic population and one scoring
    //    function (the usual REPL setup, headless).
    let mut session = Session::new();
    session.add_dataset(
        "pop",
        fairank::data::synth::biased_crowdsourcing_spec(600, 42).generate()?,
    )?;
    session.add_function(
        "f",
        fairank::core::scoring::LinearScoring::builder()
            .weight("rating", 0.7)
            .weight("language_test", 0.3)
            .build_unchecked()?,
    )?;

    // 2. The scenario as data: one dataset × one function × (2 objectives ×
    //    3 aggregators) = 6 cells. The same spec serializes to JSON and
    //    runs over the wire as one request (`scenario <spec.json>`, or the
    //    `"scenario"` field of a service request).
    let spec = ScenarioSpec {
        perspective: Perspective::Grid {
            datasets: vec!["pop".into()],
            functions: vec!["f".into()],
            filter: None,
        },
        strategy: None, // default: the paper's QUANTIFY search
        criteria: Some(CriterionGrid {
            objectives: vec![Objective::MostUnfair, Objective::LeastUnfair],
            aggregators: vec![Aggregator::Mean, Aggregator::Max, Aggregator::Variance],
            bins: vec![10],
            emds: vec![EmdBackendKind::OneD],
        }),
    };
    println!("spec as JSON:\n{}\n", serde_json::to_string(&spec)?);

    // 3. Compile → explicit cell list; run → one scoped thread per cell.
    let plan = compile(&session, &spec)?;
    println!("compiled {} independent cells", plan.cell_count());
    let report = plan.run_parallel(&mut session)?;

    // 4. The reduce step committed one panel per cell (grid + quantify)
    //    and kept per-cell engine counters.
    let ScenarioOutcome::Grid(rows) = &report.outcome else {
        unreachable!("grid specs reduce to grid outcomes");
    };
    for row in rows {
        println!(
            "panel #{:<2} u={:.4}  {}",
            row.panel.expect("quantify cells commit panels"),
            row.unfairness,
            row.config
        );
    }
    println!();
    for cell in &report.cells {
        println!(
            "{:>8} µs  emds={:<6} (hits {:<6} batches {:<4})  {}",
            cell.elapsed_us,
            cell.emd_calls,
            cell.emd_cache_hits,
            cell.pairwise_batches,
            cell.label
        );
    }
    println!(
        "\n{} cells in {} µs total",
        report.cells.len(),
        report.total_elapsed_us
    );
    Ok(())
}
