//! AUDITOR scenario (§4): monitor a whole marketplace.
//!
//! Crawls a TaskRabbit-like marketplace, quantifies the fairness of every
//! job's ranking, names the most/least favored demographics per job, and
//! shows how the picture degrades when the platform only exposes rankings
//! over k-anonymized profiles (the blackbox setting).
//!
//! ```text
//! cargo run --example auditor_report
//! ```

use fairank::core::fairness::FairnessCriterion;
use fairank::marketplace::scenario::taskrabbit_like;
use fairank::marketplace::Transparency;
use fairank::session::report::auditor_report;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let market = taskrabbit_like(400, 42)?;
    let criterion = FairnessCriterion::default();

    println!("=== Full transparency ===");
    let full = auditor_report(&market, &Transparency::full(), &criterion, 2, 20)?;
    print!("{}", full.render());

    println!("\n=== Blackbox: ranking-only over 10-anonymized profiles ===");
    let blackbox = auditor_report(&market, &Transparency::blackbox(10), &criterion, 2, 20)?;
    print!("{}", blackbox.render());

    // The headline the auditor writes down: the most unfair job and who it
    // disadvantages.
    let worst = &full.rows[0];
    println!(
        "\nMost unfair job: {:?} (unfairness {:.3}); least favored: {} ({:+.3} mean score)",
        worst.title,
        worst.unfairness,
        worst.least_favored.as_deref().unwrap_or("-"),
        worst.least_favored_advantage,
    );
    let worst_bb = &blackbox.rows[0];
    println!(
        "Under blackbox observation the top finding becomes: {:?} (unfairness {:.3})",
        worst_bb.title, worst_bb.unfairness
    );
    Ok(())
}
