//! The paper's running example end-to-end: Table 1 and Figure 2.
//!
//! Reproduces (a) the published `f(w)` score column exactly, and (b) the
//! Figure 2 partitioning {Male-English, Male-Indian, Male-Other, Female}
//! with its per-partition histograms and average pairwise EMD.
//!
//! ```text
//! cargo run --example paper_example
//! ```

use fairank::core::emd::Emd;
use fairank::core::fairness::FairnessCriterion;
use fairank::core::pairwise::DistanceMatrix;
use fairank::core::quantify::Quantify;
use fairank::data::paper;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Table 1 ---------------------------------------------------------
    let dataset = paper::table1_dataset();
    let space = paper::table1_space()?;
    println!("Table 1 — {} individuals", dataset.num_rows());
    println!("{:<6} {:>10} {:>10} {:>8}", "id", "computed", "published", "delta");
    for (i, (got, want)) in space.scores().iter().zip(paper::TABLE1_FW).enumerate() {
        println!(
            "w{:<5} {:>10.3} {:>10.3} {:>8.1e}",
            i + 1,
            got,
            want,
            (got - want).abs()
        );
        assert!((got - want).abs() < 1e-9, "published score mismatch");
    }
    println!("✓ f = 0.3·language_test + 0.7·rating reproduces every published f(w)\n");

    // ---- Figure 2 --------------------------------------------------------
    let criterion = FairnessCriterion::default();
    let partitions = paper::figure2_partitioning(&space);
    println!("Figure 2 partitioning (split Gender, then Male by Language):");
    let hists: Vec<_> = partitions
        .iter()
        .map(|p| criterion.histogram(p, space.scores()))
        .collect();
    for (p, h) in partitions.iter().zip(&hists) {
        println!(
            "  {:<42} n={}  histogram {:?}",
            p.label(&space),
            p.len(),
            h.counts()
        );
    }
    let matrix = DistanceMatrix::compute(&hists, &Emd::default())?;
    println!("\npairwise EMD matrix:");
    for i in 0..matrix.len() {
        let row: Vec<String> = (0..matrix.len())
            .map(|j| format!("{:.3}", matrix.get(i, j)))
            .collect();
        println!("  {}", row.join("  "));
    }
    let unfairness = criterion.unfairness(&partitions, space.scores())?;
    println!("\nunfairness(Figure 2 partitioning) = {unfairness:.4} (avg pairwise EMD)");

    // ---- What QUANTIFY finds ----------------------------------------------
    let outcome = Quantify::new(criterion).run_space(&space)?;
    println!(
        "\nQUANTIFY's most-unfair partitioning: {} groups, unfairness = {:.4}",
        outcome.partitions.len(),
        outcome.unfairness
    );
    assert!(
        outcome.unfairness >= unfairness - 1e-9,
        "the greedy optimum should not be worse than the hand-built Figure 2 partitioning"
    );
    println!("✓ greedy search matches or beats the Figure 2 partitioning");
    Ok(())
}
