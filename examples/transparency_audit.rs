//! Transparency settings and their effect on fairness quantification
//! (§1 feature 2, §4): k-anonymized attributes and function-opaque
//! (ranking-only) observation.
//!
//! ```text
//! cargo run --example transparency_audit
//! ```

use fairank::anonymize::{mondrian, MondrianConfig};
use fairank::core::fairness::FairnessCriterion;
use fairank::core::quantify::Quantify;
use fairank::core::scoring::{scores_to_ranking, LinearScoring, ScoreSource};
use fairank::data::synth::biased_crowdsourcing_spec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = biased_crowdsourcing_spec(500, 42).generate()?;
    let scoring = LinearScoring::builder()
        .weight("rating", 0.7)
        .weight("language_test", 0.3)
        .build(&dataset)?;
    let criterion = FairnessCriterion::default();
    let quantify = Quantify::new(criterion);

    // Baseline: full data + visible function.
    let source = ScoreSource::Function(scoring.clone());
    let baseline = quantify.run(&dataset, &source)?;
    println!(
        "baseline (full transparency):        unfairness {:.4} over {} partitions",
        baseline.unfairness,
        baseline.partitions.len()
    );

    // Data transparency axis: k-anonymize the protected attributes.
    let qis = ["gender", "country", "birth_decade", "language", "ethnicity"];
    for k in [2, 5, 10, 25, 50] {
        let anon = mondrian(&dataset, &qis, MondrianConfig { k })?.dataset;
        let outcome = quantify.run(&anon, &source)?;
        println!(
            "k-anonymized (k={k:>2}):                unfairness {:.4} over {} partitions",
            outcome.unfairness,
            outcome.partitions.len()
        );
    }

    // Process transparency axis: only the ranking is visible.
    let scores = source.resolve(&dataset)?;
    let ranking = ScoreSource::Ranking(scores_to_ranking(&scores));
    let opaque = quantify.run(&dataset, &ranking)?;
    println!(
        "function-opaque (ranks only):        unfairness {:.4} over {} partitions",
        opaque.unfairness,
        opaque.partitions.len()
    );

    println!(
        "\nreading: anonymization coarsens the groups the auditor can blame \
         (fewer partitions),\nwhile rank-histograms change the unfairness scale \
         but keep the signal detectable."
    );
    Ok(())
}
