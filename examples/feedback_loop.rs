//! Ranking feedback dynamics: watch repeated ranking amplify an initial
//! demographic gap (extension experiment E14 as a runnable walkthrough).
//!
//! ```text
//! cargo run --example feedback_loop
//! ```

use fairank::core::fairness::FairnessCriterion;
use fairank::marketplace::dynamics::{simulate_feedback, FeedbackConfig};
use fairank::marketplace::scenario::taskrabbit_like;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let market = taskrabbit_like(300, 42)?;
    println!(
        "simulating 12 hire-and-rate rounds on job {:?} (top 30 hired per round)…\n",
        market.job("rated-anything")?.title
    );
    let outcome = simulate_feedback(
        &market,
        "rated-anything",
        "rating",
        "gender",
        &FairnessCriterion::default(),
        FeedbackConfig {
            rounds: 12,
            top_k: 30,
            boost: 0.1,
            decay: 0.02,
            rating_noise: None,
            seed: None,
        },
    )?;

    println!("{:<7} {:>12} {:>12} {:>8}", "round", "gender gap", "mean rating", "gini");
    for r in &outcome.rounds {
        let bar = "#".repeat((r.tracked_gap * 300.0) as usize);
        println!(
            "{:<7} {:>12.4} {:>12.4} {:>8.3}  {}",
            r.round, r.tracked_gap, r.mean_rating, r.rating_gini, bar
        );
    }
    let first = &outcome.rounds[0];
    let last = outcome.rounds.last().expect("non-empty");
    println!(
        "\nthe injected gender rating gap widened by {:+.1}% over {} rounds — \
         rankings don't just reflect bias, they compound it.",
        (last.tracked_gap / first.tracked_gap - 1.0) * 100.0,
        last.round
    );
    Ok(())
}
