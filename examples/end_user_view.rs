//! END-USER scenario (§4): "how well is the marketplace treating my group,
//! and which job should I target?"
//!
//! A worker who is Female and based in Chicago examines every job of the
//! TaskRabbit-like marketplace and gets them ranked by how well her group
//! fares (mean ranking percentile).
//!
//! ```text
//! cargo run --example end_user_view
//! ```

use fairank::core::fairness::FairnessCriterion;
use fairank::data::filter::Filter;
use fairank::marketplace::scenario::taskrabbit_like;
use fairank::session::report::end_user_report;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let market = taskrabbit_like(400, 42)?;
    let group = Filter::parse("gender=Female & city=Chicago")?;

    let report = end_user_report(&market, &group, &FairnessCriterion::default())?;
    print!("{}", report.render());

    let best = &report.rows[0];
    let worst = report.rows.last().expect("catalog is non-empty");
    println!(
        "\nfor group `{}` ({} members):",
        report.group, best.group_size
    );
    println!(
        "  target  {:?} — the group averages the {:.0}th percentile there",
        best.title,
        best.group_mean_percentile * 100.0
    );
    println!(
        "  avoid   {:?} — only the {:.0}th percentile",
        worst.title,
        worst.group_mean_percentile * 100.0
    );
    Ok(())
}
