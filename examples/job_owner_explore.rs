//! JOB OWNER scenario (§4): explore scoring-function variants.
//!
//! The owner of the "Installing wood panels" job sweeps the weight of the
//! (bias-carrying) rating attribute, watches unfairness respond, and picks
//! the fairest variant — "the one that satisfies some desired fairness".
//!
//! ```text
//! cargo run --example job_owner_explore
//! ```

use fairank::core::fairness::FairnessCriterion;
use fairank::marketplace::scenario::taskrabbit_like;
use fairank::session::report::job_owner_sweep;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let market = taskrabbit_like(400, 42)?;
    let job = market.job("wood-panels")?;
    println!(
        "job {:?} currently scores candidates with:",
        job.title
    );
    for (attr, w) in job.scoring.terms() {
        println!("  {w:.2} · {attr}");
    }

    let weights: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let report = job_owner_sweep(
        market.workers(),
        &job.scoring,
        "rating",
        &weights,
        &FairnessCriterion::default(),
    )?;
    println!("\n{}", report.render());

    let fairest = &report.rows[report.fairest];
    println!("recommendation: use {:?} —", fairest.label);
    for (attr, w) in &fairest.weights {
        println!("  {w:.3} · {attr}");
    }
    println!(
        "worst-case unfairness drops from {:.4} (rating=1.00) to {:.4}",
        report.rows.last().expect("non-empty sweep").unfairness,
        fairest.unfairness
    );
    Ok(())
}
