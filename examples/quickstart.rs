//! Quickstart: quantify the fairness of a scoring function in ~30 lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fairank::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A dataset: individuals with protected attributes (gender, country,
    //    year of birth, language, ethnicity) and observed skills. Here: the
    //    paper's Table 1, built in.
    let dataset = fairank::data::paper::table1_dataset();
    println!("{}", dataset.render_head(10));

    // 2. A scoring function over observed attributes (Definition 1):
    //    f(w) = 0.3 · language_test + 0.7 · rating — the paper's function.
    let scoring = LinearScoring::builder()
        .weight("language_test", 0.3)
        .weight("rating", 0.7)
        .build(&dataset)?;

    // 3. A fairness criterion: search direction × pairwise-EMD aggregation.
    let criterion = FairnessCriterion::new(Objective::MostUnfair, Aggregator::Mean);

    // 4. Run Algorithm 1 (QUANTIFY): greedily grow the partitioning tree.
    let outcome = Quantify::new(criterion).run(&dataset, &ScoreSource::from(scoring))?;

    println!(
        "most unfair partitioning: {} groups, unfairness = {:.4}",
        outcome.partitions.len(),
        outcome.unfairness
    );
    let space = dataset.to_space(&ScoreSource::from(fairank::data::paper::table1_scoring()))?;
    for p in &outcome.partitions {
        let mean: f64 =
            p.scores(space.scores()).sum::<f64>() / p.len() as f64;
        println!("  {:<45} n={:<2} mean score {:.3}", p.label(&space), p.len(), mean);
    }
    Ok(())
}
