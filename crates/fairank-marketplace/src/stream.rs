//! Streaming re-audits: continuous fairness monitoring of a live catalog.
//!
//! A real marketplace is never static — workers join, leave, and accrue new
//! ratings between any two audits. Re-running `QUANTIFY` from scratch after
//! every batch of events wastes almost all of its work: most partitions'
//! histograms, most pairwise EMDs, and most of the search tree are
//! untouched by a handful of row changes. This module drives
//! [`fairank_core::incremental::DeltaEngine`] with a simulated event stream
//! — arrivals (new workers cloned from the observed population), departures
//! and rating feedback per round — and records a per-round [`RoundAudit`]:
//! the re-quantified unfairness plus the delta counters showing how much of
//! the previous audit's work survived.
//!
//! The stream is fully deterministic: every draw comes from an explicit
//! [`StreamConfig::seed`] (defaulting to [`DEFAULT_STREAM_SEED`]), so two
//! runs of the same scenario produce bitwise-identical trajectories.

use fairank_core::fairness::FairnessCriterion;
use fairank_core::incremental::DeltaEngine;
use fairank_core::quantify::Quantify;
use fairank_core::space::{ProtectedTable, RankingSpace, SpaceDelta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::{MarketError, Result};
use crate::platform::{Marketplace, Observation, Transparency};

/// The seed used when a [`StreamConfig`] does not pin one explicitly.
pub const DEFAULT_STREAM_SEED: u64 = 0x0FA1_4A2C;

/// Parameters of a streaming re-audit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Number of event rounds after the initial full audit.
    pub rounds: usize,
    /// New workers arriving per round (profiles cloned from random
    /// incumbents, scores jittered).
    pub arrivals_per_round: usize,
    /// Workers departing per round (uniformly random rows).
    pub departures_per_round: usize,
    /// Rating-feedback events per round (a random worker's score drifts up
    /// or down, feedback-loop style).
    pub rescores_per_round: usize,
    /// Explicit RNG seed; `None` uses [`DEFAULT_STREAM_SEED`]. Optional so
    /// that serialized specs from before this field existed still load.
    pub seed: Option<u64>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            rounds: 8,
            arrivals_per_round: 4,
            departures_per_round: 4,
            rescores_per_round: 8,
            seed: None,
        }
    }
}

impl StreamConfig {
    /// The effective RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed.unwrap_or(DEFAULT_STREAM_SEED)
    }

    /// Events generated per round.
    pub fn events_per_round(&self) -> usize {
        self.arrivals_per_round + self.departures_per_round + self.rescores_per_round
    }
}

/// One round's re-audit measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundAudit {
    /// Round index (0 = the initial full audit, before any events).
    pub round: usize,
    /// Events applied this round (0 for round 0).
    pub events: usize,
    /// Worker population after this round's events.
    pub population: usize,
    /// Quantified unfairness — bitwise identical to a from-scratch
    /// `QUANTIFY` on the same population.
    pub unfairness: f64,
    /// Partitions in the most-unfair partitioning.
    pub num_partitions: usize,
    /// Cached histograms rebuilt by this round's dirty-path propagation.
    pub histograms_rebuilt: usize,
    /// Memoized EMD entries dropped by targeted invalidation.
    pub emd_entries_dropped: usize,
    /// Histograms reused from previous rounds during the re-quantify.
    pub delta_reused_histograms: usize,
    /// Invalidated-EMD count reported by the re-quantify's stats.
    pub delta_invalidated_emds: usize,
    /// EMD evaluations the re-quantify actually performed.
    pub emd_calls: usize,
    /// Wall-clock of the re-quantify, in microseconds.
    pub requantify_us: u64,
}

/// The full trajectory of a streaming re-audit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamOutcome {
    /// The audited job.
    pub job_id: String,
    /// The configuration the stream ran under.
    pub config: StreamConfig,
    /// Per-round audits; round 0 (the initial full audit) first.
    pub rounds: Vec<RoundAudit>,
}

impl StreamOutcome {
    /// Worker population after the final round.
    pub fn final_population(&self) -> usize {
        self.rounds.last().map_or(0, |r| r.population)
    }

    /// Total histograms reused across all re-audit rounds — the headline
    /// number showing how much work the delta engine saved.
    pub fn total_reused_histograms(&self) -> usize {
        self.rounds.iter().map(|r| r.delta_reused_histograms).sum()
    }
}

/// A streaming re-audit in progress: observes one job, then replays event
/// rounds against a [`DeltaEngine`] so every re-quantify pays only for what
/// changed.
pub struct StreamScenario {
    job_id: String,
    config: StreamConfig,
    engine: DeltaEngine,
    rng: StdRng,
    round: usize,
}

impl StreamScenario {
    /// Observes `job_id` under `transparency` and prepares the delta engine
    /// over the observed ranking space.
    pub fn new(
        marketplace: &Marketplace,
        job_id: &str,
        transparency: &Transparency,
        criterion: &FairnessCriterion,
        config: StreamConfig,
    ) -> Result<Self> {
        Self::with_search(
            marketplace,
            job_id,
            transparency,
            Quantify::new(*criterion),
            config,
        )
    }

    /// Like [`StreamScenario::new`], but with a fully configured `QUANTIFY`
    /// search (criterion plus depth/partition-size refinements).
    pub fn with_search(
        marketplace: &Marketplace,
        job_id: &str,
        transparency: &Transparency,
        search: Quantify,
        config: StreamConfig,
    ) -> Result<Self> {
        if config.rounds == 0 {
            return Err(MarketError::InvalidMarketplace(
                "a stream needs at least one round".into(),
            ));
        }
        let Observation {
            job_id,
            dataset,
            source,
        } = marketplace.observe(job_id, transparency)?;
        let scores = source.resolve(&dataset)?;
        let space = RankingSpace::new(dataset.protected_attributes(), scores)?;
        let engine = DeltaEngine::new(space, search)?;
        let rng = StdRng::seed_from_u64(config.seed());
        Ok(StreamScenario {
            job_id,
            config,
            engine,
            rng,
            round: 0,
        })
    }

    /// The current (post-events) ranking space.
    pub fn space(&self) -> &RankingSpace {
        self.engine.space()
    }

    /// Installs a cancellation scope on the delta engine — every subsequent
    /// re-quantify polls it, so a service can deadline a whole stream.
    pub fn set_run_budget(&mut self, budget: fairank_core::cancel::RunBudget) {
        self.engine.set_run_budget(budget);
    }

    /// Applies one round of events and re-quantifies incrementally.
    pub fn next_round(&mut self) -> Result<RoundAudit> {
        self.round += 1;
        let delta = self.build_delta();
        let report = self.engine.apply(&delta)?;
        self.audit(
            report.events,
            report.histograms_rebuilt,
            report.emd_entries_dropped,
        )
    }

    /// Runs the initial full audit plus all configured rounds.
    pub fn run(mut self) -> Result<StreamOutcome> {
        let mut rounds = Vec::with_capacity(self.config.rounds + 1);
        rounds.push(self.audit(0, 0, 0)?);
        for _ in 0..self.config.rounds {
            rounds.push(self.next_round()?);
        }
        Ok(StreamOutcome {
            job_id: self.job_id,
            config: self.config,
            rounds,
        })
    }

    /// One deterministic round of churn. Rescores come first (their row
    /// indices refer to the pre-event space, so current scores are
    /// readable), then arrivals append, then departures remove from the
    /// grown population.
    fn build_delta(&mut self) -> SpaceDelta {
        let mut delta = SpaceDelta::new();
        let n = self.engine.space().num_individuals();
        for _ in 0..self.config.rescores_per_round {
            let row = self.rng.gen_range(0..n);
            let old = self.engine.space().scores()[row];
            // Feedback-loop drift: boosted toward 1 on a "hire", decayed
            // otherwise — the same shape `dynamics` simulates.
            let new = if self.rng.gen_bool(0.5) {
                (old + 0.05 * (1.0 - old)).clamp(0.0, 1.0)
            } else {
                (old * 0.98).clamp(0.0, 1.0)
            };
            delta = delta.rescore(row as u32, new);
        }
        let mut count = n;
        for _ in 0..self.config.arrivals_per_round {
            let donor = self.rng.gen_range(0..n);
            let labels: Vec<String> = self
                .engine
                .space()
                .attributes()
                .iter()
                .map(|a| a.labels[a.codes[donor] as usize].clone())
                .collect();
            let jitter: f64 = self.rng.gen_range(-0.05..=0.05);
            let score = (self.engine.space().scores()[donor] + jitter).clamp(0.0, 1.0);
            delta = delta.insert(labels, score);
            count += 1;
        }
        for _ in 0..self.config.departures_per_round {
            if count <= 1 {
                break; // never empty the marketplace
            }
            let row = self.rng.gen_range(0..count);
            delta = delta.remove(row as u32);
            count -= 1;
        }
        delta
    }

    fn audit(&mut self, events: usize, rebuilt: usize, dropped: usize) -> Result<RoundAudit> {
        let outcome = self.engine.requantify()?;
        Ok(RoundAudit {
            round: self.round,
            events,
            population: self.engine.space().num_individuals(),
            unfairness: outcome.unfairness,
            num_partitions: outcome.partitions.len(),
            histograms_rebuilt: rebuilt,
            emd_entries_dropped: dropped,
            delta_reused_histograms: outcome.stats.delta_reused_histograms,
            delta_invalidated_emds: outcome.stats.delta_invalidated_emds,
            emd_calls: outcome.stats.emd_calls,
            requantify_us: u64::try_from(outcome.elapsed.as_micros()).unwrap_or(u64::MAX),
        })
    }
}

/// Observes one job and runs the full streaming re-audit.
pub fn run_stream(
    marketplace: &Marketplace,
    job_id: &str,
    transparency: &Transparency,
    criterion: &FairnessCriterion,
    config: StreamConfig,
) -> Result<StreamOutcome> {
    StreamScenario::new(marketplace, job_id, transparency, criterion, config)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::taskrabbit_like;

    fn stream(seed: Option<u64>, rounds: usize) -> StreamOutcome {
        let market = taskrabbit_like(80, 9).unwrap();
        run_stream(
            &market,
            "errands",
            &Transparency::full(),
            &FairnessCriterion::default(),
            StreamConfig {
                rounds,
                arrivals_per_round: 3,
                departures_per_round: 3,
                rescores_per_round: 5,
                seed,
            },
        )
        .unwrap()
    }

    /// Zeroes the wall-clock field — the only part of an outcome that is
    /// legitimately nondeterministic.
    fn strip_timing(mut o: StreamOutcome) -> StreamOutcome {
        for r in &mut o.rounds {
            r.requantify_us = 0;
        }
        o
    }

    #[test]
    fn same_seed_runs_are_bitwise_identical() {
        // The regression the explicit-seed plumbing exists for: two runs of
        // the same spec must agree on every non-timing field of every round.
        let a = strip_timing(stream(Some(41), 4));
        let b = strip_timing(stream(Some(41), 4));
        assert_eq!(a, b);
        // And the default seed is itself pinned.
        let c = strip_timing(stream(None, 3));
        let d = strip_timing(stream(None, 3));
        assert_eq!(c, d);
    }

    #[test]
    fn different_seeds_produce_different_trajectories() {
        let a = strip_timing(stream(Some(1), 4));
        let b = strip_timing(stream(Some(2), 4));
        assert_ne!(a, b);
    }

    #[test]
    fn balanced_churn_keeps_the_population_stable() {
        let out = stream(Some(7), 5);
        assert_eq!(out.rounds.len(), 6);
        for (i, r) in out.rounds.iter().enumerate() {
            assert_eq!(r.round, i);
            assert_eq!(r.population, 80);
            assert_eq!(r.events, if i == 0 { 0 } else { 11 });
        }
        assert_eq!(out.final_population(), 80);
    }

    #[test]
    fn each_round_matches_a_from_scratch_audit() {
        let market = taskrabbit_like(60, 3).unwrap();
        let criterion = FairnessCriterion::default();
        let mut scenario = StreamScenario::new(
            &market,
            "rated-anything",
            &Transparency::full(),
            &criterion,
            StreamConfig {
                rounds: 3,
                arrivals_per_round: 2,
                departures_per_round: 2,
                rescores_per_round: 4,
                seed: Some(5),
            },
        )
        .unwrap();
        for _ in 0..3 {
            let audit = scenario.next_round().unwrap();
            let full = Quantify::new(criterion)
                .run_space(scenario.space())
                .unwrap();
            assert_eq!(
                audit.unfairness.to_bits(),
                full.unfairness.to_bits(),
                "round {}",
                audit.round
            );
            assert_eq!(audit.num_partitions, full.partitions.len());
            // The delta pass never evaluates more EMDs than from scratch.
            assert!(audit.emd_calls <= full.stats.emd_calls);
        }
    }

    #[test]
    fn delta_counters_show_real_reuse() {
        let out = stream(Some(13), 4);
        // Round 0 is a cold build: nothing to reuse yet.
        assert_eq!(out.rounds[0].delta_reused_histograms, 0);
        assert_eq!(out.rounds[0].histograms_rebuilt, 0);
        // Every churn round reuses surviving histograms and reports the
        // dirty-path rebuilds that its events caused.
        for r in &out.rounds[1..] {
            assert!(r.delta_reused_histograms > 0, "round {}", r.round);
            assert!(r.histograms_rebuilt > 0, "round {}", r.round);
            assert_eq!(r.delta_invalidated_emds, r.emd_entries_dropped);
        }
        assert!(out.total_reused_histograms() > 0);
    }

    #[test]
    fn config_without_a_seed_field_still_deserializes() {
        // Specs serialized before the seed existed must keep loading (and
        // land on the pinned default).
        let json = r#"{"rounds":2,"arrivals_per_round":1,"departures_per_round":1,"rescores_per_round":2}"#;
        let config: StreamConfig = serde_json::from_str(json).unwrap();
        assert_eq!(config.seed, None);
        assert_eq!(config.seed(), DEFAULT_STREAM_SEED);
    }

    #[test]
    fn zero_rounds_is_rejected() {
        let market = taskrabbit_like(30, 1).unwrap();
        let err = run_stream(
            &market,
            "errands",
            &Transparency::full(),
            &FairnessCriterion::default(),
            StreamConfig {
                rounds: 0,
                ..Default::default()
            },
        );
        assert!(err.is_err());
    }
}
