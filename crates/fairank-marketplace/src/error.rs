//! Errors of the marketplace substrate.

use std::fmt;

use fairank_anonymize::AnonError;
use fairank_core::CoreError;
use fairank_data::DataError;

/// Errors produced by marketplace simulation and crawling.
#[derive(Debug)]
pub enum MarketError {
    /// A job id was not found in the catalog.
    UnknownJob(String),
    /// A job referenced a skill the worker population does not have.
    UnknownSkill { job: String, skill: String },
    /// A marketplace was configured inconsistently.
    InvalidMarketplace(String),
    /// An error bubbled up from the core crate.
    Core(CoreError),
    /// An error bubbled up from the dataset substrate.
    Data(DataError),
    /// An error bubbled up from the anonymization substrate.
    Anon(AnonError),
}

impl fmt::Display for MarketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarketError::UnknownJob(id) => write!(f, "unknown job {id:?}"),
            MarketError::UnknownSkill { job, skill } => {
                write!(f, "job {job:?} requires unknown skill {skill:?}")
            }
            MarketError::InvalidMarketplace(msg) => write!(f, "invalid marketplace: {msg}"),
            MarketError::Core(e) => write!(f, "core error: {e}"),
            MarketError::Data(e) => write!(f, "data error: {e}"),
            MarketError::Anon(e) => write!(f, "anonymization error: {e}"),
        }
    }
}

impl std::error::Error for MarketError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MarketError::Core(e) => Some(e),
            MarketError::Data(e) => Some(e),
            MarketError::Anon(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for MarketError {
    fn from(e: CoreError) -> Self {
        MarketError::Core(e)
    }
}
impl From<DataError> for MarketError {
    fn from(e: DataError) -> Self {
        MarketError::Data(e)
    }
}
impl From<AnonError> for MarketError {
    fn from(e: AnonError) -> Self {
        MarketError::Anon(e)
    }
}

/// Convenience alias for this crate.
pub type Result<T> = std::result::Result<T, MarketError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(MarketError::UnknownJob("j1".into()).to_string().contains("j1"));
        assert!(MarketError::UnknownSkill {
            job: "j".into(),
            skill: "s".into()
        }
        .to_string()
        .contains("unknown skill"));
        assert!(MarketError::InvalidMarketplace("no jobs".into())
            .to_string()
            .contains("no jobs"));
        let e: MarketError = CoreError::EmptyInput.into();
        assert!(e.to_string().contains("core"));
        let e: MarketError = DataError::UnknownColumn("x".into()).into();
        assert!(e.to_string().contains("data"));
        let e: MarketError = AnonError::BadParameter("k".into()).into();
        assert!(e.to_string().contains("anonymization"));
    }
}
