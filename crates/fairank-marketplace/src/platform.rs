//! The marketplace: workers + jobs + a ranking service with transparency
//! modes.
//!
//! FaiRank "can operate under various transparency settings … as a service
//! to quantify fairness in existing blackbox job marketplaces" (§1). The
//! two axes are *process* transparency (is the scoring function visible, or
//! only the ranking?) and *data* transparency (are worker attributes fully
//! visible, k-anonymized, or hidden?).

use fairank_anonymize::{mondrian, MondrianConfig};
use fairank_core::scoring::{scores_to_ranking, ObservedTable, ScoreSource};
use fairank_data::dataset::Dataset;
use fairank_data::schema::AttributeRole;
use serde::{Deserialize, Serialize};

use crate::error::{MarketError, Result};
use crate::job::Job;

/// Process transparency: what the platform reveals about *how* it ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FunctionTransparency {
    /// The scoring function itself is published.
    #[default]
    Visible,
    /// Only the resulting ranking is observable (the paper's
    /// function-opaque setting: histograms are then built over ranks).
    RankingOnly,
}

/// Data transparency: what the platform reveals about *whom* it ranks.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DataTransparency {
    /// All worker attributes are visible.
    #[default]
    Full,
    /// Protected attributes are k-anonymized (Mondrian recoding) before
    /// being exposed.
    Anonymized {
        /// The anonymity parameter.
        k: usize,
    },
    /// The named attributes are withheld entirely (demoted to meta, so the
    /// fairness analysis cannot partition on them).
    Hidden(Vec<String>),
}

/// A complete transparency setting.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Transparency {
    /// Process axis.
    pub function: FunctionTransparency,
    /// Data axis.
    pub data: DataTransparency,
}

impl Transparency {
    /// Everything visible (the easiest auditing setting).
    pub fn full() -> Self {
        Transparency::default()
    }

    /// Nothing but rankings over k-anonymized profiles — the hardest
    /// setting the paper demonstrates.
    pub fn blackbox(k: usize) -> Self {
        Transparency {
            function: FunctionTransparency::RankingOnly,
            data: DataTransparency::Anonymized { k },
        }
    }
}

/// What an observer (auditor/crawler) receives for one job under a given
/// transparency setting: worker data as exposed, and a score source that is
/// either the true function or the observable ranking.
#[derive(Debug, Clone)]
pub struct Observation {
    /// The job id observed.
    pub job_id: String,
    /// Worker attributes as exposed by the platform.
    pub dataset: Dataset,
    /// How scores can be reconstructed.
    pub source: ScoreSource,
}

/// A simulated online job marketplace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Marketplace {
    /// Marketplace name (e.g. "taskrabbit-like").
    pub name: String,
    workers: Dataset,
    jobs: Vec<Job>,
}

impl Marketplace {
    /// Builds a marketplace, validating that every job's scoring function
    /// only references skills the worker population has.
    pub fn new(name: impl Into<String>, workers: Dataset, jobs: Vec<Job>) -> Result<Self> {
        if jobs.is_empty() {
            return Err(MarketError::InvalidMarketplace(
                "a marketplace needs at least one job".into(),
            ));
        }
        if workers.num_rows() == 0 {
            return Err(MarketError::InvalidMarketplace(
                "a marketplace needs at least one worker".into(),
            ));
        }
        let mut ids: Vec<&str> = jobs.iter().map(|j| j.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != jobs.len() {
            return Err(MarketError::InvalidMarketplace(
                "job ids must be unique".into(),
            ));
        }
        for job in &jobs {
            for skill in job.required_skills() {
                if workers.observed_column(skill).is_none() {
                    return Err(MarketError::UnknownSkill {
                        job: job.id.clone(),
                        skill: skill.to_string(),
                    });
                }
            }
        }
        Ok(Marketplace {
            name: name.into(),
            workers,
            jobs,
        })
    }

    /// The worker population.
    pub fn workers(&self) -> &Dataset {
        &self.workers
    }

    /// The job catalog.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// A job by id.
    pub fn job(&self, id: &str) -> Result<&Job> {
        self.jobs
            .iter()
            .find(|j| j.id == id)
            .ok_or_else(|| MarketError::UnknownJob(id.to_string()))
    }

    /// The true scores of every worker for a job (platform-internal view).
    pub fn scores_for(&self, job_id: &str) -> Result<Vec<f64>> {
        let job = self.job(job_id)?;
        Ok(job.scoring.score_all(&self.workers)?)
    }

    /// The ranking the platform publishes for a job (best worker first,
    /// ties broken by row index).
    pub fn ranking_for(&self, job_id: &str) -> Result<Vec<u32>> {
        Ok(scores_to_ranking(&self.scores_for(job_id)?))
    }

    /// Observes one job under a transparency setting — what a crawler
    /// scraping the platform would obtain.
    pub fn observe(&self, job_id: &str, transparency: &Transparency) -> Result<Observation> {
        let job = self.job(job_id)?;
        let dataset = match &transparency.data {
            DataTransparency::Full => self.workers.clone(),
            DataTransparency::Anonymized { k } => {
                let qis: Vec<&str> = self
                    .workers
                    .schema()
                    .fields()
                    .iter()
                    .filter(|f| f.role == AttributeRole::Protected)
                    .map(|f| f.name.as_str())
                    .collect();
                mondrian(&self.workers, &qis, MondrianConfig { k: *k })?.dataset
            }
            DataTransparency::Hidden(cols) => {
                let mut ds = self.workers.clone();
                for col in cols {
                    ds = ds.with_role(col, AttributeRole::Meta)?;
                }
                ds
            }
        };
        let source = match transparency.function {
            FunctionTransparency::Visible => ScoreSource::Function(job.scoring.clone()),
            FunctionTransparency::RankingOnly => {
                ScoreSource::Ranking(self.ranking_for(job_id)?)
            }
        };
        Ok(Observation {
            job_id: job.id.clone(),
            dataset,
            source,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairank_core::scoring::LinearScoring;
    use fairank_core::space::ProtectedTable;

    fn workers() -> Dataset {
        Dataset::builder()
            .categorical(
                "gender",
                AttributeRole::Protected,
                &["F", "M", "F", "M", "F", "M"],
            )
            .integer(
                "birth_year",
                AttributeRole::Protected,
                vec![1990, 1985, 1970, 1975, 2000, 1995],
            )
            .float(
                "plumbing",
                AttributeRole::Observed,
                vec![0.9, 0.8, 0.3, 0.4, 0.6, 0.7],
            )
            .float(
                "rating",
                AttributeRole::Observed,
                vec![0.5, 0.9, 0.4, 0.8, 0.3, 0.7],
            )
            .build()
            .unwrap()
    }

    fn market() -> Marketplace {
        let plumber = Job::new(
            "plumber",
            "Fix a sink",
            LinearScoring::builder()
                .weight("plumbing", 0.6)
                .weight("rating", 0.4)
                .build_unchecked()
                .unwrap(),
        );
        let rated = Job::new(
            "rated",
            "Anything rated",
            LinearScoring::builder()
                .weight("rating", 1.0)
                .build_unchecked()
                .unwrap(),
        );
        Marketplace::new("test-market", workers(), vec![plumber, rated]).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(Marketplace::new("m", workers(), vec![]).is_err());
        let ghost_job = Job::new(
            "g",
            "Ghost",
            LinearScoring::builder()
                .weight("telekinesis", 1.0)
                .build_unchecked()
                .unwrap(),
        );
        let err = Marketplace::new("m", workers(), vec![ghost_job]).unwrap_err();
        assert!(matches!(err, MarketError::UnknownSkill { .. }));
        let dup = vec![
            Job::new("a", "A", LinearScoring::builder().weight("rating", 1.0).build_unchecked().unwrap()),
            Job::new("a", "A2", LinearScoring::builder().weight("rating", 1.0).build_unchecked().unwrap()),
        ];
        assert!(Marketplace::new("m", workers(), dup).is_err());
    }

    #[test]
    fn scores_and_ranking_agree() {
        let m = market();
        let scores = m.scores_for("rated").unwrap();
        let ranking = m.ranking_for("rated").unwrap();
        // Best rating is worker 1 (0.9), worst is worker 4 (0.3).
        assert_eq!(ranking[0], 1);
        assert_eq!(*ranking.last().unwrap(), 4);
        assert_eq!(scores.len(), 6);
        assert!(m.scores_for("ghost").is_err());
    }

    #[test]
    fn observe_full_transparency() {
        let m = market();
        let obs = m.observe("plumber", &Transparency::full()).unwrap();
        assert_eq!(obs.job_id, "plumber");
        assert!(matches!(obs.source, ScoreSource::Function(_)));
        assert_eq!(obs.dataset, *m.workers());
    }

    #[test]
    fn observe_ranking_only() {
        let m = market();
        let t = Transparency {
            function: FunctionTransparency::RankingOnly,
            data: DataTransparency::Full,
        };
        let obs = m.observe("rated", &t).unwrap();
        match &obs.source {
            ScoreSource::Ranking(r) => assert_eq!(r, &m.ranking_for("rated").unwrap()),
            other => panic!("expected ranking, got {other:?}"),
        }
    }

    #[test]
    fn observe_anonymized_data() {
        let m = market();
        let t = Transparency {
            function: FunctionTransparency::Visible,
            data: DataTransparency::Anonymized { k: 3 },
        };
        let obs = m.observe("plumber", &t).unwrap();
        // Still 6 workers, still 2 protected attributes, but coarsened.
        assert_eq!(obs.dataset.num_rows(), 6);
        let attrs = obs.dataset.protected_attributes();
        assert_eq!(attrs.len(), 2);
        assert!(
            fairank_anonymize::is_k_anonymous(
                &obs.dataset,
                &["gender", "birth_year"],
                3
            )
            .unwrap()
        );
    }

    #[test]
    fn observe_hidden_attributes() {
        let m = market();
        let t = Transparency {
            function: FunctionTransparency::Visible,
            data: DataTransparency::Hidden(vec!["gender".into()]),
        };
        let obs = m.observe("plumber", &t).unwrap();
        let attrs = obs.dataset.protected_attributes();
        assert_eq!(attrs.len(), 1);
        assert_eq!(attrs[0].name, "birth_year");
    }

    #[test]
    fn blackbox_combines_both_axes() {
        let m = market();
        let obs = m.observe("rated", &Transparency::blackbox(2)).unwrap();
        assert!(matches!(obs.source, ScoreSource::Ranking(_)));
        assert!(fairank_anonymize::is_k_anonymous(
            &obs.dataset,
            &["gender", "birth_year"],
            2
        )
        .unwrap());
    }

    #[test]
    fn serde_round_trip() {
        let m = market();
        let json = serde_json::to_string(&m).unwrap();
        let back: Marketplace = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
