//! Jobs and their scoring functions.
//!
//! "The user can select or upload … a scoring function to rank individuals
//! … for example a linear combination of an individual's reputation and
//! plumbing skills" (§2). On a marketplace every job carries its own
//! function; the job owner explores *variants* of it (§4, JOB OWNER).

use fairank_core::scoring::LinearScoring;
use serde::{Deserialize, Serialize};

/// A job posting: an id, a human title, and the scoring function the
/// platform uses to rank candidates for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Stable identifier, unique within a marketplace.
    pub id: String,
    /// Human-readable title (e.g. "Installing wood panels").
    pub title: String,
    /// The scoring function; its weighted attributes are the skills the
    /// job requires.
    pub scoring: LinearScoring,
}

impl Job {
    /// Creates a job.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        scoring: LinearScoring,
    ) -> Self {
        Job {
            id: id.into(),
            title: title.into(),
            scoring,
        }
    }

    /// The skills (observed attributes) this job's function weighs.
    pub fn required_skills(&self) -> Vec<&str> {
        self.scoring.terms().iter().map(|(n, _)| n.as_str()).collect()
    }

    /// A variant of this job with one scoring weight changed — the
    /// job-owner exploration primitive.
    pub fn variant(&self, skill: &str, weight: f64) -> fairank_core::Result<Job> {
        Ok(Job {
            id: format!("{}#{}={}", self.id, skill, weight),
            title: self.title.clone(),
            scoring: self.scoring.with_weight(skill, weight)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scoring() -> LinearScoring {
        LinearScoring::builder()
            .weight("plumbing", 0.7)
            .weight("rating", 0.3)
            .build_unchecked()
            .unwrap()
    }

    #[test]
    fn required_skills_mirror_terms() {
        let job = Job::new("j1", "Fix a sink", scoring());
        assert_eq!(job.required_skills(), vec!["plumbing", "rating"]);
    }

    #[test]
    fn variant_changes_one_weight_and_id() {
        let job = Job::new("j1", "Fix a sink", scoring());
        let v = job.variant("rating", 0.6).unwrap();
        assert_ne!(v.id, job.id);
        assert_eq!(v.title, job.title);
        assert_eq!(
            v.scoring.terms().iter().find(|(n, _)| n == "rating").unwrap().1,
            0.6
        );
        // Original untouched.
        assert_eq!(
            job.scoring.terms().iter().find(|(n, _)| n == "rating").unwrap().1,
            0.3
        );
    }

    #[test]
    fn serde_round_trip() {
        let job = Job::new("j1", "Fix a sink", scoring());
        let json = serde_json::to_string(&job).unwrap();
        let back: Job = serde_json::from_str(&json).unwrap();
        assert_eq!(job, back);
    }
}
