//! The crawler: observes a marketplace the way an external auditor does.
//!
//! "FaiRank … can be used as a service to quantify fairness in existing
//! blackbox job marketplaces" (§1). The crawler walks the job catalog under
//! a transparency setting and packages, per job, everything downstream
//! analysis needs: the exposed worker data and the score source. The
//! quantification itself happens in `fairank_core::quantify` (wired up by
//! the session's auditor report).

use fairank_core::fairness::FairnessCriterion;
use fairank_core::quantify::{Quantify, QuantifyOutcome};
use fairank_data::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::Result;
use crate::platform::{Marketplace, Observation, Transparency};

/// One crawled job: the observation plus its quantified fairness.
#[derive(Debug, Clone)]
pub struct CrawledJob {
    /// Job id.
    pub job_id: String,
    /// Job title.
    pub title: String,
    /// The exposed worker data.
    pub dataset: Dataset,
    /// The quantification outcome under the crawl's criterion.
    pub outcome: QuantifyOutcome,
}

/// A full crawl of a marketplace.
#[derive(Debug, Clone)]
pub struct Crawl {
    /// Marketplace name.
    pub marketplace: String,
    /// The transparency setting the crawl ran under.
    pub transparency: Transparency,
    /// Per-job results, in catalog order.
    pub jobs: Vec<CrawledJob>,
}

/// Observes one job and quantifies its fairness.
pub fn crawl_job(
    marketplace: &Marketplace,
    job_id: &str,
    transparency: &Transparency,
    criterion: &FairnessCriterion,
) -> Result<CrawledJob> {
    let Observation {
        job_id,
        dataset,
        source,
    } = marketplace.observe(job_id, transparency)?;
    let outcome = Quantify::new(*criterion).run(&dataset, &source)?;
    let title = marketplace.job(&job_id)?.title.clone();
    Ok(CrawledJob {
        job_id,
        title,
        dataset,
        outcome,
    })
}

/// Crawls every job in the catalog.
pub fn crawl_marketplace(
    marketplace: &Marketplace,
    transparency: &Transparency,
    criterion: &FairnessCriterion,
) -> Result<Crawl> {
    let mut jobs = Vec::with_capacity(marketplace.jobs().len());
    for job in marketplace.jobs() {
        jobs.push(crawl_job(marketplace, &job.id, transparency, criterion)?);
    }
    Ok(Crawl {
        marketplace: marketplace.name.clone(),
        transparency: transparency.clone(),
        jobs,
    })
}

/// Crawls a seeded random sample of at most `max_jobs` catalog entries —
/// the budgeted-audit mode for catalogs too large to quantify end to end.
/// Sampling is a seeded partial Fisher–Yates shuffle, so the same seed
/// always audits the same jobs (results stay in catalog order).
pub fn crawl_sample(
    marketplace: &Marketplace,
    transparency: &Transparency,
    criterion: &FairnessCriterion,
    max_jobs: usize,
    seed: u64,
) -> Result<Crawl> {
    let total = marketplace.jobs().len();
    if max_jobs >= total {
        return crawl_marketplace(marketplace, transparency, criterion);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..total).collect();
    for i in 0..max_jobs {
        let j = rng.gen_range(i..total);
        order.swap(i, j);
    }
    let mut picked = order[..max_jobs].to_vec();
    picked.sort_unstable();
    let mut jobs = Vec::with_capacity(max_jobs);
    for idx in picked {
        let id = marketplace.jobs()[idx].id.clone();
        jobs.push(crawl_job(marketplace, &id, transparency, criterion)?);
    }
    Ok(Crawl {
        marketplace: marketplace.name.clone(),
        transparency: transparency.clone(),
        jobs,
    })
}

impl Crawl {
    /// Jobs ordered from most to least unfair under the crawl's criterion.
    pub fn ranked_by_unfairness(&self) -> Vec<&CrawledJob> {
        let mut out: Vec<&CrawledJob> = self.jobs.iter().collect();
        out.sort_by(|a, b| {
            b.outcome
                .unfairness
                .partial_cmp(&a.outcome.unfairness)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use fairank_core::scoring::LinearScoring;
    use fairank_data::schema::AttributeRole;

    fn market() -> Marketplace {
        // "skill" is clean; "biased_skill" penalizes females heavily.
        let workers = Dataset::builder()
            .categorical(
                "gender",
                AttributeRole::Protected,
                &["F", "M", "F", "M", "F", "M", "F", "M"],
            )
            .float(
                "skill",
                AttributeRole::Observed,
                vec![0.52, 0.5, 0.48, 0.51, 0.49, 0.5, 0.53, 0.47],
            )
            .float(
                "biased_skill",
                AttributeRole::Observed,
                vec![0.1, 0.9, 0.15, 0.85, 0.12, 0.88, 0.11, 0.9],
            )
            .build()
            .unwrap();
        let fair_job = Job::new(
            "fair",
            "Fair job",
            LinearScoring::builder().weight("skill", 1.0).build_unchecked().unwrap(),
        );
        let unfair_job = Job::new(
            "unfair",
            "Unfair job",
            LinearScoring::builder()
                .weight("biased_skill", 1.0)
                .build_unchecked()
                .unwrap(),
        );
        Marketplace::new("toy", workers, vec![fair_job, unfair_job]).unwrap()
    }

    #[test]
    fn crawl_quantifies_every_job() {
        let m = market();
        let crawl = crawl_marketplace(
            &m,
            &Transparency::full(),
            &FairnessCriterion::default(),
        )
        .unwrap();
        assert_eq!(crawl.jobs.len(), 2);
        assert_eq!(crawl.marketplace, "toy");
    }

    #[test]
    fn unfair_job_ranks_first() {
        let m = market();
        let crawl = crawl_marketplace(
            &m,
            &Transparency::full(),
            &FairnessCriterion::default(),
        )
        .unwrap();
        let ranked = crawl.ranked_by_unfairness();
        assert_eq!(ranked[0].job_id, "unfair");
        assert!(ranked[0].outcome.unfairness > ranked[1].outcome.unfairness);
        assert!(ranked[0].outcome.unfairness > 0.5);
    }

    #[test]
    fn ranking_only_crawl_still_detects_bias() {
        let m = market();
        let t = Transparency {
            function: crate::platform::FunctionTransparency::RankingOnly,
            data: crate::platform::DataTransparency::Full,
        };
        let crawl =
            crawl_marketplace(&m, &t, &FairnessCriterion::default()).unwrap();
        let ranked = crawl.ranked_by_unfairness();
        // Under rank histograms the biased job still shows the gap: all
        // females rank in the bottom half.
        assert_eq!(ranked[0].job_id, "unfair");
    }

    #[test]
    fn sampled_crawl_is_deterministic_per_seed() {
        let m = market();
        let criterion = FairnessCriterion::default();
        let a = crawl_sample(&m, &Transparency::full(), &criterion, 1, 42).unwrap();
        let b = crawl_sample(&m, &Transparency::full(), &criterion, 1, 42).unwrap();
        assert_eq!(a.jobs.len(), 1);
        assert_eq!(a.jobs[0].job_id, b.jobs[0].job_id);
        assert_eq!(
            a.jobs[0].outcome.unfairness.to_bits(),
            b.jobs[0].outcome.unfairness.to_bits()
        );
        // A budget covering the catalog degenerates to the full crawl.
        let full = crawl_sample(&m, &Transparency::full(), &criterion, 99, 1).unwrap();
        assert_eq!(full.jobs.len(), m.jobs().len());
    }

    #[test]
    fn single_job_crawl() {
        let m = market();
        let job = crawl_job(
            &m,
            "fair",
            &Transparency::full(),
            &FairnessCriterion::default(),
        )
        .unwrap();
        assert_eq!(job.title, "Fair job");
        assert!(crawl_job(
            &m,
            "ghost",
            &Transparency::full(),
            &FairnessCriterion::default()
        )
        .is_err());
    }
}
