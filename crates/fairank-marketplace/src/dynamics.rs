//! Ranking feedback dynamics: what repeated ranking does to fairness.
//!
//! Online marketplaces re-rank continuously, and ranking causes exposure,
//! hires, and new ratings — a feedback loop the fairness-in-ranking
//! literature the paper builds on (Biega et al., Singh & Joachims) warns
//! can amplify initial gaps. This module simulates that loop on a
//! marketplace job: each round the top-k ranked workers are "hired" and
//! their rating drifts upward; everyone else's decays slightly. Experiment
//! E14 tracks the quantified unfairness round by round.

use fairank_core::fairness::FairnessCriterion;
use fairank_core::quantify::Quantify;
use fairank_core::scoring::{ObservedTable, ScoreSource};
use fairank_data::column::ColumnData;
use fairank_data::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::{MarketError, Result};
use crate::platform::Marketplace;

/// The seed used when a [`FeedbackConfig`] does not pin one explicitly.
pub const DEFAULT_FEEDBACK_SEED: u64 = 0x0FEE_DBAC;

/// Parameters of the feedback simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeedbackConfig {
    /// Number of ranking/hiring rounds.
    pub rounds: usize,
    /// Workers hired (and boosted) per round.
    pub top_k: usize,
    /// Rating drift for hired workers: `r ← r + boost · (1 − r)`.
    pub boost: f64,
    /// Rating decay for unhired workers: `r ← r · (1 − decay)`.
    pub decay: f64,
    /// Multiplicative noise on each drift step: the applied boost/decay is
    /// scaled by `1 + u` with `u` uniform in `[−noise, noise]`. `None` (and
    /// `Some(0.0)`) reproduce the noiseless closed-form drift exactly.
    pub rating_noise: Option<f64>,
    /// Explicit RNG seed for the noise draws; `None` uses
    /// [`DEFAULT_FEEDBACK_SEED`]. Optional so that serialized specs from
    /// before this field existed still load.
    pub seed: Option<u64>,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig {
            rounds: 20,
            top_k: 20,
            boost: 0.08,
            decay: 0.01,
            rating_noise: None,
            seed: None,
        }
    }
}

impl FeedbackConfig {
    /// The effective RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed.unwrap_or(DEFAULT_FEEDBACK_SEED)
    }

    /// The effective noise amplitude (0 = deterministic drift).
    pub fn rating_noise(&self) -> f64 {
        self.rating_noise.unwrap_or(0.0)
    }
}

/// One round's measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Round index (0 = before any feedback).
    pub round: usize,
    /// Quantified unfairness of the job's ranking at this point (the
    /// adaptive most-unfair partitioning — can move either way as the
    /// search re-partitions each round).
    pub unfairness: f64,
    /// Unfairness of the *fixed* partitioning induced by the tracked
    /// protected attribute — the demographic gap the loop amplifies.
    pub tracked_gap: f64,
    /// Mean rating over all workers.
    pub mean_rating: f64,
    /// Gini-style concentration of the rating mass (0 = equal).
    pub rating_gini: f64,
}

/// The full trajectory of a feedback simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackOutcome {
    /// Per-round statistics, round 0 first.
    pub rounds: Vec<RoundStats>,
    /// The final worker dataset (with drifted ratings).
    pub final_workers: Dataset,
}

/// Runs the feedback loop for one job. The job's scoring function must
/// reference a `rating` observed attribute (the feedback target).
pub fn simulate_feedback(
    marketplace: &Marketplace,
    job_id: &str,
    rating_column: &str,
    tracked_attribute: &str,
    criterion: &FairnessCriterion,
    config: FeedbackConfig,
) -> Result<FeedbackOutcome> {
    if config.rounds == 0 {
        return Err(MarketError::InvalidMarketplace(
            "feedback simulation needs at least one round".into(),
        ));
    }
    if !(0.0..=1.0).contains(&config.boost) || !(0.0..=1.0).contains(&config.decay) {
        return Err(MarketError::InvalidMarketplace(
            "boost and decay must be fractions".into(),
        ));
    }
    if !(0.0..=1.0).contains(&config.rating_noise()) {
        return Err(MarketError::InvalidMarketplace(
            "rating noise must be a fraction".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(config.seed());
    let job = marketplace.job(job_id)?;
    let mut workers = marketplace.workers().clone();
    if workers.observed_column(rating_column).is_none() {
        return Err(MarketError::UnknownSkill {
            job: job.id.clone(),
            skill: rating_column.to_string(),
        });
    }
    let top_k = config.top_k.min(workers.num_rows());

    let quantifier = Quantify::new(*criterion);
    let mut rounds = Vec::with_capacity(config.rounds + 1);
    for round in 0..=config.rounds {
        // Measure.
        let source = ScoreSource::Function(job.scoring.clone());
        let outcome = quantifier.run(&workers, &source)?;
        let space = workers.to_space(&source)?;
        let attr = space.attribute_index(tracked_attribute).ok_or_else(|| {
            MarketError::InvalidMarketplace(format!(
                "tracked attribute {tracked_attribute:?} is not protected"
            ))
        })?;
        let fixed = fairank_core::partition::Partition::root(&space).split(&space, attr);
        let tracked_gap = criterion.unfairness(&fixed, space.scores())?;
        let ratings = workers
            .observed_column(rating_column)
            .expect("validated above")
            .to_vec();
        rounds.push(RoundStats {
            round,
            unfairness: outcome.unfairness,
            tracked_gap,
            mean_rating: ratings.iter().sum::<f64>() / ratings.len() as f64,
            rating_gini: gini(&ratings),
        });
        if round == config.rounds {
            break;
        }
        // Rank, hire, drift.
        let scores = job.scoring.score_all(&workers)?;
        let ranking = fairank_core::scoring::scores_to_ranking(&scores);
        let mut hired = vec![false; workers.num_rows()];
        for &row in ranking.iter().take(top_k) {
            hired[row as usize] = true;
        }
        workers = drift_ratings(&workers, rating_column, &hired, config, &mut rng)?;
    }
    Ok(FeedbackOutcome {
        rounds,
        final_workers: workers,
    })
}

fn drift_ratings(
    workers: &Dataset,
    rating_column: &str,
    hired: &[bool],
    config: FeedbackConfig,
    rng: &mut StdRng,
) -> Result<Dataset> {
    let noise = config.rating_noise();
    let mut builder = Dataset::builder();
    for (field, col) in workers.schema().fields().iter().zip(workers.columns()) {
        builder = if field.name == rating_column {
            let values = col.as_float().expect("rating is observed float");
            let drifted: Vec<f64> = values
                .iter()
                .zip(hired)
                .map(|(&r, &h)| {
                    // Zero noise keeps the closed-form drift bit-exact (the
                    // RNG is not consulted at all).
                    let scale = if noise > 0.0 {
                        1.0 + rng.gen_range(-noise..=noise)
                    } else {
                        1.0
                    };
                    if h {
                        (r + scale * config.boost * (1.0 - r)).clamp(0.0, 1.0)
                    } else {
                        (r * (1.0 - scale * config.decay)).clamp(0.0, 1.0)
                    }
                })
                .collect();
            builder.float(field.name.clone(), field.role, drifted)
        } else {
            match &col.data {
                ColumnData::Categorical { codes, labels } => {
                    let values: Vec<&str> =
                        codes.iter().map(|&c| labels[c as usize].as_str()).collect();
                    builder.categorical(field.name.clone(), field.role, &values)
                }
                ColumnData::Float(v) => builder.float(field.name.clone(), field.role, v.clone()),
                ColumnData::Integer(v) => {
                    builder.integer(field.name.clone(), field.role, v.clone())
                }
            }
        };
    }
    Ok(builder.build()?)
}

/// Gini coefficient of a non-negative sample (0 = perfectly equal).
pub fn gini(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let sum: f64 = sorted.iter().sum();
    if sum <= 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (2.0 * (i as f64 + 1.0) - n as f64 - 1.0) * v)
        .sum();
    weighted / (n as f64 * sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::taskrabbit_like;

    #[test]
    fn gini_basics() {
        assert_eq!(gini(&[]), 0.0);
        assert!(gini(&[0.5, 0.5, 0.5]).abs() < 1e-12);
        // All mass on one individual approaches (n-1)/n.
        let g = gini(&[0.0, 0.0, 0.0, 1.0]);
        assert!((g - 0.75).abs() < 1e-12);
        assert!(gini(&[0.2, 0.4, 0.6]) > 0.0);
    }

    #[test]
    fn feedback_amplifies_unfairness_on_biased_job() {
        let market = taskrabbit_like(250, 42).unwrap();
        let outcome = simulate_feedback(
            &market,
            "rated-anything",
            "rating",
            "gender",
            &FairnessCriterion::default(),
            FeedbackConfig {
                rounds: 12,
                top_k: 25,
                boost: 0.1,
                decay: 0.02,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(outcome.rounds.len(), 13);
        let first = &outcome.rounds[0];
        let last = outcome.rounds.last().unwrap();
        // The rich-get-richer loop concentrates ratings…
        assert!(
            last.rating_gini > first.rating_gini,
            "gini {} -> {}",
            first.rating_gini,
            last.rating_gini
        );
        // …and the fixed demographic gap (here: gender, which carries the
        // injected rating penalty) widens.
        assert!(
            last.tracked_gap > first.tracked_gap,
            "gender gap {} -> {}",
            first.tracked_gap,
            last.tracked_gap
        );
    }

    #[test]
    fn rounds_are_monotone_in_round_index() {
        let market = taskrabbit_like(100, 7).unwrap();
        let outcome = simulate_feedback(
            &market,
            "errands",
            "rating",
            "gender",
            &FairnessCriterion::default(),
            FeedbackConfig {
                rounds: 3,
                top_k: 10,
                boost: 0.05,
                decay: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        for (i, r) in outcome.rounds.iter().enumerate() {
            assert_eq!(r.round, i);
        }
        // Zero decay: mean rating cannot fall.
        assert!(
            outcome.rounds.last().unwrap().mean_rating
                >= outcome.rounds[0].mean_rating - 1e-12
        );
    }

    #[test]
    fn validation_errors() {
        let market = taskrabbit_like(50, 1).unwrap();
        let criterion = FairnessCriterion::default();
        for (job, skill, attr, cfg) in [
            ("ghost-job", "rating", "gender", FeedbackConfig::default()),
            ("errands", "ghost-skill", "gender", FeedbackConfig::default()),
            ("errands", "rating", "ghost-attr", FeedbackConfig::default()),
            (
                "errands",
                "rating",
                "gender",
                FeedbackConfig {
                    rounds: 0,
                    ..Default::default()
                },
            ),
            (
                "errands",
                "rating",
                "gender",
                FeedbackConfig {
                    boost: 7.0,
                    ..Default::default()
                },
            ),
        ] {
            assert!(
                simulate_feedback(&market, job, skill, attr, &criterion, cfg).is_err(),
                "{job}/{skill}/{attr}"
            );
        }
    }

    #[test]
    fn noisy_runs_are_deterministic_per_seed() {
        let market = taskrabbit_like(80, 4).unwrap();
        let run = |seed: Option<u64>| {
            simulate_feedback(
                &market,
                "errands",
                "rating",
                "gender",
                &FairnessCriterion::default(),
                FeedbackConfig {
                    rounds: 4,
                    top_k: 10,
                    boost: 0.1,
                    decay: 0.02,
                    rating_noise: Some(0.5),
                    seed,
                },
            )
            .unwrap()
        };
        // Same seed → the whole trajectory (and final dataset) is equal.
        assert_eq!(run(Some(17)), run(Some(17)));
        assert_eq!(run(None), run(None));
        // A different seed draws different noise.
        assert_ne!(run(Some(17)), run(Some(18)));
    }

    #[test]
    fn zero_noise_never_consults_the_rng() {
        let market = taskrabbit_like(60, 2).unwrap();
        let run = |config: FeedbackConfig| {
            simulate_feedback(
                &market,
                "errands",
                "rating",
                "gender",
                &FairnessCriterion::default(),
                config,
            )
            .unwrap()
        };
        let base = FeedbackConfig {
            rounds: 3,
            top_k: 8,
            boost: 0.07,
            decay: 0.01,
            ..Default::default()
        };
        // With zero noise the seed is irrelevant: the closed-form drift is
        // reproduced bit-exactly whatever the seed says.
        let a = run(base);
        let b = run(FeedbackConfig {
            seed: Some(999),
            rating_noise: Some(0.0),
            ..base
        });
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_noise_is_rejected() {
        let market = taskrabbit_like(30, 1).unwrap();
        let err = simulate_feedback(
            &market,
            "errands",
            "rating",
            "gender",
            &FairnessCriterion::default(),
            FeedbackConfig {
                rating_noise: Some(1.5),
                ..Default::default()
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn final_workers_keep_schema() {
        let market = taskrabbit_like(60, 5).unwrap();
        let outcome = simulate_feedback(
            &market,
            "errands",
            "rating",
            "gender",
            &FairnessCriterion::default(),
            FeedbackConfig {
                rounds: 2,
                top_k: 5,
                boost: 0.1,
                decay: 0.01,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            outcome.final_workers.schema(),
            market.workers().schema()
        );
        assert_eq!(outcome.final_workers.num_rows(), 60);
    }
}
