//! Canned marketplaces for the demonstration scenarios.
//!
//! Two presets mirror the platforms the paper names (§1): a TaskRabbit-like
//! US gig marketplace and a Qapa-like French temp-work marketplace. Both
//! populations carry Hannak-et-al-style injected bias so the AUDITOR
//! scenario has real unfairness to surface, and both catalogs include the
//! paper's example jobs ("installing wood panels", writing/coding work).

use fairank_core::scoring::LinearScoring;
use fairank_data::bias::BiasRule;
use fairank_data::dist::SkillDistribution;
use fairank_data::synth::PopulationSpec;

use crate::error::Result;
use crate::job::Job;
use crate::platform::Marketplace;

fn beta(alpha: f64, beta: f64) -> SkillDistribution {
    SkillDistribution::Beta { alpha, beta }
}

fn linear(terms: &[(&str, f64)]) -> LinearScoring {
    let mut b = LinearScoring::builder();
    for (name, w) in terms {
        b = b.weight(*name, *w);
    }
    b.build_unchecked().expect("static weights")
}

/// Population spec of the TaskRabbit-like marketplace: US gig-work
/// demographics, manual + service skills, and rating bias against women and
/// African-American workers (the gaps Hannak et al. measured).
pub fn taskrabbit_population(size: usize, seed: u64) -> PopulationSpec {
    PopulationSpec::builder(size, seed)
        .demographic("gender", vec![("Female", 0.45), ("Male", 0.55)])
        .expect("static spec")
        .demographic(
            "ethnicity",
            vec![
                ("White", 0.5),
                ("African-American", 0.22),
                ("Asian", 0.15),
                ("Other", 0.13),
            ],
        )
        .expect("static spec")
        .demographic(
            "age_band",
            vec![
                ("18-29", 0.3),
                ("30-44", 0.4),
                ("45-59", 0.2),
                ("60+", 0.1),
            ],
        )
        .expect("static spec")
        .demographic(
            "city",
            vec![
                ("NYC", 0.3),
                ("SF", 0.25),
                ("Chicago", 0.25),
                ("Austin", 0.2),
            ],
        )
        .expect("static spec")
        .skill("rating", beta(4.0, 1.8))
        .skill("tasks_done", beta(1.6, 3.0))
        .skill("carpentry", beta(2.0, 2.5))
        .skill("cleaning", beta(2.5, 2.0))
        .skill("moving", beta(2.2, 2.2))
        .skill("punctuality", beta(5.0, 1.5))
        .bias(BiasRule::shift("gender", "Female", "rating", -0.10))
        .bias(BiasRule::shift("ethnicity", "African-American", "rating", -0.13))
        .bias(
            BiasRule::shift("ethnicity", "African-American", "tasks_done", -0.08)
                .and("gender", "Female"),
        )
        .bias(BiasRule::shift("age_band", "60+", "moving", -0.15))
        .build()
}

/// The TaskRabbit-like marketplace: biased population + six manual-work
/// jobs, each scoring a different skill mix.
pub fn taskrabbit_like(size: usize, seed: u64) -> Result<Marketplace> {
    let workers = taskrabbit_population(size, seed).generate()?;
    let jobs = vec![
        Job::new(
            "wood-panels",
            "Installing wood panels",
            linear(&[("carpentry", 0.6), ("rating", 0.3), ("punctuality", 0.1)]),
        ),
        Job::new(
            "furniture",
            "Furniture assembly",
            linear(&[("carpentry", 0.5), ("tasks_done", 0.2), ("rating", 0.3)]),
        ),
        Job::new(
            "deep-clean",
            "Apartment deep clean",
            linear(&[("cleaning", 0.6), ("rating", 0.4)]),
        ),
        Job::new(
            "moving-help",
            "Moving help",
            linear(&[("moving", 0.7), ("punctuality", 0.2), ("rating", 0.1)]),
        ),
        Job::new(
            "errands",
            "Running errands",
            linear(&[("punctuality", 0.5), ("rating", 0.5)]),
        ),
        Job::new(
            "rated-anything",
            "Any task, best rated",
            linear(&[("rating", 1.0)]),
        ),
    ];
    Marketplace::new("taskrabbit-like", workers, jobs)
}

/// Population spec of the Qapa-like marketplace: French temp-work
/// demographics (the paper's French Criminal Law framing) with
/// origin/gender wage-proxy bias.
pub fn qapa_population(size: usize, seed: u64) -> PopulationSpec {
    PopulationSpec::builder(size, seed)
        .demographic("gender", vec![("Femme", 0.48), ("Homme", 0.52)])
        .expect("static spec")
        .demographic(
            "origin",
            vec![
                ("France", 0.6),
                ("Maghreb", 0.18),
                ("Afrique", 0.12),
                ("Autre", 0.1),
            ],
        )
        .expect("static spec")
        .demographic(
            "region",
            vec![
                ("Île-de-France", 0.35),
                ("Auvergne-Rhône-Alpes", 0.25),
                ("Occitanie", 0.2),
                ("Autre", 0.2),
            ],
        )
        .expect("static spec")
        .demographic(
            "age_band",
            vec![("18-25", 0.25), ("26-40", 0.4), ("41-55", 0.25), ("56+", 0.1)],
        )
        .expect("static spec")
        .skill("french_test", beta(5.0, 1.6))
        .skill("experience", beta(1.8, 2.8))
        .skill("customer_rating", beta(4.0, 2.0))
        .skill("writing", beta(2.5, 2.5))
        .skill("coding", beta(1.8, 3.2))
        .bias(BiasRule::shift("origin", "Maghreb", "customer_rating", -0.11))
        .bias(BiasRule::shift("origin", "Afrique", "customer_rating", -0.12))
        .bias(BiasRule::shift("gender", "Femme", "experience", -0.06))
        .bias(
            BiasRule::shift("age_band", "56+", "coding", -0.1),
        )
        .build()
}

/// The Qapa-like marketplace: biased population + five jobs including the
/// paper's code-writing job-owner example.
pub fn qapa_like(size: usize, seed: u64) -> Result<Marketplace> {
    let workers = qapa_population(size, seed).generate()?;
    let jobs = vec![
        Job::new(
            "redaction",
            "Rédaction web",
            linear(&[("writing", 0.5), ("french_test", 0.4), ("customer_rating", 0.1)]),
        ),
        Job::new(
            "code",
            "Write code online",
            linear(&[("coding", 0.7), ("customer_rating", 0.3)]),
        ),
        Job::new(
            "accueil",
            "Agent d'accueil",
            linear(&[("french_test", 0.5), ("customer_rating", 0.5)]),
        ),
        Job::new(
            "manutention",
            "Manutention",
            linear(&[("experience", 0.6), ("customer_rating", 0.4)]),
        ),
        Job::new(
            "best-rated",
            "Mission au mieux noté",
            linear(&[("customer_rating", 1.0)]),
        ),
    ];
    Marketplace::new("qapa-like", workers, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawler::crawl_marketplace;
    use crate::platform::Transparency;
    use fairank_core::fairness::FairnessCriterion;

    #[test]
    fn taskrabbit_builds_and_ranks() {
        let m = taskrabbit_like(200, 42).unwrap();
        assert_eq!(m.jobs().len(), 6);
        assert_eq!(m.workers().num_rows(), 200);
        let ranking = m.ranking_for("wood-panels").unwrap();
        assert_eq!(ranking.len(), 200);
    }

    #[test]
    fn qapa_builds_and_ranks() {
        let m = qapa_like(150, 7).unwrap();
        assert_eq!(m.jobs().len(), 5);
        let scores = m.scores_for("code").unwrap();
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
    }

    #[test]
    fn presets_are_deterministic() {
        let a = taskrabbit_like(100, 3).unwrap();
        let b = taskrabbit_like(100, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn injected_bias_is_detectable_by_audit() {
        let m = taskrabbit_like(400, 11).unwrap();
        let crawl = crawl_marketplace(
            &m,
            &Transparency::full(),
            &FairnessCriterion::default(),
        )
        .unwrap();
        // The pure-rating job carries the strongest injected bias signal;
        // every job's quantification must at least find some unfairness.
        for job in &crawl.jobs {
            assert!(job.outcome.unfairness > 0.0, "{}", job.job_id);
        }
        let ranked = crawl.ranked_by_unfairness();
        assert!(ranked[0].outcome.unfairness > 0.05);
    }
}
