//! `fairank` — the interactive front end over the FaiRank session engine.
//!
//! This binary is the reproduction's stand-in for the paper's web interface
//! (Figure 3): the same Configuration/General/Node interactions, driven by
//! the command language of `fairank_session::command`. Since the typed-API
//! redesign it is a thin renderer over `apply` — every mode runs commands
//! through the same structured [`Response`] layer the server ships as JSON.
//!
//! Modes:
//! * **REPL** (default): `fairank` and type `help`, or pipe a script.
//! * **Script**: `fairank script.frk` runs a command file (`#` comments).
//! * **Demo**: a `demo` argument preloads the paper's Table 1 dataset and
//!   scoring function as `table1` / `paper-f`.
//! * **Serve**: `fairank serve --addr 127.0.0.1:4915` exposes the
//!   multi-session JSON-lines server of `fairank-service`.
//! * **Connect**: `fairank connect 127.0.0.1:4915 [--session name]` is a
//!   remote REPL: commands go over the wire, structured replies render
//!   locally to the exact same text.
//!
//! ```text
//! printf 'generate pop biased\ndefine f rating*1.0\nquantify pop f\n' | fairank
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use fairank_service::{Reply, Request, Server, ServerConfig};
use fairank_session::command::{apply, Command};
use fairank_session::{present, Response, Session};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => return serve_mode(&args[1..]),
        Some("connect") => return connect_mode(&args[1..]),
        _ => {}
    }

    let mut session = Session::new();
    if args.iter().any(|a| a == "demo") {
        session
            .add_dataset("table1", fairank_data::paper::table1_dataset())
            .expect("fresh session");
        session
            .add_function("paper-f", fairank_data::paper::table1_scoring())
            .expect("fresh session");
        println!("demo mode: dataset `table1` and function `paper-f` preloaded");
    }

    // Script mode: any non-"demo" argument is a command file, executed
    // line by line (lines starting with `#` are comments).
    let scripts: Vec<&String> = args.iter().filter(|a| *a != "demo").collect();
    if !scripts.is_empty() {
        for path in scripts {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read script {path}: {e}");
                    std::process::exit(1);
                }
            };
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                println!("fairank> {line}");
                match Command::parse(line).and_then(|c| apply(&mut session, c)) {
                    Ok(Response::Quit) => return,
                    Ok(response) => println!("{}", present::render(&response)),
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        return;
    }

    let stdin = std::io::stdin();
    println!("FaiRank — fairness of ranking explorer (type `help`)");
    loop {
        print!("fairank> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match Command::parse(line).and_then(|c| apply(&mut session, c)) {
            Ok(Response::Quit) => break,
            Ok(response) => println!("{}", present::render(&response)),
            Err(e) => eprintln!("error: {e}"),
        }
    }
}

/// Reads the value following `--<key>` in an argument list.
fn flag_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// `fairank serve [--addr host:port] [--workers n] [--allow-fs] [--admin]
/// [--session-ttl secs]` — the multi-session JSON-lines server. `--addr`
/// with port 0 picks an ephemeral port; the actual address is printed as
/// `listening on <addr>`. Filesystem commands
/// (`load`/`save`/`open`/`export`/`scenario <file>`) are refused from the
/// wire unless `--allow-fs` is given; registry admin (`sessions`/`evict`)
/// is refused unless `--admin` is given. `--session-ttl` evicts sessions
/// idle longer than the window (sweep runs on the accept loop; default:
/// sessions live forever).
fn serve_mode(args: &[String]) {
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:4915");
    let workers = flag_value(args, "--workers")
        .map(|raw| match raw.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--workers must be a number, got {raw:?}");
                std::process::exit(2);
            }
        })
        .unwrap_or(0);
    let session_ttl = flag_value(args, "--session-ttl").map(|raw| {
        match raw.parse::<u64>() {
            Ok(secs) if secs > 0 => std::time::Duration::from_secs(secs),
            _ => {
                eprintln!("--session-ttl must be a positive number of seconds, got {raw:?}");
                std::process::exit(2);
            }
        }
    });
    let config = ServerConfig {
        workers,
        queue_depth: 0,
        allow_fs_commands: args.iter().any(|a| a == "--allow-fs"),
        admin: args.iter().any(|a| a == "--admin"),
        session_ttl,
    };
    let server = match Server::bind(addr, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    let local = server.local_addr().expect("bound listener has an address");
    println!("listening on {local}");
    std::io::stdout().flush().ok();
    server.run();
}

/// `fairank connect <addr> [--session name]` — a remote REPL: each input
/// line becomes one wire request; structured replies render locally.
fn connect_mode(args: &[String]) {
    let Some(addr) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: fairank connect <host:port> [--session name]");
        std::process::exit(2);
    };
    let session = flag_value(args, "--session").unwrap_or(fairank_service::DEFAULT_SESSION);
    let stream = match TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    let stdin = std::io::stdin();
    println!("connected to {addr} (session {session:?}; type `help`, `quit` to leave)");
    loop {
        print!("fairank> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let request = Request::in_session(session, line);
        let payload = serde_json::to_string(&request).expect("request serializes");
        if writer
            .write_all(payload.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            eprintln!("connection lost");
            std::process::exit(1);
        }
        let mut reply_line = String::new();
        match reader.read_line(&mut reply_line) {
            Ok(0) => {
                eprintln!("server closed the connection");
                break;
            }
            Ok(_) => {}
            Err(e) => {
                eprintln!("connection error: {e}");
                std::process::exit(1);
            }
        }
        match serde_json::from_str::<Reply>(reply_line.trim()) {
            Ok(reply) => match reply.into_result() {
                Ok(Response::Quit) => break,
                Ok(response) => println!("{}", present::render(&response)),
                Err(e) => eprintln!("error: {}", e.message),
            },
            Err(e) => eprintln!("malformed reply: {e}"),
        }
    }
}
