//! `fairank` — the interactive front end over the FaiRank session engine.
//!
//! This binary is the reproduction's stand-in for the paper's web interface
//! (Figure 3): the same Configuration/General/Node interactions, driven by
//! the command language of `fairank_session::command`. Since the typed-API
//! redesign it is a thin renderer over `apply` — every mode runs commands
//! through the same structured [`Response`] layer the server ships as JSON.
//!
//! Modes:
//! * **REPL** (default): `fairank` and type `help`, or pipe a script.
//! * **Script**: `fairank script.frk` runs a command file (`#` comments).
//! * **Demo**: a `demo` argument preloads the paper's Table 1 dataset and
//!   scoring function as `table1` / `paper-f`.
//! * **Serve**: `fairank serve --addr 127.0.0.1:4915` exposes the
//!   multi-session JSON-lines server of `fairank-service`.
//! * **Connect**: `fairank connect 127.0.0.1:4915 [--session name]` is a
//!   remote REPL: commands go over the wire, structured replies render
//!   locally to the exact same text.
//!
//! ```text
//! printf 'generate pop biased\ndefine f rating*1.0\nquantify pop f\n' | fairank
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use fairank_service::{Frame, Request, Server, ServerConfig};
use fairank_session::command::{apply, Command};
use fairank_session::{present, Response, Session};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => return serve_mode(&args[1..]),
        Some("connect") => return connect_mode(&args[1..]),
        _ => {}
    }

    let mut session = Session::new();
    if args.iter().any(|a| a == "demo") {
        session
            .add_dataset("table1", fairank_data::paper::table1_dataset())
            .expect("fresh session");
        session
            .add_function("paper-f", fairank_data::paper::table1_scoring())
            .expect("fresh session");
        println!("demo mode: dataset `table1` and function `paper-f` preloaded");
    }

    // Script mode: any non-"demo" argument is a command file, executed
    // line by line (lines starting with `#` are comments).
    let scripts: Vec<&String> = args.iter().filter(|a| *a != "demo").collect();
    if !scripts.is_empty() {
        for path in scripts {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read script {path}: {e}");
                    std::process::exit(1);
                }
            };
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                println!("fairank> {line}");
                match Command::parse(line).and_then(|c| apply(&mut session, c)) {
                    Ok(Response::Quit) => return,
                    Ok(response) => println!("{}", present::render(&response)),
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        return;
    }

    let stdin = std::io::stdin();
    println!("FaiRank — fairness of ranking explorer (type `help`)");
    loop {
        print!("fairank> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match Command::parse(line).and_then(|c| apply(&mut session, c)) {
            Ok(Response::Quit) => break,
            Ok(response) => println!("{}", present::render(&response)),
            Err(e) => eprintln!("error: {e}"),
        }
    }
}

/// Reads the value following `--<key>` in an argument list.
fn flag_value<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parses a duration flag value: `50ms`, `2s`, or a bare number of
/// milliseconds (`250`).
fn parse_duration(raw: &str) -> Option<std::time::Duration> {
    if let Some(ms) = raw.strip_suffix("ms") {
        ms.trim().parse::<u64>().ok().map(std::time::Duration::from_millis)
    } else if let Some(secs) = raw.strip_suffix('s') {
        secs.trim().parse::<u64>().ok().map(std::time::Duration::from_secs)
    } else {
        raw.parse::<u64>().ok().map(std::time::Duration::from_millis)
    }
}

const SERVE_USAGE: &str = "usage: fairank serve [--addr host:port] [--workers n] \
[--queue-depth n] [--session-cap n] [--session-queue-cap n] [--dispatchers n] \
[--cell-cache-cap n] [--request-timeout dur] [--session-ttl secs] [--allow-fs] \
[--admin] [--threaded]

  --addr host:port     bind address (default 127.0.0.1:4915; port 0 = ephemeral)
  --workers n          worker threads for compute requests (default: host cores - 1)
  --queue-depth n      pending compute jobs held before new ones are refused
                       with the structured `overloaded` error (default: 2x workers)
  --session-cap n      max in-flight compute requests per session; extras are
                       refused with `overloaded` (default: unlimited)
  --session-queue-cap n  pending jobs one session may hold in the fair queues
                       (dispatch + worker pool) before refusal with `overloaded`;
                       bounds how far one session can crowd the backlog
                       (default: unlimited per session)
  --dispatchers n      event-loop dispatcher threads — requests concurrently in
                       dispatch (default: workers + 2; ignored with --threaded)
  --cell-cache-cap n   entries the shared scenario-cell cache holds before LRU
                       eviction (default: 4096; 0 = disabled)
  --request-timeout d  per-request compute deadline, e.g. 500ms or 2s (bare
                       number = milliseconds); expired requests return the
                       structured `deadline_exceeded` error with partial stats
  --session-ttl secs   evict sessions idle longer than this
  --allow-fs           permit load/save/open/export/scenario-file from the wire
  --admin              permit registry admin (sessions/evict) from the wire
  --threaded           serve with the legacy thread-per-connection loop instead
                       of the default event loop (wire-identical; kept as the
                       comparison baseline)";

/// `fairank serve` — the multi-session JSON-lines server. `--addr` with
/// port 0 picks an ephemeral port; the actual address is printed as
/// `listening on <addr>`. See [`SERVE_USAGE`] for the operational-limit
/// flags (`--queue-depth`, `--session-cap`, `--request-timeout`) and the
/// structured errors they map to.
fn serve_mode(args: &[String]) {
    if args.iter().any(|a| a == "--help") {
        println!("{SERVE_USAGE}");
        return;
    }
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:4915");
    let parse_count = |flag: &str| -> usize {
        flag_value(args, flag)
            .map(|raw| match raw.parse::<usize>() {
                Ok(n) => n,
                Err(_) => {
                    eprintln!("{flag} must be a number, got {raw:?}");
                    std::process::exit(2);
                }
            })
            .unwrap_or(0)
    };
    let workers = parse_count("--workers");
    let queue_depth = parse_count("--queue-depth");
    let session_inflight_cap = parse_count("--session-cap");
    // Unlike the counts above, 0 here is a meaningful value (cache off),
    // so the default applies only when the flag is absent.
    let cell_cache_cap = flag_value(args, "--cell-cache-cap")
        .map(|raw| match raw.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--cell-cache-cap must be a number, got {raw:?}");
                std::process::exit(2);
            }
        })
        .unwrap_or(fairank_session::CellCache::DEFAULT_CAP);
    let request_timeout = flag_value(args, "--request-timeout").map(|raw| {
        match parse_duration(raw) {
            Some(d) if !d.is_zero() => d,
            _ => {
                eprintln!(
                    "--request-timeout must be a duration like 500ms or 2s, got {raw:?}"
                );
                std::process::exit(2);
            }
        }
    });
    let session_ttl = flag_value(args, "--session-ttl").map(|raw| {
        match raw.parse::<u64>() {
            Ok(secs) if secs > 0 => std::time::Duration::from_secs(secs),
            _ => {
                eprintln!("--session-ttl must be a positive number of seconds, got {raw:?}");
                std::process::exit(2);
            }
        }
    });
    let config = ServerConfig {
        workers,
        queue_depth,
        allow_fs_commands: args.iter().any(|a| a == "--allow-fs"),
        admin: args.iter().any(|a| a == "--admin"),
        session_ttl,
        request_timeout,
        session_inflight_cap,
        cell_cache_cap,
        threaded: args.iter().any(|a| a == "--threaded"),
        session_queue_cap: parse_count("--session-queue-cap"),
        dispatchers: parse_count("--dispatchers"),
    };
    let server = match Server::bind(addr, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    let local = server.local_addr().expect("bound listener has an address");
    println!("listening on {local}");
    std::io::stdout().flush().ok();
    server.run();
}

const CONNECT_USAGE: &str = "usage: fairank connect <host:port> [--session name] \
[--retries n] [--stream]

  --session name   session to attach to (default \"default\")
  --retries n      bounded retries on the server's `overloaded` refusal,
                   with exponential backoff + jitter, honoring the reply's
                   retry_after_ms hint (default 5; 0 disables retrying)
  --stream         request chunked scenario replies: each plan cell's stats
                   render the moment the cell finishes, ahead of the final
                   report (non-scenario commands are unaffected)";

/// How many times connect mode re-sends a request refused with
/// `overloaded` before surfacing the error.
const DEFAULT_CONNECT_RETRIES: u32 = 5;

/// The backoff before retry attempt `attempt` (0-based): the server's
/// `retry_after_ms` hint (or 50 ms) doubled per attempt, capped at 2 s,
/// plus up to 50% uniform jitter so synchronized clients don't re-stampede
/// the queue in lockstep.
fn retry_backoff(
    attempt: u32,
    hint_ms: Option<u64>,
    rng: &mut rand::rngs::StdRng,
) -> std::time::Duration {
    use rand::Rng;
    let base = hint_ms.unwrap_or(50).max(1);
    let scaled = base.saturating_mul(1u64 << attempt.min(16)).min(2_000);
    let jitter = rng.gen_range(0..=scaled / 2);
    std::time::Duration::from_millis(scaled + jitter)
}

/// One line of streamed scenario progress: the cell's label, measured
/// unfairness (when the cell quantifies), and wall-clock.
fn render_chunk(stat: &fairank_session::CellStat) -> String {
    match stat.unfairness {
        Some(u) => format!(
            "  … {} — unfairness {:.4} ({} µs)",
            stat.label, u, stat.elapsed_us
        ),
        None => format!("  … {} ({} µs)", stat.label, stat.elapsed_us),
    }
}

/// `fairank connect <addr> [--session name] [--retries n] [--stream]` — a
/// remote REPL: each input line becomes one wire request; structured
/// replies render locally. Transient `overloaded` refusals are retried
/// with exponential backoff + jitter (bounded; see `--retries`). Under
/// `--stream`, scenario requests opt into chunked replies and each cell's
/// stats render as the server finishes it.
fn connect_mode(args: &[String]) {
    if args.iter().any(|a| a == "--help") {
        println!("{CONNECT_USAGE}");
        return;
    }
    let Some(addr) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("{CONNECT_USAGE}");
        std::process::exit(2);
    };
    let session = flag_value(args, "--session").unwrap_or(fairank_service::DEFAULT_SESSION);
    let stream_replies = args.iter().any(|a| a == "--stream");
    let retries = flag_value(args, "--retries")
        .map(|raw| match raw.parse::<u32>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("--retries must be a number, got {raw:?}");
                std::process::exit(2);
            }
        })
        .unwrap_or(DEFAULT_CONNECT_RETRIES);
    let stream = match TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    let stdin = std::io::stdin();
    // Jitter source for retry backoff: seeded from the wall clock so
    // concurrent clients desynchronize (determinism is worthless here —
    // lockstep retries are exactly the failure mode jitter prevents).
    let clock_seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5eed)
        ^ u64::from(std::process::id());
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(clock_seed);
    println!("connected to {addr} (session {session:?}; type `help`, `quit` to leave)");
    'repl: loop {
        print!("fairank> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut request = Request::in_session(session, line);
        if stream_replies {
            request = request.with_stream();
        }
        let payload = serde_json::to_string(&request).expect("request serializes");
        let mut attempt: u32 = 0;
        'attempt: loop {
            if writer
                .write_all(payload.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush())
                .is_err()
            {
                eprintln!("connection lost");
                std::process::exit(1);
            }
            // One request can produce many frames: any number of
            // mid-stream `{"chunk": ..}` lines, then the terminal reply.
            loop {
                let mut reply_line = String::new();
                match reader.read_line(&mut reply_line) {
                    Ok(0) => {
                        eprintln!("server closed the connection");
                        break 'repl;
                    }
                    Ok(_) => {}
                    Err(e) => {
                        eprintln!("connection error: {e}");
                        std::process::exit(1);
                    }
                }
                let reply = match serde_json::from_str::<Frame>(reply_line.trim()) {
                    Ok(Frame::chunk(stat)) => {
                        println!("{}", render_chunk(&stat));
                        continue;
                    }
                    Ok(frame) => frame.into_reply().expect("non-chunk frames are terminal"),
                    Err(e) => {
                        eprintln!("malformed reply: {e}");
                        break 'attempt;
                    }
                };
                match reply.into_result() {
                    Ok(Response::Quit) => break 'repl,
                    Ok(response) => println!("{}", present::render(&response)),
                    // Transient refusal: the server is at capacity. Back
                    // off (honoring its retry_after_ms hint) and re-send
                    // the same request, a bounded number of times.
                    Err(e) if e.kind == "overloaded" && attempt < retries => {
                        let pause = retry_backoff(attempt, e.retry_after_ms, &mut rng);
                        attempt += 1;
                        eprintln!(
                            "server overloaded; retry {attempt}/{retries} in {} ms",
                            pause.as_millis()
                        );
                        std::thread::sleep(pause);
                        continue 'attempt;
                    }
                    Err(e) => eprintln!("error: {}", e.message),
                }
                break 'attempt;
            }
        }
    }
}
