//! `fairank` — the interactive REPL over the FaiRank session engine.
//!
//! This binary is the reproduction's stand-in for the paper's web interface
//! (Figure 3): the same Configuration/General/Node interactions, driven by
//! the command language of `fairank_session::command`.
//!
//! Run `fairank` and type `help`, or pipe a script:
//! ```text
//! printf 'generate pop biased\ndefine f rating*1.0\nquantify pop f\n' | fairank
//! ```
//! A `demo` argument preloads the paper's Table 1 dataset and scoring
//! function under the names `table1` / `paper-f`.

use std::io::{BufRead, Write};

use fairank_session::command::{execute, Command};
use fairank_session::Session;

fn main() {
    let mut session = Session::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "demo") {
        session
            .add_dataset("table1", fairank_data::paper::table1_dataset())
            .expect("fresh session");
        session
            .add_function("paper-f", fairank_data::paper::table1_scoring())
            .expect("fresh session");
        println!("demo mode: dataset `table1` and function `paper-f` preloaded");
    }

    // Script mode: any non-"demo" argument is a command file, executed
    // line by line (lines starting with `#` are comments).
    let scripts: Vec<&String> = args.iter().filter(|a| *a != "demo").collect();
    if !scripts.is_empty() {
        for path in scripts {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read script {path}: {e}");
                    std::process::exit(1);
                }
            };
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                println!("fairank> {line}");
                match Command::parse(line).and_then(|c| execute(&mut session, c)) {
                    Ok(out) if out == "quit" => return,
                    Ok(out) => println!("{out}"),
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        return;
    }

    let stdin = std::io::stdin();
    println!("FaiRank — fairness of ranking explorer (type `help`)");
    loop {
        print!("fairank> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match Command::parse(line).and_then(|c| execute(&mut session, c)) {
            Ok(out) if out == "quit" => break,
            Ok(out) => println!("{out}"),
            Err(e) => eprintln!("error: {e}"),
        }
    }
}
