//! End-to-end smoke test of `fairank serve`: spawn the real binary on an
//! ephemeral port, drive a scripted quantification over TCP, and assert
//! the reply is structured (parsed from the wire envelope, not scraped
//! from rendered text).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

use fairank_service::{Reply, Request};
use fairank_session::Response;

struct ServeGuard(Child);

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns `fairank serve --addr 127.0.0.1:0` and returns the child plus
/// the actual address parsed from its `listening on <addr>` banner.
fn spawn_server() -> (ServeGuard, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fairank"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut banner = String::new();
    BufReader::new(stdout)
        .read_line(&mut banner)
        .expect("read banner");
    let addr = banner
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();
    (ServeGuard(child), addr)
}

fn roundtrip(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request: &Request,
) -> Reply {
    let line = serde_json::to_string(request).expect("serialize request");
    writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .expect("send request");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read reply");
    serde_json::from_str(reply.trim()).expect("reply parses")
}

#[test]
fn serve_mode_answers_scripted_quantify_with_structured_response() {
    let (_guard, addr) = spawn_server();
    let stream = TcpStream::connect(&addr).expect("connect to served port");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;

    for setup in [
        "generate pop biased n=100 seed=11",
        "define f rating*0.7+language_test*0.3",
    ] {
        let reply = roundtrip(&mut reader, &mut writer, &Request::in_session("smoke", setup));
        assert!(reply.is_ok(), "{setup:?} failed: {reply:?}");
    }

    let reply = roundtrip(
        &mut reader,
        &mut writer,
        &Request::in_session("smoke", "quantify pop f bins=8"),
    );
    match reply.into_result().expect("quantify succeeds") {
        Response::PanelCreated(view) => {
            assert_eq!(view.id, 0);
            assert!(view.unfairness > 0.0);
            assert!(view.num_partitions >= 1);
            assert_eq!(view.individuals, 100);
            // The tree came through as data: every leaf histogram has the
            // requested number of bins.
            assert!(view
                .nodes
                .iter()
                .filter(|n| n.is_leaf)
                .all(|n| n.histogram.len() == 8));
        }
        other => panic!("expected PanelCreated, got {other:?}"),
    }

    // Errors are structured too.
    let reply = roundtrip(
        &mut reader,
        &mut writer,
        &Request::in_session("smoke", "show 9"),
    );
    assert_eq!(reply.into_result().unwrap_err().kind, "unknown_panel");
}

#[test]
fn connect_mode_renders_the_classic_transcript() {
    let (_guard, addr) = spawn_server();
    let mut client = Command::new(env!("CARGO_BIN_EXE_fairank"))
        .args(["connect", &addr, "--session", "remote"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("client spawns");
    client
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(
            b"generate pop biased n=80 seed=4\n\
              define f rating*1.0\n\
              quantify pop f\n\
              node 0 0\n\
              quit\n",
        )
        .expect("write stdin");
    let output = client.wait_with_output().expect("client exits");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    // The remote transcript is the same text the local REPL prints.
    assert!(stdout.contains("generated pop = biased(n=80, seed=4)"));
    assert!(stdout.contains("panel #0"));
    assert!(stdout.contains("Node [0] ALL"));
}

#[test]
fn serve_mode_rejects_bad_flags() {
    let output = Command::new(env!("CARGO_BIN_EXE_fairank"))
        .args(["serve", "--workers", "many"])
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("--workers"));
}

#[test]
fn serve_mode_rejects_bad_request_timeouts() {
    for bad in ["soon", "0ms", "-5s"] {
        let output = Command::new(env!("CARGO_BIN_EXE_fairank"))
            .args(["serve", "--request-timeout", bad])
            .output()
            .expect("binary runs");
        assert!(!output.status.success(), "timeout {bad:?} must be rejected");
        assert!(
            String::from_utf8_lossy(&output.stderr).contains("--request-timeout"),
            "stderr names the bad flag for {bad:?}"
        );
    }
}

#[test]
fn help_documents_the_operational_flags() {
    let serve = Command::new(env!("CARGO_BIN_EXE_fairank"))
        .args(["serve", "--help"])
        .output()
        .expect("binary runs");
    assert!(serve.status.success());
    let text = String::from_utf8_lossy(&serve.stdout);
    for flag in ["--queue-depth", "--session-cap", "--request-timeout", "--session-ttl"] {
        assert!(text.contains(flag), "serve --help must document {flag}");
    }

    let connect = Command::new(env!("CARGO_BIN_EXE_fairank"))
        .args(["connect", "--help"])
        .output()
        .expect("binary runs");
    assert!(connect.status.success());
    let text = String::from_utf8_lossy(&connect.stdout);
    assert!(text.contains("--retries"), "connect --help must document --retries");
}

/// A quantify that outlives the configured deadline by a wide margin in
/// the profile the binary under test was built with: the transportation
/// EMD backend at a high bin count (seconds; the 1-D backends finish in
/// tens of milliseconds at any reasonable dataset size).
#[cfg(debug_assertions)]
const DEADLINE_N: usize = 1_500;
#[cfg(debug_assertions)]
const DEADLINE_BINS: usize = 32;
#[cfg(not(debug_assertions))]
const DEADLINE_N: usize = 4_000;
#[cfg(not(debug_assertions))]
const DEADLINE_BINS: usize = 64;

#[test]
fn served_request_timeout_produces_structured_deadline_replies() {
    // The real binary with a real deadline flag: an over-budget quantify
    // must come back as `deadline_exceeded` (with the partial counters),
    // and the connection must keep serving afterwards.
    let mut child = Command::new(env!("CARGO_BIN_EXE_fairank"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--request-timeout",
            "80ms",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut banner = String::new();
    BufReader::new(stdout)
        .read_line(&mut banner)
        .expect("read banner");
    let addr = banner
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();
    let _guard = ServeGuard(child);

    let stream = TcpStream::connect(&addr).expect("connect to served port");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    for setup in [
        format!("generate pop biased n={DEADLINE_N} seed=7"),
        "define f rating*0.7+language_test*0.3".to_string(),
    ] {
        let reply = roundtrip(&mut reader, &mut writer, &Request::in_session("d", &setup));
        assert!(reply.is_ok(), "{setup:?} failed: {reply:?}");
    }
    let reply = roundtrip(
        &mut reader,
        &mut writer,
        &Request::in_session(
            "d",
            format!("quantify pop f emd=transport bins={DEADLINE_BINS}"),
        ),
    );
    let err = reply.into_result().expect_err("deadline must trip");
    assert_eq!(err.kind, "deadline_exceeded");
    assert!(err.partial.is_some(), "deadline reply carries partial stats");

    // The worker is free again: a light command answers immediately.
    let reply = roundtrip(&mut reader, &mut writer, &Request::in_session("d", "help"));
    assert!(reply.is_ok(), "post-deadline request failed: {reply:?}");
}
