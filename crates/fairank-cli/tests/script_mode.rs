//! End-to-end tests of the `fairank` binary: script mode, demo mode, and
//! stdin-driven sessions, exercised through the real executable.

use std::io::Write;
use std::process::{Command, Stdio};

fn binary() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fairank"))
}

fn tmpfile(tag: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("fairank_cli_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("{tag}.frk"));
    std::fs::write(&path, content).expect("write script");
    path
}

#[test]
fn script_mode_runs_a_full_exploration() {
    let script = tmpfile(
        "full",
        "# comment lines are skipped\n\
         generate pop biased n=80 seed=4\n\
         define f rating*0.7+language_test*0.3\n\
         quantify pop f\n\
         panels\n\
         node 0 0\n\
         quit\n",
    );
    let output = binary().arg(script).output().expect("binary runs");
    assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("generated pop"));
    assert!(stdout.contains("panel #0"));
    assert!(stdout.contains("Node [0] ALL"));
}

#[test]
fn script_mode_fails_fast_on_errors() {
    let script = tmpfile("bad", "quantify ghost f\n");
    let output = binary().arg(script).output().expect("binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown"), "stderr: {stderr}");
}

#[test]
fn missing_script_file_errors() {
    let output = binary()
        .arg("/nonexistent/path.frk")
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("cannot read"));
}

#[test]
fn demo_mode_preloads_table1_over_stdin() {
    let mut child = binary()
        .arg("demo")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(b"datasets\nquantify table1 paper-f\nquit\n")
        .expect("write stdin");
    let output = child.wait_with_output().expect("binary exits");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("demo mode"));
    assert!(stdout.contains("table1  (10 rows"));
    assert!(stdout.contains("panel #0"));
}

#[test]
fn stdin_errors_do_not_kill_the_repl() {
    let mut child = binary()
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(b"bogus command\nhelp\nquit\n")
        .expect("write stdin");
    let output = child.wait_with_output().expect("binary exits");
    // Interactive mode: the error is printed but the session continues.
    assert!(output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("error"));
    assert!(String::from_utf8_lossy(&output.stdout).contains("FaiRank commands"));
}
