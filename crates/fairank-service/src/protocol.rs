//! The JSON-lines wire protocol.
//!
//! One request per line, one reply per line, newline-delimited JSON both
//! ways:
//!
//! ```text
//! → {"session": "audit-2024", "command": "quantify pop f bins=5"}
//! ← {"ok": {"PanelCreated": {"id": 0, "unfairness": 0.31, ...}}}
//! → {"session": "audit-2024", "command": "show 99"}
//! ← {"err": {"kind": "unknown_panel", "message": "unknown panel #99"}}
//! ```
//!
//! `command` is the *exact* REPL syntax (parsed by
//! [`fairank_session::Command::parse`]); `session` names the registry
//! entry to run against and may be omitted (the `"default"` session).
//! Successful replies carry the externally tagged
//! [`fairank_session::Response`] payload, so clients switch on the variant
//! name instead of scraping strings.
//!
//! ## Streaming scenario replies
//!
//! A scenario request may opt into chunked replies with `"stream": true`:
//!
//! ```text
//! → {"session": "a", "scenario": {..}, "stream": true}
//! ← {"chunk": {"label": "cell 0", "elapsed_us": 41, ...}}
//! ← {"chunk": {"label": "cell 1", "elapsed_us": 38, ...}}
//! ← {"ok": {"Scenario": {..final report..}}}
//! ```
//!
//! Each `{"chunk": CellStat}` line ships the moment its plan cell
//! finishes; the terminal line is the ordinary `ok`/`err` reply and is
//! byte-identical to what the same request returns without streaming.
//! Clients that never set `stream` never see a chunk line, so the
//! extension is opt-in and wire-compatible. [`Frame`] parses any reply
//! line — chunk or terminal — into one enum for streaming clients.

use fairank_session::{CellStat, ErrorResponse, Response, ScenarioSpec, SessionError};
use serde::{Deserialize, Serialize};

/// The session name used when a request does not specify one.
pub const DEFAULT_SESSION: &str = "default";

/// One wire request: a session name plus a REPL-syntax command line —
/// or, instead of the command string, a structured scenario spec
/// (`scenario`) so whole plans ship as one request without string
/// embedding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Target session; `None` means [`DEFAULT_SESSION`].
    pub session: Option<String>,
    /// One command in the exact REPL syntax. May be omitted entirely when
    /// `scenario` carries the request instead.
    pub command: Option<String>,
    /// A structured scenario plan to run; takes precedence over
    /// `command`.
    pub scenario: Option<ScenarioSpec>,
    /// Opt into chunked scenario replies: one `{"chunk": CellStat}` line
    /// per finished cell before the terminal `ok`/`err` line. Absent (the
    /// pre-streaming wire shape) and `null` both mean "no chunks".
    pub stream: Option<bool>,
}

impl Request {
    /// A request against the default session.
    pub fn new(command: impl Into<String>) -> Self {
        Request {
            session: None,
            command: Some(command.into()),
            scenario: None,
            stream: None,
        }
    }

    /// A request against a named session.
    pub fn in_session(session: impl Into<String>, command: impl Into<String>) -> Self {
        Request {
            session: Some(session.into()),
            command: Some(command.into()),
            scenario: None,
            stream: None,
        }
    }

    /// A structured scenario-plan request against a named session.
    pub fn scenario(session: impl Into<String>, spec: ScenarioSpec) -> Self {
        Request {
            session: Some(session.into()),
            command: None,
            scenario: Some(spec),
            stream: None,
        }
    }

    /// The same request with chunked scenario replies switched on.
    pub fn with_stream(mut self) -> Self {
        self.stream = Some(true);
        self
    }

    /// Whether the client asked for chunked scenario replies.
    pub fn wants_stream(&self) -> bool {
        self.stream == Some(true)
    }

    /// The effective session name.
    pub fn session_name(&self) -> &str {
        self.session.as_deref().unwrap_or(DEFAULT_SESSION)
    }

    /// The command text (empty when the request is scenario-only; an empty
    /// line parses to `help`).
    pub fn command_text(&self) -> &str {
        self.command.as_deref().unwrap_or("")
    }
}

/// One wire reply: `{"ok": Response}` or `{"err": {kind, message}}`.
///
/// The lowercase variant names are deliberate — serde's externally tagged
/// representation turns them directly into the protocol's `ok`/`err` keys
/// without any rename machinery.
#[allow(non_camel_case_types)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Reply {
    /// The command succeeded with this structured payload.
    ok(Response),
    /// The command failed; the payload is the structured error.
    err(ErrorResponse),
}

impl Reply {
    /// Wraps a session-API result into the wire envelope.
    pub fn from_result(result: Result<Response, SessionError>) -> Self {
        match result {
            Ok(response) => Reply::ok(response),
            Err(e) => Reply::err((&e).into()),
        }
    }

    /// A protocol-level failure (malformed request line, not a session
    /// error).
    pub fn protocol_error(message: impl Into<String>) -> Self {
        Reply::err(ErrorResponse::new("protocol", message))
    }

    /// The structured refusal for a request line exceeding the server's
    /// size cap. Sent once before the connection closes (the rest of the
    /// line cannot be resynchronized), so clients see *why* instead of a
    /// silent drop.
    pub fn request_too_large(limit: u64) -> Self {
        Reply::err(ErrorResponse::new(
            "request_too_large",
            format!(
                "request line exceeds the {limit}-byte cap; the connection will \
                 close (split the request or ship large plans as structured \
                 `scenario` specs)"
            ),
        ))
    }

    /// The transient admission refusal: every worker is busy and the
    /// pending queue (or the session's in-flight cap) is full. Carries a
    /// back-off hint so well-behaved clients retry instead of hammering.
    pub fn overloaded(message: impl Into<String>, retry_after_ms: u64) -> Self {
        let mut err = ErrorResponse::new("overloaded", message);
        err.retry_after_ms = Some(retry_after_ms);
        Reply::err(err)
    }

    /// The refusal a draining server sends for work it will not start.
    pub fn shutting_down() -> Self {
        Reply::err(ErrorResponse::new(
            "shutting_down",
            "server is shutting down and no longer accepts new work",
        ))
    }

    /// The structured report that a session's state was discarded because
    /// a panic poisoned it; the name now maps to a fresh session.
    pub fn session_poisoned(session: &str) -> Self {
        Reply::err(ErrorResponse::new(
            "session_poisoned",
            format!(
                "session {session:?} was poisoned by a panicking command and has \
                 been replaced with a fresh session; re-run your setup commands"
            ),
        ))
    }

    /// Unwraps the envelope into a plain `Result`.
    ///
    /// `ErrorResponse` carries the partial `SearchStats` of a cancelled
    /// search inline, so the `Err` variant is wide; this is a
    /// client-side convenience called once per reply, not a hot path.
    #[allow(clippy::result_large_err)]
    pub fn into_result(self) -> Result<Response, ErrorResponse> {
        match self {
            Reply::ok(response) => Ok(response),
            Reply::err(e) => Err(e),
        }
    }

    /// Whether the reply is a success.
    pub fn is_ok(&self) -> bool {
        matches!(self, Reply::ok(_))
    }
}

/// Any single reply line of a streamed exchange: a mid-stream
/// `{"chunk": CellStat}` progress line or the terminal `ok`/`err` reply.
///
/// Non-streamed exchanges only ever produce the terminal variants, so a
/// client can parse every server line as a `Frame` regardless of whether
/// it requested streaming. As with [`Reply`], the lowercase variant names
/// map straight onto the wire keys through serde's externally tagged
/// representation.
#[allow(non_camel_case_types)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Frame {
    /// One finished plan cell's statistics, shipped mid-stream.
    chunk(CellStat),
    /// The terminal success reply.
    ok(Response),
    /// The terminal failure reply.
    err(ErrorResponse),
}

impl Frame {
    /// Wraps a terminal [`Reply`] as a frame.
    pub fn from_reply(reply: Reply) -> Self {
        match reply {
            Reply::ok(response) => Frame::ok(response),
            Reply::err(e) => Frame::err(e),
        }
    }

    /// The terminal reply, if this frame is one (`None` for chunks).
    pub fn into_reply(self) -> Option<Reply> {
        match self {
            Frame::chunk(_) => None,
            Frame::ok(response) => Some(Reply::ok(response)),
            Frame::err(e) => Some(Reply::err(e)),
        }
    }

    /// Whether this frame is a mid-stream chunk (more lines follow).
    pub fn is_chunk(&self) -> bool {
        matches!(self, Frame::chunk(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_with_and_without_session() {
        let named = Request::in_session("s1", "help");
        let json = serde_json::to_string(&named).unwrap();
        assert!(json.contains("\"session\""));
        assert!(json.contains("\"command\""));
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(named, back);
        assert_eq!(back.session_name(), "s1");

        let default = Request::new("datasets");
        let back: Request = serde_json::from_str(&serde_json::to_string(&default).unwrap()).unwrap();
        assert_eq!(back.session_name(), DEFAULT_SESSION);
    }

    #[test]
    fn request_parses_without_session_field() {
        // A request whose JSON omits `session` entirely (not just null).
        let back: Request = serde_json::from_str(r#"{"command": "help"}"#).unwrap();
        assert_eq!(back.session, None);
        assert_eq!(back.command_text(), "help");
    }

    #[test]
    fn requests_without_a_stream_field_parse_and_do_not_stream() {
        // Byte compatibility: every pre-streaming request shape (no
        // `stream` key at all) still parses, and means "no chunks".
        let back: Request = serde_json::from_str(r#"{"command": "help"}"#).unwrap();
        assert_eq!(back.stream, None);
        assert!(!back.wants_stream());
        // Explicit false and null also mean no streaming.
        let back: Request =
            serde_json::from_str(r#"{"command": "help", "stream": false}"#).unwrap();
        assert!(!back.wants_stream());
        let back: Request =
            serde_json::from_str(r#"{"command": "help", "stream": null}"#).unwrap();
        assert!(!back.wants_stream());
        // The builder arms it and it round-trips.
        let request = Request::new("help").with_stream();
        assert!(request.wants_stream());
        let round: Request =
            serde_json::from_str(&serde_json::to_string(&request).unwrap()).unwrap();
        assert!(round.wants_stream());
    }

    #[test]
    fn chunk_frames_round_trip_and_terminal_frames_match_replies() {
        let stat = CellStat {
            label: "grid pop×f".into(),
            ..Default::default()
        };
        let frame = Frame::chunk(stat.clone());
        let json = serde_json::to_string(&frame).unwrap();
        assert!(json.starts_with(r#"{"chunk":"#), "{json}");
        let back: Frame = serde_json::from_str(&json).unwrap();
        assert!(back.is_chunk());
        assert_eq!(back, frame);
        assert_eq!(back.into_reply(), None, "chunks are not terminal");

        // Every plain Reply line parses as a terminal Frame too, so a
        // streaming client can read both streamed and unstreamed servers.
        for reply in [
            Reply::ok(Response::Help),
            Reply::session_poisoned("audit-1"),
        ] {
            let json = serde_json::to_string(&reply).unwrap();
            let frame: Frame = serde_json::from_str(&json).unwrap();
            assert!(!frame.is_chunk());
            assert_eq!(frame.clone().into_reply(), Some(reply.clone()));
            assert_eq!(Frame::from_reply(reply), frame);
        }
    }

    #[test]
    fn scenario_only_requests_parse_without_a_command_field() {
        // The documented structured form: no "command" key at all.
        let json = r#"{"session": "audit-1", "scenario": {"perspective":
            {"Grid": {"datasets": ["pop"], "functions": ["f"], "filter": null}},
            "strategy": null, "criteria": null}}"#;
        let back: Request = serde_json::from_str(json).unwrap();
        assert_eq!(back.session_name(), "audit-1");
        assert_eq!(back.command, None);
        assert_eq!(back.command_text(), "");
        assert!(back.scenario.is_some());
        // The constructor produces the same shape and round-trips.
        let spec = back.scenario.clone().unwrap();
        let request = Request::scenario("audit-1", spec);
        let round: Request =
            serde_json::from_str(&serde_json::to_string(&request).unwrap()).unwrap();
        assert_eq!(request, round);
    }

    #[test]
    fn request_too_large_reply_is_structured() {
        let reply = Reply::request_too_large(1 << 20);
        let err = reply.into_result().unwrap_err();
        assert_eq!(err.kind, "request_too_large");
        assert!(err.message.contains("1048576"));
    }

    #[test]
    fn reply_envelope_uses_ok_and_err_keys() {
        let ok = Reply::ok(Response::Help);
        let json = serde_json::to_string(&ok).unwrap();
        assert!(json.starts_with(r#"{"ok":"#), "{json}");
        let back: Reply = serde_json::from_str(&json).unwrap();
        assert_eq!(ok, back);
        assert!(back.is_ok());

        let err = Reply::from_result(Err(SessionError::UnknownPanel(3)));
        let json = serde_json::to_string(&err).unwrap();
        assert!(json.starts_with(r#"{"err":"#), "{json}");
        assert!(json.contains("unknown_panel"));
        let back: Reply = serde_json::from_str(&json).unwrap();
        assert_eq!(back.into_result().unwrap_err().kind, "unknown_panel");
    }

    #[test]
    fn operational_error_kinds_are_stable_and_round_trip() {
        // The four operational kinds clients are expected to switch on.
        // Their spellings are wire contract: changing one breaks deployed
        // retry/back-off logic.
        let deadline = Reply::from_result(Err(SessionError::Cancelled {
            reason: fairank_core::cancel::CancelReason::Deadline,
            stats: fairank_core::quantify::SearchStats {
                nodes_evaluated: 3,
                emd_calls: 17,
                ..Default::default()
            },
        }));
        let cases: Vec<(Reply, &str)> = vec![
            (deadline, "deadline_exceeded"),
            (Reply::overloaded("server is at capacity", 100), "overloaded"),
            (Reply::shutting_down(), "shutting_down"),
            (Reply::session_poisoned("audit-1"), "session_poisoned"),
        ];
        for (reply, kind) in cases {
            let json = serde_json::to_string(&reply).unwrap();
            let back: Reply = serde_json::from_str(&json).unwrap();
            assert_eq!(back, reply, "{kind} must round-trip");
            let err = back.into_result().unwrap_err();
            assert_eq!(err.kind, kind);
        }
    }

    #[test]
    fn deadline_exceeded_reply_carries_partial_stats() {
        let reply = Reply::from_result(Err(SessionError::Cancelled {
            reason: fairank_core::cancel::CancelReason::Deadline,
            stats: fairank_core::quantify::SearchStats {
                nodes_evaluated: 5,
                splits_performed: 2,
                emd_calls: 90,
                ..Default::default()
            },
        }));
        let err = reply.into_result().unwrap_err();
        let partial = err.partial.expect("cancellation carries partial stats");
        assert_eq!(partial.nodes_evaluated, 5);
        assert_eq!(partial.emd_calls, 90);
    }

    #[test]
    fn overloaded_reply_hints_at_retry() {
        let err = Reply::overloaded("busy", 250).into_result().unwrap_err();
        assert_eq!(err.kind, "overloaded");
        assert_eq!(err.retry_after_ms, Some(250));
        // Old clients that only know {kind, message} still parse the new
        // reply (extra keys), and new clients parse old-format replies
        // (missing optionals default to None) — asserted in the session
        // crate's wire tests; here we pin the hint's presence on the wire.
        let json = serde_json::to_string(&Reply::overloaded("busy", 250)).unwrap();
        assert!(json.contains("\"retry_after_ms\":250"), "{json}");
    }

    #[test]
    fn protocol_errors_are_tagged() {
        let reply = Reply::protocol_error("not json");
        match reply.into_result() {
            Err(e) => {
                assert_eq!(e.kind, "protocol");
                assert!(e.message.contains("not json"));
            }
            Ok(_) => panic!("expected err"),
        }
    }
}
