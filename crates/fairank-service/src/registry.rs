//! The concurrent session store.
//!
//! Sessions are named; every name maps to one `Arc<Mutex<Session>>`. The
//! outer `RwLock<HashMap<..>>` is only held long enough to resolve a name
//! to its handle (or to create/evict an entry), so resolving sessions
//! never blocks behind a running quantification; the per-session `Mutex`
//! serializes commands *within* one session, which is exactly the REPL's
//! consistency model — concurrent clients attached to the same session
//! behave like one user typing fast.
//!
//! Every entry tracks when it was last attached, so long-running servers
//! can expire idle sessions ([`SessionRegistry::evict_idle`], surfaced as
//! `serve --session-ttl`).

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use fairank_session::Session;

/// Errors of the registry itself (distinct from session errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// `create` on a name that already exists.
    AlreadyExists(String),
    /// `attach`/`evict` on a name that does not exist.
    NotFound(String),
    /// A session mutex was poisoned by a panicking holder.
    Poisoned,
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::AlreadyExists(name) => {
                write!(f, "session {name:?} already exists")
            }
            RegistryError::NotFound(name) => write!(f, "no session named {name:?}"),
            RegistryError::Poisoned => write!(f, "session state poisoned by a panic"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// A shared handle to one live session.
pub type SessionHandle = Arc<Mutex<Session>>;

/// One registry entry: the session handle plus its last-attach time.
#[derive(Debug)]
struct Entry {
    handle: SessionHandle,
    last_used: Mutex<Instant>,
}

impl Entry {
    fn new() -> Arc<Entry> {
        Arc::new(Entry {
            handle: Arc::new(Mutex::new(Session::new())),
            last_used: Mutex::new(Instant::now()),
        })
    }

    fn touch(&self) {
        *self
            .last_used
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Instant::now();
    }

    fn idle_for(&self) -> Duration {
        self.last_used
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .elapsed()
    }
}

/// The concurrent multi-session store.
#[derive(Debug, Default)]
pub struct SessionRegistry {
    sessions: RwLock<HashMap<String, Arc<Entry>>>,
}

impl SessionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SessionRegistry::default()
    }

    /// Creates a fresh named session. Fails if the name is taken.
    pub fn create(&self, name: &str) -> Result<SessionHandle, RegistryError> {
        let mut sessions = self.sessions.write().expect("registry lock");
        if sessions.contains_key(name) {
            return Err(RegistryError::AlreadyExists(name.to_string()));
        }
        let entry = Entry::new();
        let handle = Arc::clone(&entry.handle);
        sessions.insert(name.to_string(), entry);
        Ok(handle)
    }

    /// A handle to an existing named session. Attaching marks the session
    /// as used (it will not be expired by [`SessionRegistry::evict_idle`]
    /// until a full idle window passes again).
    pub fn attach(&self, name: &str) -> Result<SessionHandle, RegistryError> {
        self.sessions
            .read()
            .expect("registry lock")
            .get(name)
            .map(|entry| {
                entry.touch();
                Arc::clone(&entry.handle)
            })
            .ok_or_else(|| RegistryError::NotFound(name.to_string()))
    }

    /// A handle to the named session, creating it on first use — the wire
    /// protocol's behavior: naming a session is enough to bring it up.
    pub fn attach_or_create(&self, name: &str) -> SessionHandle {
        if let Ok(handle) = self.attach(name) {
            return handle;
        }
        match self.create(name) {
            Ok(handle) => handle,
            // Lost a create race: the winner's session is the one to use.
            Err(_) => self.attach(name).expect("racing create inserted the session"),
        }
    }

    /// Removes a session from the registry. Clients still holding the
    /// handle keep a working (now anonymous) session; new attaches fail.
    pub fn evict(&self, name: &str) -> Result<(), RegistryError> {
        self.sessions
            .write()
            .expect("registry lock")
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| RegistryError::NotFound(name.to_string()))
    }

    /// Evicts every session not attached for at least `ttl`, returning the
    /// evicted names sorted. As with [`SessionRegistry::evict`], clients
    /// still holding a handle keep a working session — eviction only
    /// forgets the name. A session executing a long command counts as idle
    /// from its last *attach*; servers sweep between requests, so this
    /// only matters for TTLs shorter than a single command.
    pub fn evict_idle(&self, ttl: Duration) -> Vec<String> {
        let mut sessions = self.sessions.write().expect("registry lock");
        let mut evicted: Vec<String> = sessions
            .iter()
            .filter(|(_, entry)| entry.idle_for() >= ttl)
            .map(|(name, _)| name.clone())
            .collect();
        for name in &evicted {
            sessions.remove(name);
        }
        evicted.sort();
        evicted
    }

    /// Names of all live sessions, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .sessions
            .read()
            .expect("registry lock")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.read().expect("registry lock").len()
    }

    /// Whether no session is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairank_session::command::{apply, Command};
    use fairank_session::Response;

    #[test]
    fn create_attach_evict_lifecycle() {
        let registry = SessionRegistry::new();
        assert!(registry.is_empty());
        registry.create("a").unwrap();
        assert_eq!(registry.create("a").unwrap_err(), RegistryError::AlreadyExists("a".into()));
        assert!(registry.attach("a").is_ok());
        assert_eq!(
            registry.attach("ghost").unwrap_err(),
            RegistryError::NotFound("ghost".into())
        );
        registry.create("b").unwrap();
        assert_eq!(registry.names(), vec!["a", "b"]);
        registry.evict("a").unwrap();
        assert_eq!(registry.evict("a").unwrap_err(), RegistryError::NotFound("a".into()));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn attach_or_create_is_idempotent() {
        let registry = SessionRegistry::new();
        let first = registry.attach_or_create("s");
        let second = registry.attach_or_create("s");
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn detached_handles_outlive_eviction() {
        let registry = SessionRegistry::new();
        let handle = registry.attach_or_create("s");
        {
            let mut session = handle.lock().unwrap();
            apply(
                &mut session,
                Command::parse("generate pop biased n=40 seed=1").unwrap(),
            )
            .unwrap();
        }
        registry.evict("s").unwrap();
        // The evicted session keeps working for existing holders.
        let session = handle.lock().unwrap();
        assert_eq!(session.dataset_names(), vec!["pop"]);
        drop(session);
        // A new attach under the same name is a *fresh* session.
        let fresh = registry.attach_or_create("s");
        assert!(fresh.lock().unwrap().dataset_names().is_empty());
    }

    #[test]
    fn sessions_are_isolated() {
        let registry = SessionRegistry::new();
        let a = registry.attach_or_create("a");
        let b = registry.attach_or_create("b");
        {
            let mut session = a.lock().unwrap();
            let response = apply(
                &mut session,
                Command::parse("generate pop biased n=40 seed=1").unwrap(),
            )
            .unwrap();
            assert!(matches!(response, Response::DatasetGenerated { .. }));
        }
        assert!(b.lock().unwrap().dataset_names().is_empty());
    }

    #[test]
    fn concurrent_attaches_share_one_session() {
        let registry = Arc::new(SessionRegistry::new());
        let mut handles = Vec::new();
        for i in 0..8 {
            let registry = Arc::clone(&registry);
            handles.push(std::thread::spawn(move || {
                let handle = registry.attach_or_create("shared");
                let mut session = handle.lock().unwrap();
                apply(
                    &mut session,
                    Command::parse(&format!("generate d{i} biased n=20 seed={i}")).unwrap(),
                )
                .unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(registry.len(), 1);
        let handle = registry.attach("shared").unwrap();
        let session = handle.lock().unwrap();
        assert_eq!(session.dataset_names().len(), 8);
    }

    #[test]
    fn evict_idle_expires_only_stale_sessions() {
        let registry = SessionRegistry::new();
        registry.attach_or_create("old");
        registry.attach_or_create("fresh");
        std::thread::sleep(Duration::from_millis(30));
        // Re-attaching refreshes the idle clock.
        registry.attach("fresh").unwrap();
        let evicted = registry.evict_idle(Duration::from_millis(25));
        assert_eq!(evicted, vec!["old"]);
        assert_eq!(registry.names(), vec!["fresh"]);
        // A zero TTL expires everything not attached in this instant.
        std::thread::sleep(Duration::from_millis(1));
        let evicted = registry.evict_idle(Duration::ZERO);
        assert_eq!(evicted, vec!["fresh"]);
        assert!(registry.is_empty());
        // Idempotent on an empty registry.
        assert!(registry.evict_idle(Duration::ZERO).is_empty());
    }
}
