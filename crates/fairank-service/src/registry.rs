//! The concurrent session store.
//!
//! Sessions are named; every name maps to one `Arc<Mutex<Session>>`. The
//! outer `RwLock<HashMap<..>>` is only held long enough to resolve a name
//! to its handle (or to create/evict an entry), so resolving sessions
//! never blocks behind a running quantification; the per-session `Mutex`
//! serializes commands *within* one session, which is exactly the REPL's
//! consistency model — concurrent clients attached to the same session
//! behave like one user typing fast.
//!
//! Every entry tracks when it was last attached, so long-running servers
//! can expire idle sessions ([`SessionRegistry::evict_idle`], surfaced as
//! `serve --session-ttl`).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use fairank_session::{CellCache, DatasetStore, Session};

/// Errors of the registry itself (distinct from session errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// `create` on a name that already exists.
    AlreadyExists(String),
    /// `attach`/`evict` on a name that does not exist.
    NotFound(String),
    /// A session mutex was poisoned by a panicking holder.
    Poisoned,
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::AlreadyExists(name) => {
                write!(f, "session {name:?} already exists")
            }
            RegistryError::NotFound(name) => write!(f, "no session named {name:?}"),
            RegistryError::Poisoned => write!(f, "session state poisoned by a panic"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// A shared handle to one live session.
pub type SessionHandle = Arc<Mutex<Session>>;

/// One registry entry: the session handle plus its last-attach time and
/// how many compute-class requests currently hold it.
#[derive(Debug)]
struct Entry {
    handle: SessionHandle,
    last_used: Mutex<Instant>,
    in_flight: AtomicUsize,
}

impl Entry {
    fn new(store: Arc<DatasetStore>) -> Arc<Entry> {
        Arc::new(Entry {
            handle: Arc::new(Mutex::new(Session::with_store(store))),
            last_used: Mutex::new(Instant::now()),
            in_flight: AtomicUsize::new(0),
        })
    }

    fn touch(&self) {
        *self
            .last_used
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Instant::now();
    }

    fn idle_for(&self) -> Duration {
        self.last_used
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .elapsed()
    }
}

/// An attached session: the handle plus the entry's request accounting.
/// Obtained from [`SessionRegistry::lease`]; holding a lease does NOT by
/// itself count as in-flight work — call [`SessionLease::try_admit`]
/// around compute-class requests.
#[derive(Debug, Clone)]
pub struct SessionLease {
    entry: Arc<Entry>,
}

impl SessionLease {
    /// The session behind the lease.
    pub fn handle(&self) -> &SessionHandle {
        &self.entry.handle
    }

    /// Whether a panic while holding the session lock has poisoned it.
    pub fn is_poisoned(&self) -> bool {
        self.entry.handle.is_poisoned()
    }

    /// Admits one compute-class request against the per-session cap
    /// (`cap == 0` means unlimited). Returns the guard that releases the
    /// slot on drop, or `None` when the session already has `cap`
    /// requests in flight — the caller replies `overloaded` instead of
    /// queueing unboundedly behind one session's mutex.
    pub fn try_admit(&self, cap: usize) -> Option<InFlightGuard> {
        let mut current = self.entry.in_flight.load(Ordering::Relaxed);
        loop {
            if cap != 0 && current >= cap {
                return None;
            }
            match self.entry.in_flight.compare_exchange(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(InFlightGuard {
                        entry: Arc::clone(&self.entry),
                    })
                }
                Err(seen) => current = seen,
            }
        }
    }

    /// Requests currently holding this session (compute-class only).
    pub fn in_flight(&self) -> usize {
        self.entry.in_flight.load(Ordering::Relaxed)
    }
}

/// Releases one in-flight slot on drop — taken before a compute request
/// starts, dropped when its reply is decided (including error and panic
/// paths, since the dispatch frame unwinds through it).
#[derive(Debug)]
pub struct InFlightGuard {
    entry: Arc<Entry>,
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.entry.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The concurrent multi-session store.
///
/// Every session created through the registry shares one
/// [`DatasetStore`] (identical datasets loaded into different sessions
/// are parsed once and held behind one allocation) and one [`CellCache`]
/// (a scenario-grid cell computed for any session is served from cache
/// to every later session asking for the same dataset × configuration).
#[derive(Debug)]
pub struct SessionRegistry {
    sessions: RwLock<HashMap<String, Arc<Entry>>>,
    store: Arc<DatasetStore>,
    cell_cache: Arc<CellCache>,
}

impl Default for SessionRegistry {
    fn default() -> Self {
        SessionRegistry::new()
    }
}

impl SessionRegistry {
    /// An empty registry with the default cell-cache capacity.
    pub fn new() -> Self {
        SessionRegistry::with_cell_cache_cap(CellCache::DEFAULT_CAP)
    }

    /// An empty registry whose shared cell cache holds at most `cap`
    /// entries (`0` disables caching entirely).
    pub fn with_cell_cache_cap(cap: usize) -> Self {
        SessionRegistry {
            sessions: RwLock::new(HashMap::new()),
            store: Arc::new(DatasetStore::new()),
            cell_cache: Arc::new(CellCache::new(cap)),
        }
    }

    /// The dataset store shared by every session in this registry.
    pub fn store(&self) -> &Arc<DatasetStore> {
        &self.store
    }

    /// The plan-cell cache shared by every session in this registry.
    pub fn cell_cache(&self) -> &Arc<CellCache> {
        &self.cell_cache
    }

    /// Creates a fresh named session. Fails if the name is taken.
    pub fn create(&self, name: &str) -> Result<SessionHandle, RegistryError> {
        let mut sessions = self.sessions.write().expect("registry lock");
        if sessions.contains_key(name) {
            return Err(RegistryError::AlreadyExists(name.to_string()));
        }
        let entry = Entry::new(Arc::clone(&self.store));
        let handle = Arc::clone(&entry.handle);
        sessions.insert(name.to_string(), entry);
        Ok(handle)
    }

    /// A handle to an existing named session. Attaching marks the session
    /// as used (it will not be expired by [`SessionRegistry::evict_idle`]
    /// until a full idle window passes again).
    pub fn attach(&self, name: &str) -> Result<SessionHandle, RegistryError> {
        self.sessions
            .read()
            .expect("registry lock")
            .get(name)
            .map(|entry| {
                entry.touch();
                Arc::clone(&entry.handle)
            })
            .ok_or_else(|| RegistryError::NotFound(name.to_string()))
    }

    /// A handle to the named session, creating it on first use — the wire
    /// protocol's behavior: naming a session is enough to bring it up.
    pub fn attach_or_create(&self, name: &str) -> SessionHandle {
        Arc::clone(self.lease(name).handle())
    }

    /// Like [`SessionRegistry::attach_or_create`], but returns the full
    /// [`SessionLease`] carrying the entry's in-flight accounting.
    pub fn lease(&self, name: &str) -> SessionLease {
        loop {
            if let Some(entry) = self
                .sessions
                .read()
                .expect("registry lock")
                .get(name)
                .map(Arc::clone)
            {
                entry.touch();
                return SessionLease { entry };
            }
            let mut sessions = self.sessions.write().expect("registry lock");
            // Racing creators: only insert if still absent, then loop back
            // through the read path so every caller shares one entry.
            sessions
                .entry(name.to_string())
                .or_insert_with(|| Entry::new(Arc::clone(&self.store)));
        }
    }

    /// Replaces a session whose mutex was poisoned by a panicking holder
    /// with a fresh, empty session under the same name. Returns `true`
    /// when a replacement happened; a healthy (or already-replaced) entry
    /// is left alone, so concurrent detectors of the same poisoning race
    /// benignly — the first one swaps, the rest see a healthy entry.
    pub fn replace_poisoned(&self, name: &str) -> bool {
        let mut sessions = self.sessions.write().expect("registry lock");
        match sessions.get(name) {
            Some(entry) if entry.handle.is_poisoned() => {
                sessions.insert(name.to_string(), Entry::new(Arc::clone(&self.store)));
                true
            }
            _ => false,
        }
    }

    /// Removes a session from the registry. Clients still holding the
    /// handle keep a working (now anonymous) session; new attaches fail.
    pub fn evict(&self, name: &str) -> Result<(), RegistryError> {
        self.sessions
            .write()
            .expect("registry lock")
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| RegistryError::NotFound(name.to_string()))
    }

    /// Evicts every session not attached for at least `ttl`, returning the
    /// evicted names sorted. As with [`SessionRegistry::evict`], clients
    /// still holding a handle keep a working session — eviction only
    /// forgets the name. A session with admitted in-flight requests is
    /// never evicted regardless of its attach clock: a long-running
    /// quantification must not have its name swept out from under it.
    pub fn evict_idle(&self, ttl: Duration) -> Vec<String> {
        let mut sessions = self.sessions.write().expect("registry lock");
        let mut evicted: Vec<String> = sessions
            .iter()
            .filter(|(_, entry)| {
                entry.in_flight.load(Ordering::Relaxed) == 0 && entry.idle_for() >= ttl
            })
            .map(|(name, _)| name.clone())
            .collect();
        for name in &evicted {
            sessions.remove(name);
        }
        evicted.sort();
        evicted
    }

    /// Names of all live sessions, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .sessions
            .read()
            .expect("registry lock")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.read().expect("registry lock").len()
    }

    /// Whether no session is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairank_session::command::{apply, Command};
    use fairank_session::Response;

    #[test]
    fn create_attach_evict_lifecycle() {
        let registry = SessionRegistry::new();
        assert!(registry.is_empty());
        registry.create("a").unwrap();
        assert_eq!(registry.create("a").unwrap_err(), RegistryError::AlreadyExists("a".into()));
        assert!(registry.attach("a").is_ok());
        assert_eq!(
            registry.attach("ghost").unwrap_err(),
            RegistryError::NotFound("ghost".into())
        );
        registry.create("b").unwrap();
        assert_eq!(registry.names(), vec!["a", "b"]);
        registry.evict("a").unwrap();
        assert_eq!(registry.evict("a").unwrap_err(), RegistryError::NotFound("a".into()));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn attach_or_create_is_idempotent() {
        let registry = SessionRegistry::new();
        let first = registry.attach_or_create("s");
        let second = registry.attach_or_create("s");
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn detached_handles_outlive_eviction() {
        let registry = SessionRegistry::new();
        let handle = registry.attach_or_create("s");
        {
            let mut session = handle.lock().unwrap();
            apply(
                &mut session,
                Command::parse("generate pop biased n=40 seed=1").unwrap(),
            )
            .unwrap();
        }
        registry.evict("s").unwrap();
        // The evicted session keeps working for existing holders.
        let session = handle.lock().unwrap();
        assert_eq!(session.dataset_names(), vec!["pop"]);
        drop(session);
        // A new attach under the same name is a *fresh* session.
        let fresh = registry.attach_or_create("s");
        assert!(fresh.lock().unwrap().dataset_names().is_empty());
    }

    #[test]
    fn sessions_are_isolated() {
        let registry = SessionRegistry::new();
        let a = registry.attach_or_create("a");
        let b = registry.attach_or_create("b");
        {
            let mut session = a.lock().unwrap();
            let response = apply(
                &mut session,
                Command::parse("generate pop biased n=40 seed=1").unwrap(),
            )
            .unwrap();
            assert!(matches!(response, Response::DatasetGenerated { .. }));
        }
        assert!(b.lock().unwrap().dataset_names().is_empty());
    }

    #[test]
    fn concurrent_attaches_share_one_session() {
        let registry = Arc::new(SessionRegistry::new());
        let mut handles = Vec::new();
        for i in 0..8 {
            let registry = Arc::clone(&registry);
            handles.push(std::thread::spawn(move || {
                let handle = registry.attach_or_create("shared");
                let mut session = handle.lock().unwrap();
                apply(
                    &mut session,
                    Command::parse(&format!("generate d{i} biased n=20 seed={i}")).unwrap(),
                )
                .unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(registry.len(), 1);
        let handle = registry.attach("shared").unwrap();
        let session = handle.lock().unwrap();
        assert_eq!(session.dataset_names().len(), 8);
    }

    #[test]
    fn admission_cap_bounds_in_flight_requests_per_session() {
        let registry = SessionRegistry::new();
        let lease = registry.lease("s");
        assert_eq!(lease.in_flight(), 0);
        let a = lease.try_admit(2).expect("first slot");
        let b = lease.try_admit(2).expect("second slot");
        // At the cap: further admissions are refused, including through a
        // separately obtained lease of the same entry.
        assert!(lease.try_admit(2).is_none());
        assert!(registry.lease("s").try_admit(2).is_none());
        assert_eq!(lease.in_flight(), 2);
        // Cap 0 means unlimited.
        let c = lease.try_admit(0).expect("uncapped");
        drop(c);
        // Releasing a slot re-opens admission.
        drop(a);
        let _a2 = lease.try_admit(2).expect("slot reopened");
        drop(b);
    }

    #[test]
    fn in_flight_sessions_survive_idle_eviction() {
        let registry = SessionRegistry::new();
        let lease = registry.lease("busy");
        registry.lease("idle");
        let guard = lease.try_admit(1).unwrap();
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(registry.evict_idle(Duration::ZERO), vec!["idle"]);
        assert_eq!(registry.names(), vec!["busy"]);
        drop(guard);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(registry.evict_idle(Duration::ZERO), vec!["busy"]);
    }

    #[test]
    fn poisoned_sessions_are_replaced_with_fresh_state() {
        let registry = Arc::new(SessionRegistry::new());
        let lease = registry.lease("s");
        {
            let mut session = lease.handle().lock().unwrap();
            apply(
                &mut session,
                Command::parse("generate pop biased n=40 seed=1").unwrap(),
            )
            .unwrap();
        }
        // Panic while holding the session lock (what a crashing command
        // does on a pool worker).
        let handle = Arc::clone(lease.handle());
        let _ = std::thread::spawn(move || {
            let _guard = handle.lock().unwrap();
            panic!("command blew up while holding the session");
        })
        .join();
        assert!(lease.is_poisoned());
        // A healthy name is never replaced; the poisoned one is.
        assert!(!registry.replace_poisoned("ghost"));
        assert!(registry.replace_poisoned("s"));
        // Second detector of the same poisoning races benignly.
        assert!(!registry.replace_poisoned("s"));
        // Re-attaching under the name reaches a fresh, working session.
        let fresh = registry.lease("s");
        assert!(!fresh.is_poisoned());
        assert!(fresh.handle().lock().unwrap().dataset_names().is_empty());
    }

    #[test]
    fn registry_sessions_share_one_dataset_store() {
        let registry = SessionRegistry::new();
        let a = registry.attach_or_create("a");
        let b = registry.attach_or_create("b");
        for handle in [&a, &b] {
            let mut session = handle.lock().unwrap();
            apply(
                &mut session,
                Command::parse("generate pop biased n=40 seed=1").unwrap(),
            )
            .unwrap();
        }
        // Both sessions loaded identical content, so the shared store holds
        // it once and the handles are pointer-equal views of it.
        assert_eq!(registry.store().stats().datasets, 1);
        let ha = a.lock().unwrap().dataset_handle("pop").unwrap().clone();
        let hb = b.lock().unwrap().dataset_handle("pop").unwrap().clone();
        assert!(ha.shares_storage_with(&hb));
    }

    #[test]
    fn evict_idle_expires_only_stale_sessions() {
        let registry = SessionRegistry::new();
        registry.attach_or_create("old");
        registry.attach_or_create("fresh");
        std::thread::sleep(Duration::from_millis(30));
        // Re-attaching refreshes the idle clock.
        registry.attach("fresh").unwrap();
        let evicted = registry.evict_idle(Duration::from_millis(25));
        assert_eq!(evicted, vec!["old"]);
        assert_eq!(registry.names(), vec!["fresh"]);
        // A zero TTL expires everything not attached in this instant.
        std::thread::sleep(Duration::from_millis(1));
        let evicted = registry.evict_idle(Duration::ZERO);
        assert_eq!(evicted, vec!["fresh"]);
        assert!(registry.is_empty());
        // Idempotent on an empty registry.
        assert!(registry.evict_idle(Duration::ZERO).is_empty());
    }
}
