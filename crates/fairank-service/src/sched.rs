//! Per-key fair queueing.
//!
//! [`FairQueue`] is the scheduling core shared by the [`WorkerPool`]
//! (compute jobs keyed by session) and the event loop's dispatch stage
//! (parsed requests keyed by session): items are held in one bounded
//! FIFO *per key*, and consumers drain the keys round-robin — one item
//! from the next key with pending work, then that key rotates to the
//! back. A session that enqueues a 64-cell grid no longer makes every
//! other session wait behind all 64 cells; interleaved sessions observe
//! latency proportional to *their own* backlog plus one item per busy
//! peer.
//!
//! Two caps bound memory and queueing delay:
//!
//! * a **global cap** on items across all keys (the old `queue_depth`
//!   backpressure), and
//! * a **per-key cap** (`serve --session-queue-cap`) so one key cannot
//!   consume the whole global budget before round-robin even matters.
//!
//! Blocking producers ([`FairQueue::push`]) wait for space; non-blocking
//! producers ([`FairQueue::try_push`]) get the item back with a reason,
//! which the dispatch layer turns into a structured `overloaded` reply.
//!
//! [`WorkerPool`]: crate::pool::WorkerPool

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Why [`FairQueue::try_push`] refused an item (the item rides back).
#[derive(Debug)]
pub enum TryPushError<T> {
    /// The global cap or the key's cap is exhausted.
    Full(T),
    /// The queue was closed; no consumer will ever take the item.
    Closed(T),
}

/// The queue was closed while a producer was blocked in [`FairQueue::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closed;

#[derive(Debug)]
struct State<T> {
    /// Pending items, one FIFO per key. Invariant: a key is present here
    /// iff its deque is non-empty, and iff it appears exactly once in
    /// `order`.
    queues: HashMap<String, VecDeque<T>>,
    /// Round-robin rotation of keys with pending work.
    order: VecDeque<String>,
    /// Total pending items across all keys.
    len: usize,
    closed: bool,
}

/// A bounded multi-key queue drained fairly (round-robin over keys).
#[derive(Debug)]
pub struct FairQueue<T> {
    state: Mutex<State<T>>,
    /// Signals consumers: an item arrived or the queue closed.
    ready: Condvar,
    /// Signals producers: space freed or the queue closed.
    space: Condvar,
    global_cap: usize,
    per_key_cap: usize,
}

impl<T> FairQueue<T> {
    /// A queue holding at most `global_cap` items total and `per_key_cap`
    /// items per key (either 0 = unbounded on that axis).
    pub fn new(global_cap: usize, per_key_cap: usize) -> Self {
        FairQueue {
            state: Mutex::new(State {
                queues: HashMap::new(),
                order: VecDeque::new(),
                len: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            global_cap,
            per_key_cap,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // Consumers run items *outside* the lock, so a panicking item
        // cannot poison queue state; recover the guard regardless.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn has_space(&self, state: &State<T>, key: &str) -> bool {
        if self.global_cap != 0 && state.len >= self.global_cap {
            return false;
        }
        if self.per_key_cap != 0 {
            if let Some(queue) = state.queues.get(key) {
                if queue.len() >= self.per_key_cap {
                    return false;
                }
            }
        }
        true
    }

    fn enqueue(&self, state: &mut State<T>, key: &str, item: T) {
        match state.queues.get_mut(key) {
            Some(queue) => queue.push_back(item),
            None => {
                state
                    .queues
                    .insert(key.to_string(), VecDeque::from([item]));
                state.order.push_back(key.to_string());
            }
        }
        state.len += 1;
        self.ready.notify_one();
    }

    /// Enqueues under `key`, blocking while the queue is at capacity.
    pub fn push(&self, key: &str, item: T) -> Result<(), Closed> {
        let mut state = self.lock();
        while !state.closed && !self.has_space(&state, key) {
            state = self
                .space
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if state.closed {
            return Err(Closed);
        }
        self.enqueue(&mut state, key, item);
        Ok(())
    }

    /// Enqueues under `key`, refusing (with the item back) instead of
    /// blocking when at capacity or closed.
    pub fn try_push(&self, key: &str, item: T) -> Result<(), TryPushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if !self.has_space(&state, key) {
            return Err(TryPushError::Full(item));
        }
        self.enqueue(&mut state, key, item);
        Ok(())
    }

    /// Takes the next item, round-robin over keys: one item from the key
    /// at the front of the rotation, which then moves to the back (or
    /// leaves the rotation once empty). Blocks while the queue is empty;
    /// returns `None` only when the queue is closed *and* drained, so
    /// close is graceful — already-accepted items still run.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(key) = state.order.pop_front() {
                let queue = state
                    .queues
                    .get_mut(&key)
                    .expect("order invariant: listed key has a queue");
                let item = queue.pop_front().expect("order invariant: queue non-empty");
                if queue.is_empty() {
                    state.queues.remove(&key);
                } else {
                    state.order.push_back(key);
                }
                state.len -= 1;
                // Space freed: wake *all* blocked producers — a per-key-cap
                // waiter for this key and a global-cap waiter for another
                // key are both candidates.
                self.space.notify_all();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Closes the queue: producers fail fast, consumers drain what was
    /// accepted and then see `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }

    /// Total pending items.
    pub fn len(&self) -> usize {
        self.lock().len
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn drains_round_robin_across_keys() {
        let queue: FairQueue<i32> = FairQueue::new(0, 0);
        for i in 0..3 {
            queue.try_push("a", i).unwrap();
        }
        for i in 10..12 {
            queue.try_push("b", i).unwrap();
        }
        queue.try_push("c", 20).unwrap();
        // Arrival order a,a,a,b,b,c; fair order interleaves keys in
        // first-seen rotation: a,b,c,a,b,a.
        let drained: Vec<i32> = (0..6).map(|_| queue.pop().unwrap()).collect();
        assert_eq!(drained, vec![0, 10, 20, 1, 11, 2]);
    }

    #[test]
    fn fifo_within_one_key() {
        let queue: FairQueue<i32> = FairQueue::new(0, 0);
        for i in 0..5 {
            queue.try_push("only", i).unwrap();
        }
        let drained: Vec<i32> = (0..5).map(|_| queue.pop().unwrap()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn per_key_cap_refuses_only_the_greedy_key() {
        let queue: FairQueue<i32> = FairQueue::new(0, 2);
        queue.try_push("greedy", 1).unwrap();
        queue.try_push("greedy", 2).unwrap();
        assert!(matches!(
            queue.try_push("greedy", 3),
            Err(TryPushError::Full(3))
        ));
        // Other keys still have room.
        queue.try_push("modest", 9).unwrap();
        // Draining one greedy item reopens that key.
        assert_eq!(queue.pop(), Some(1));
        queue.try_push("greedy", 3).unwrap();
        assert_eq!(queue.len(), 3);
    }

    #[test]
    fn global_cap_bounds_the_total() {
        let queue: FairQueue<i32> = FairQueue::new(2, 0);
        queue.try_push("a", 1).unwrap();
        queue.try_push("b", 2).unwrap();
        assert!(matches!(queue.try_push("c", 3), Err(TryPushError::Full(3))));
        assert_eq!(queue.pop(), Some(1));
        queue.try_push("c", 3).unwrap();
    }

    #[test]
    fn blocking_push_waits_for_space_and_pop_waits_for_items() {
        let queue: Arc<FairQueue<i32>> = Arc::new(FairQueue::new(1, 0));
        queue.push("k", 1).unwrap();
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push("k", 2))
        };
        // The producer is blocked on the full queue; free a slot.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(queue.pop(), Some(1));
        producer.join().unwrap().unwrap();
        assert_eq!(queue.pop(), Some(2));

        // A blocked consumer wakes when an item arrives.
        let consumer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        queue.push("k", 3).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(3));
    }

    #[test]
    fn close_drains_accepted_items_then_stops() {
        let queue: Arc<FairQueue<i32>> = Arc::new(FairQueue::new(0, 0));
        queue.try_push("a", 1).unwrap();
        queue.try_push("b", 2).unwrap();
        queue.close();
        // Producers fail fast after close...
        assert!(matches!(
            queue.try_push("a", 9),
            Err(TryPushError::Closed(9))
        ));
        assert_eq!(queue.push("a", 9), Err(Closed));
        // ...consumers still drain what was accepted, then see None.
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), Some(2));
        assert_eq!(queue.pop(), None);
        // And a consumer blocked at close time unblocks with None.
        let blocked = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        assert_eq!(blocked.join().unwrap(), None);
    }
}
