//! A bounded worker pool for CPU-bound requests, drained fairly per
//! session.
//!
//! Quantify-class commands are CPU-bound searches; running one per
//! connection would let N clients oversubscribe the host N-fold. The pool
//! caps concurrent heavy work at a fixed number of worker threads, with a
//! bounded submission queue providing backpressure: when every worker is
//! busy and the queue is full, `run` blocks the submitter — the client
//! simply observes a slower reply.
//!
//! Jobs are *tagged* (by session name, at the dispatch layer) and the
//! queue is a per-tag round-robin ([`crate::sched::FairQueue`]): one
//! session fanning a 64-cell grid no longer queues ahead of every other
//! session's single command. Untagged submissions share one default tag
//! and behave like a plain FIFO among themselves.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::sched::{FairQueue, TryPushError};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Admission refused: the pending queue (global, or the tag's own slice
/// of it) is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolFull;

/// The tag under which untagged submissions queue.
const DEFAULT_TAG: &str = "";

/// Source of unique pool ids (see [`CURRENT_POOL`]).
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// The id of the pool this thread is a worker of, if any. Set once at
    /// worker startup; `run`/`run_batch` consult it to detect a job
    /// submitting to its own pool — such work runs inline on the worker
    /// instead of being enqueued, because a fully-busy pool would never
    /// pick it up while the submitting worker blocks on the result
    /// (nested-submission deadlock).
    static CURRENT_POOL: Cell<Option<u64>> = const { Cell::new(None) };
}

/// A fixed-size pool of worker threads consuming a bounded, per-tag-fair
/// job queue.
pub struct WorkerPool {
    id: u64,
    queue: Arc<FairQueue<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// A pool of `workers` threads with a queue bounded at `queue_depth`
    /// pending jobs (both floored at 1) and no per-tag cap.
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        Self::with_caps(workers, queue_depth, 0)
    }

    /// Like [`WorkerPool::new`] plus a per-tag pending-job cap
    /// (`session_queue_cap`; 0 = unbounded per tag). Non-blocking
    /// submissions against a tag at its cap are refused with [`PoolFull`]
    /// even while the global queue has room — one session cannot consume
    /// the whole backlog budget.
    pub fn with_caps(workers: usize, queue_depth: usize, session_queue_cap: usize) -> Self {
        let workers = workers.max(1);
        let id = NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed);
        let queue = Arc::new(FairQueue::new(queue_depth.max(1), session_queue_cap));
        let handles = (0..workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("fairank-worker-{i}"))
                    .spawn(move || {
                        CURRENT_POOL.set(Some(id));
                        // Contain job panics: the worker must outlive any
                        // single request.
                        while let Some(job) = queue.pop() {
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            id,
            queue,
            workers: handles,
        }
    }

    /// True when the calling thread is one of this pool's own workers —
    /// i.e. a running job is submitting back into the pool it runs on.
    fn on_own_worker(&self) -> bool {
        CURRENT_POOL.get() == Some(self.id)
    }

    /// Runs a job on the calling thread with the same panic containment a
    /// worker would apply (`None` for a panicked job).
    fn run_inline<T>(job: impl FnOnce() -> T) -> Option<T> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).ok()
    }

    /// The host-sized worker count: one per available core, minus one for
    /// the event-loop/accept threads.
    pub fn default_workers() -> usize {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(2);
        cores.saturating_sub(1).max(1)
    }

    /// A pool sized to the host ([`WorkerPool::default_workers`]), queue
    /// twice as deep.
    pub fn sized_for_host() -> Self {
        let workers = Self::default_workers();
        WorkerPool::new(workers, workers * 2)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Non-blocking admission under the default tag (see
    /// [`WorkerPool::try_run_tagged`]).
    pub fn try_run<T, F>(&self, job: F) -> Result<Option<T>, PoolFull>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.try_run_tagged(DEFAULT_TAG, job)
    }

    /// Non-blocking admission: runs `job` like [`WorkerPool::run_tagged`]
    /// but refuses instead of blocking when the queue (global or the
    /// tag's cap) is full. The refusal is the server's backpressure
    /// signal — the dispatch layer turns it into a structured
    /// `overloaded` reply with a retry hint rather than silently queueing
    /// the caller.
    ///
    /// A job submitting to its own pool still runs inline (a busy worker
    /// asking itself for capacity must neither deadlock nor be refused).
    pub fn try_run_tagged<T, F>(&self, tag: &str, job: F) -> Result<Option<T>, PoolFull>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        if self.on_own_worker() {
            return Ok(Self::run_inline(job));
        }
        let (tx, rx) = std::sync::mpsc::sync_channel::<T>(1);
        match self.queue.try_push(
            tag,
            Box::new(move || {
                let _ = tx.send(job());
            }),
        ) {
            Ok(()) => Ok(rx.recv().ok()),
            Err(TryPushError::Full(_)) => Err(PoolFull),
            // Workers gone means the pool is tearing down; treat it as
            // "no capacity" rather than panicking mid-shutdown.
            Err(TryPushError::Closed(_)) => Err(PoolFull),
        }
    }

    /// [`WorkerPool::run_tagged`] under the default tag.
    pub fn run<T, F>(&self, job: F) -> Option<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.run_tagged(DEFAULT_TAG, job)
    }

    /// Runs `job` on a pool worker and blocks until it finishes, returning
    /// its result — or `None` if the job panicked (the worker survives the
    /// panic; a permanently shrinking pool would silently degrade the
    /// server to light-commands-only). Submission blocks while the queue
    /// is full (bounded backpressure).
    ///
    /// A job submitting to its own pool runs inline on the calling worker:
    /// enqueueing would deadlock once every worker blocks on a nested
    /// result no peer is free to compute, and running nested work on the
    /// already-occupied worker keeps the concurrency cap intact.
    pub fn run_tagged<T, F>(&self, tag: &str, job: F) -> Option<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        if self.on_own_worker() {
            return Self::run_inline(job);
        }
        let (tx, rx) = std::sync::mpsc::sync_channel::<T>(1);
        self.queue
            .push(
                tag,
                Box::new(move || {
                    // A dropped receiver (submitter gone) is fine: the work
                    // still completed; nobody is left to observe it.
                    let _ = tx.send(job());
                }),
            )
            .expect("worker threads outlive the pool handle");
        // A panicking job drops `tx` without sending: recv errors, None.
        rx.recv().ok()
    }

    /// [`WorkerPool::run_batch_tagged`] under the default tag.
    pub fn run_batch<T, F>(&self, jobs: Vec<F>) -> Vec<Option<T>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.run_batch_tagged(DEFAULT_TAG, jobs)
    }

    /// Submits a whole batch of jobs under one tag and blocks until all of
    /// them finish, returning their results in submission order (`None`
    /// for jobs that panicked). Unlike calling [`WorkerPool::run`] once
    /// per job from one thread — which would serialize the batch — every
    /// job is enqueued before any result is awaited, so an N-job batch
    /// saturates all workers at once. Submission still respects the
    /// bounds: enqueueing blocks while the queue (or the tag's cap) is
    /// full, and the already-queued jobs drain meanwhile — which is
    /// exactly how a grid bigger than `session_queue_cap` stays bounded
    /// without deadlocking.
    ///
    /// Like [`WorkerPool::run`], a batch submitted from one of this pool's
    /// own workers runs inline (sequentially) on that worker instead of
    /// being enqueued — nested submission must never deadlock a fully-busy
    /// pool.
    pub fn run_batch_tagged<T, F>(&self, tag: &str, jobs: Vec<F>) -> Vec<Option<T>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        if self.on_own_worker() {
            return jobs.into_iter().map(|job| Self::run_inline(job)).collect();
        }
        let receivers: Vec<_> = jobs
            .into_iter()
            .map(|job| {
                let (tx, rx) = std::sync::mpsc::sync_channel::<T>(1);
                self.queue
                    .push(
                        tag,
                        Box::new(move || {
                            let _ = tx.send(job());
                        }),
                    )
                    .expect("worker threads outlive the pool handle");
                rx
            })
            .collect();
        receivers.into_iter().map(|rx| rx.recv().ok()).collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the queue wakes every idle worker; already-accepted
        // jobs still drain first (their submitters may be blocked on
        // results).
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    #[test]
    fn runs_jobs_and_returns_results() {
        let pool = WorkerPool::new(2, 4);
        assert_eq!(pool.workers(), 2);
        assert_eq!(pool.run(|| 40 + 2), Some(42));
        let s = pool.run(|| "hello".to_string());
        assert_eq!(s.as_deref(), Some("hello"));
    }

    #[test]
    fn panicking_jobs_do_not_kill_workers() {
        let pool = WorkerPool::new(1, 2);
        // With a single worker, surviving this panic is observable: the
        // next job must still run on it.
        assert_eq!(pool.run(|| panic!("job blew up")), None::<i32>);
        assert_eq!(pool.run(|| 7), Some(7));
        assert_eq!(pool.run(|| panic!("again")), None::<i32>);
        assert_eq!(pool.run(|| 8), Some(8));
    }

    #[test]
    fn bounds_concurrent_execution() {
        let pool = Arc::new(WorkerPool::new(2, 2));
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut submitters = Vec::new();
        for _ in 0..8 {
            let pool = Arc::clone(&pool);
            let running = Arc::clone(&running);
            let peak = Arc::clone(&peak);
            submitters.push(std::thread::spawn(move || {
                pool.run(move || {
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    running.fetch_sub(1, Ordering::SeqCst);
                });
            }));
        }
        for s in submitters {
            s.join().unwrap();
        }
        // Never more heavy jobs in flight than workers.
        assert!(peak.load(Ordering::SeqCst) <= 2, "peak {}", peak.load(Ordering::SeqCst));
    }

    #[test]
    fn nested_submission_to_own_pool_does_not_deadlock() {
        // Regression: a job calling `run`/`run_batch` on its own pool used
        // to enqueue and block on the result. With every worker busy (here:
        // the only worker is running the outer job), the nested job could
        // never be picked up — the pool wedged forever. Nested submissions
        // now execute inline on the submitting worker.
        let pool = Arc::new(WorkerPool::new(1, 2));
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let inner_pool = Arc::clone(&pool);
        std::thread::spawn(move || {
            let outer = inner_pool.run({
                let pool = Arc::clone(&inner_pool);
                move || {
                    let nested = pool.run(|| 21);
                    let batch: Vec<Option<i32>> =
                        pool.run_batch(vec![|| 1, || 2, || 3]);
                    (nested, batch)
                }
            });
            done_tx.send(outer).unwrap();
        });
        let outer = done_rx
            .recv_timeout(std::time::Duration::from_secs(30))
            .expect("nested submission deadlocked the pool");
        let (nested, batch) = outer.expect("outer job completed");
        assert_eq!(nested, Some(21));
        assert_eq!(batch, vec![Some(1), Some(2), Some(3)]);
        // Panic containment matches the enqueued path: inline nested jobs
        // report None, and the worker survives.
        let nested_panic = pool.run({
            let pool = Arc::clone(&pool);
            move || pool.run(|| -> i32 { panic!("nested job blew up") })
        });
        assert_eq!(nested_panic, Some(None));
        assert_eq!(pool.run(|| 7), Some(7));
    }

    #[test]
    fn worker_threads_know_their_own_pool_only() {
        let a = WorkerPool::new(1, 1);
        let b = WorkerPool::new(1, 1);
        // A submitter thread is no pool's worker.
        assert!(!a.on_own_worker());
        // From inside pool `a`, submitting to `b` takes the normal queue
        // path (distinct ids), and `a` recognizes itself.
        // (Both facts observed from within the worker thread itself.)
        let b = Arc::new(b);
        let b2 = Arc::clone(&b);
        let saw = a.run(move || {
            let own = CURRENT_POOL.get().is_some();
            let cross = b2.run(|| CURRENT_POOL.get());
            (own, cross)
        });
        let (own, cross) = saw.expect("job ran");
        assert!(own, "worker thread must carry its pool id");
        // The job forwarded to `b` ran on b's worker, which carries b's id,
        // not a's.
        assert_eq!(cross, Some(Some(b.id)));
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(3, 3);
        assert_eq!(pool.run(|| 1), Some(1));
        drop(pool); // must not hang
    }

    #[test]
    fn host_sizing_is_sane() {
        let pool = WorkerPool::sized_for_host();
        assert!(pool.workers() >= 1);
    }

    #[test]
    fn sessions_share_the_single_worker_round_robin() {
        // One worker, session "a" floods it with a 4-job batch, then
        // session "b" submits one job while a's first job is still
        // running. Round-robin draining must interleave b's job right
        // after a's next one instead of parking it behind the whole
        // batch (the old FIFO behavior).
        let pool = Arc::new(WorkerPool::new(1, 16));
        let completions: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();

        let batch_thread = {
            let pool = Arc::clone(&pool);
            let completions = Arc::clone(&completions);
            std::thread::spawn(move || {
                let mut gate_rx = Some(release_rx);
                let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..4)
                    .map(|i| {
                        let completions = Arc::clone(&completions);
                        let started_tx = started_tx.clone();
                        let release_rx = gate_rx.take().map(std::sync::Mutex::new);
                        let job: Box<dyn FnOnce() + Send> = Box::new(move || {
                            if let Some(gate) = release_rx {
                                // First job: park the lone worker until the
                                // test has staged the competing session.
                                let _ = started_tx.send(());
                                let _ = gate.lock().unwrap().recv();
                            }
                            completions.lock().unwrap().push(format!("a{i}"));
                        });
                        job
                    })
                    .collect();
                pool.run_batch_tagged("a", jobs);
            })
        };
        // Wait for a's first job to occupy the worker; a2..a4 are queued
        // within microseconds after (run_batch enqueues before awaiting).
        started_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("first batch job started");
        std::thread::sleep(std::time::Duration::from_millis(50));
        let b_thread = {
            let pool = Arc::clone(&pool);
            let completions = Arc::clone(&completions);
            std::thread::spawn(move || {
                pool.run_tagged("b", move || {
                    completions.lock().unwrap().push("b0".into());
                });
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        release_tx.send(()).unwrap();
        batch_thread.join().unwrap();
        b_thread.join().unwrap();

        let order = completions.lock().unwrap().clone();
        let pos = |name: &str| order.iter().position(|c| c == name).unwrap();
        // Round-robin: after the parked a0 finishes, the worker alternates
        // a,b — so b0 lands second or third, never behind the whole batch.
        assert!(
            pos("b0") <= 2,
            "session b's single job waited out session a's whole batch: {order:?}"
        );
        assert!(pos("b0") < pos("a3"), "no interleaving happened: {order:?}");
    }

    #[test]
    fn per_session_queue_cap_refuses_the_flooding_session_only() {
        let pool = Arc::new(WorkerPool::with_caps(1, 16, 1));
        // Park the lone worker on an unrelated tag so submissions queue.
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
        let parked = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                pool.run_tagged("parked", move || {
                    let _ = started_tx.send(());
                    let _ = release_rx.recv();
                });
            })
        };
        started_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .unwrap();
        // One pending job per session fits the cap...
        let (a_tx, a_rx) = std::sync::mpsc::channel::<i32>();
        let a_pending = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                pool.try_run_tagged("a", move || {
                    let _ = a_tx.send(1);
                })
            })
        };
        // Give the pending submission time to enqueue (it blocks on the
        // result, so we can't join it yet).
        std::thread::sleep(std::time::Duration::from_millis(50));
        // ...a second pending job for the same session is refused...
        assert_eq!(pool.try_run_tagged("a", || 2), Err(PoolFull));
        // ...while another session still gets in (global queue has room).
        let (b_tx, b_rx) = std::sync::mpsc::channel::<i32>();
        let b_pending = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                pool.try_run_tagged("b", move || {
                    let _ = b_tx.send(2);
                })
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        release_tx.send(()).unwrap();
        assert!(a_pending.join().unwrap().is_ok());
        assert!(b_pending.join().unwrap().is_ok());
        assert_eq!(a_rx.recv_timeout(std::time::Duration::from_secs(10)), Ok(1));
        assert_eq!(b_rx.recv_timeout(std::time::Duration::from_secs(10)), Ok(2));
        parked.join().unwrap();
    }
}
