//! The readiness-based serving front end: one IO thread multiplexes every
//! connection through the vendored [`polling`] shim (epoll on Linux,
//! `poll(2)` elsewhere).
//!
//! Where the legacy front end spends one parked thread per connection plus
//! one watcher thread per in-flight request, this loop spends exactly one
//! thread on IO regardless of connection count. Each connection is a small
//! state machine:
//!
//! ```text
//! read-accumulate ──(complete line)──▶ dispatch ──(completion)──▶ write-drain
//!        ▲                                                             │
//!        └──────────────────(reply flushed, next pipelined line)◀──────┘
//! ```
//!
//! * **read-accumulate** — readable sockets are drained into a per
//!   connection buffer; a newline completes a request line. EOF or a read
//!   error here *is* the disconnect signal: the in-flight request's cancel
//!   token fires with [`CancelReason::Disconnected`] — no probe thread,
//!   no shared `SO_RCVTIMEO` to corrupt.
//! * **dispatch** — parsed requests enter a per-session fair queue (the
//!   same [`FairQueue`] discipline the worker pool uses) drained by a
//!   small pool of dispatcher threads calling [`dispatch_with`] — the
//!   identical semantics the threaded front end runs, so replies are
//!   byte-compatible. One request per connection is in flight at a time;
//!   pipelined lines wait buffered.
//! * **write-drain** — completions (and streamed `{"chunk": ..}` lines)
//!   come back over a channel, are serialized into the connection's write
//!   buffer, and drain as the socket accepts them; the dispatcher wakes
//!   the poller through its notify pipe.
//!
//! The loop exits when [`Server`]'s stop flag rises; a draining server
//! refuses new connections and new requests with structured
//! `shutting_down` replies while still flushing in-flight work.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use polling::{Event, Poller};

use fairank_core::cancel::{CancelReason, CancelToken, RunBudget};
use fairank_core::fault;
use fairank_session::Response;

use crate::pool::WorkerPool;
use crate::protocol::{Frame, Reply, Request};
use crate::registry::SessionRegistry;
use crate::sched::{FairQueue, TryPushError};
use crate::server::{
    dispatch_with, send_reply, ChunkSink, DispatchPolicy, RequestContext, ServeState, Server,
    MAX_REQUEST_BYTES, RETRY_AFTER_MS,
};

/// The poller key under which the accept listener registers. One below
/// `usize::MAX`, which the shim reserves for its notify pipe.
const LISTENER_KEY: usize = usize::MAX - 1;

/// How long one `wait` may block. The poller is woken early by socket
/// readiness and dispatcher notifies; the tick only bounds how stale the
/// stop/draining flags can get on a totally idle server.
const TICK: Duration = Duration::from_millis(100);

/// Requests queued for dispatch across all sessions before further lines
/// are refused with `overloaded`. Each connection holds at most one
/// request in flight, so this only binds when thousands of connections
/// fire simultaneously — it is a memory bound, not a throughput knob.
const DISPATCH_QUEUE_CAP: usize = 4096;

/// Socket read granularity.
const READ_CHUNK: usize = 16 * 1024;

/// Stop reading a connection whose unconsumed buffer reaches this size
/// (a heavily pipelining client); read interest is dropped until the
/// buffered lines drain, and TCP backpressure holds the rest. Twice the
/// request cap: one maximal in-progress line plus buffered whole lines.
const READ_HIGH_WATER: u64 = 2 * MAX_REQUEST_BYTES;

/// One parsed request waiting for (or occupying) a dispatcher.
struct PendingRequest {
    conn: usize,
    session: String,
    request: Request,
    budget: RunBudget,
    draining: bool,
}

/// What dispatcher threads send back to the IO thread.
enum Completion {
    /// A streamed cell-stat line (already serialized), mid-request.
    Chunk { conn: usize, line: String },
    /// The request's terminal reply.
    Reply { conn: usize, reply: Reply },
}

/// Per-connection state machine.
struct Conn {
    key: usize,
    stream: TcpStream,
    /// Registration id in [`ServeState::conns`] (shutdown force-close).
    state_id: Option<u64>,
    /// Bytes read but not yet consumed as request lines.
    read_buf: Vec<u8>,
    /// Serialized reply bytes not yet accepted by the socket.
    write_buf: Vec<u8>,
    /// The in-flight request's cancel token (at most one per connection).
    inflight: Option<CancelToken>,
    /// The peer closed its write half (EOF seen).
    peer_eof: bool,
    /// Close once `write_buf` drains (quit, refusals, torn writes).
    close_after_drain: bool,
    /// Interest last registered with the poller, to skip no-op modifies.
    interest: (bool, bool),
    /// Whether the fd is currently registered with the poller. Interest
    /// `(false, false)` deregisters entirely — the epoll backend always
    /// arms `EPOLLRDHUP`/`EPOLLHUP`, so a merely-muted half-closed peer
    /// would otherwise ring the level-triggered bell every tick for the
    /// whole life of its in-flight request.
    registered: bool,
}

impl Conn {
    fn new(key: usize, stream: TcpStream, state_id: Option<u64>) -> Conn {
        Conn {
            key,
            stream,
            state_id,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            inflight: None,
            peer_eof: false,
            close_after_drain: false,
            interest: (true, false),
            registered: false,
        }
    }

    /// Serializes one reply line into the write buffer.
    fn queue_reply(&mut self, reply: &Reply) {
        if let Ok(text) = serde_json::to_string(reply) {
            self.write_buf.extend_from_slice(text.as_bytes());
            self.write_buf.push(b'\n');
        }
    }
}

/// What one round of socket reads produced.
enum ReadEnd {
    /// Drained to `WouldBlock`; the peer is still there.
    Open,
    /// EOF: the peer closed its write half (buffered bytes retained).
    Eof,
    /// Hard error: the connection is gone.
    Dead,
}

/// Reads everything currently available into the connection's buffer.
fn fill_read_buf(conn: &mut Conn) -> ReadEnd {
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => return ReadEnd::Eof,
            Ok(n) => conn.read_buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => return ReadEnd::Open,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return ReadEnd::Dead,
        }
    }
}

/// Writes as much buffered output as the socket accepts right now.
fn flush_write(conn: &mut Conn) -> std::io::Result<()> {
    while !conn.write_buf.is_empty() {
        match conn.stream.write(&conn.write_buf) {
            Ok(0) => return Err(ErrorKind::WriteZero.into()),
            Ok(n) => {
                conn.write_buf.drain(..n);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Extracts the next complete line (newline included) from the buffer.
fn take_line(buf: &mut Vec<u8>) -> Option<Vec<u8>> {
    let end = buf.iter().position(|&b| b == b'\n')?;
    let rest = buf.split_off(end + 1);
    Some(std::mem::replace(buf, rest))
}

/// Runs the event loop on the calling thread until the server's stop flag
/// rises. Errors are startup-only (poller creation / listener
/// registration); per-connection failures drop that connection.
pub(crate) fn run(server: &Server) -> std::io::Result<()> {
    server.listener.set_nonblocking(true)?;
    let poller = Arc::new(Poller::new()?);
    poller.add(&server.listener, Event::readable(LISTENER_KEY))?;

    let queue: Arc<FairQueue<PendingRequest>> = Arc::new(FairQueue::new(
        DISPATCH_QUEUE_CAP,
        server.session_queue_cap,
    ));
    let (tx, rx) = std::sync::mpsc::channel::<Completion>();
    let dispatchers: Vec<JoinHandle<()>> = (0..server.dispatchers.max(1))
        .map(|i| {
            let queue = Arc::clone(&queue);
            let tx = tx.clone();
            let poller = Arc::clone(&poller);
            let registry = Arc::clone(&server.registry);
            let pool = Arc::clone(&server.pool);
            let state = Arc::clone(&server.state);
            let policy = server.policy;
            let cap = server.session_inflight_cap;
            std::thread::Builder::new()
                .name(format!("fairank-dispatch-{i}"))
                .spawn(move || dispatcher(&queue, &tx, &poller, &registry, &pool, policy, cap, &state))
                .expect("spawn dispatcher thread")
        })
        .collect();
    drop(tx); // completions only flow from dispatchers

    let mut lp = EventLoop {
        server,
        poller: Arc::clone(&poller),
        queue: Arc::clone(&queue),
        conns: HashMap::new(),
        next_key: 0,
    };
    let mut events: Vec<Event> = Vec::new();
    while !server.stop.load(Ordering::SeqCst) {
        let _ = poller.wait(&mut events, Some(TICK))?;
        for completion in rx.try_iter() {
            lp.apply_completion(completion);
        }
        // `wait` hands back its own buffer; take it so event handling can
        // borrow `lp` mutably.
        let batch = std::mem::take(&mut events);
        for event in &batch {
            if event.key == LISTENER_KEY {
                lp.accept_ready();
            } else {
                lp.conn_event(event.key, event.readable, event.writable);
            }
        }
        events = batch;
    }

    // Teardown: stop feeding the dispatchers, let them drain what they
    // already accepted (their completions have nowhere to go and are
    // dropped), then release every connection.
    queue.close();
    for handle in dispatchers {
        let _ = handle.join();
    }
    for (_, conn) in lp.conns.drain() {
        let _ = poller.delete(&conn.stream);
        if let Some(id) = conn.state_id {
            server.state.deregister_conn(id);
        }
        if let Some(token) = conn.inflight {
            token.cancel(CancelReason::Disconnected);
        }
    }
    let _ = poller.delete(&server.listener);
    Ok(())
}

/// One dispatcher thread: pops fairly across sessions, runs the shared
/// dispatch semantics, ships the reply (and any chunk lines) back to the
/// IO thread, and wakes the poller.
#[allow(clippy::too_many_arguments)]
fn dispatcher(
    queue: &FairQueue<PendingRequest>,
    completions: &Sender<Completion>,
    poller: &Arc<Poller>,
    registry: &SessionRegistry,
    pool: &WorkerPool,
    policy: DispatchPolicy,
    session_inflight_cap: usize,
    state: &ServeState,
) {
    while let Some(pending) = queue.pop() {
        let PendingRequest {
            conn,
            request,
            budget,
            draining,
            ..
        } = pending;
        let chunk_sink = if request.wants_stream() {
            // Chunks ride the same channel as the terminal reply, from
            // this same thread, so per-sender FIFO ordering guarantees
            // every chunk lands before the final line.
            let tx = Mutex::new(completions.clone());
            let poller = Arc::clone(poller);
            Some(ChunkSink::new(move |stat| {
                if let Ok(line) = serde_json::to_string(&Frame::chunk(stat.clone())) {
                    let sent = tx
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .send(Completion::Chunk { conn, line });
                    if sent.is_ok() {
                        let _ = poller.notify();
                    }
                }
            }))
        } else {
            None
        };
        let ctx = RequestContext {
            budget,
            session_inflight_cap,
            draining,
            chunk_sink,
        };
        state.active_requests.fetch_add(1, Ordering::SeqCst);
        let reply = dispatch_with(registry, pool, request, policy, &ctx);
        state.active_requests.fetch_sub(1, Ordering::SeqCst);
        if completions.send(Completion::Reply { conn, reply }).is_ok() {
            let _ = poller.notify();
        }
    }
}

struct EventLoop<'a> {
    server: &'a Server,
    poller: Arc<Poller>,
    queue: Arc<FairQueue<PendingRequest>>,
    conns: HashMap<usize, Conn>,
    next_key: usize,
}

impl EventLoop<'_> {
    fn alloc_key(&mut self) -> usize {
        // Monotonic, never reused: a stale completion can never be
        // delivered to a different connection that inherited the key.
        let key = self.next_key;
        self.next_key = self.next_key.wrapping_add(1);
        if self.next_key >= LISTENER_KEY {
            self.next_key = 0;
        }
        key
    }

    /// Accepts every connection currently pending on the listener.
    fn accept_ready(&mut self) {
        loop {
            match self.server.listener.accept() {
                Ok((mut stream, _)) => {
                    if self.server.stop.load(Ordering::SeqCst) {
                        return; // shutting down; the wake-up connection lands here
                    }
                    if self.server.state.draining.load(Ordering::SeqCst) {
                        // A draining server refuses new connections with a
                        // structured reason instead of a silent close. The
                        // reply is one short line into an empty socket
                        // buffer; the blocking-write window is nil.
                        let _ = stream.set_nonblocking(false);
                        send_reply(&mut stream, &Reply::shutting_down());
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Request/reply lines are small; without this Nagle's
                    // algorithm + delayed ACK adds ~40 ms to every reply.
                    let _ = stream.set_nodelay(true);
                    let key = self.alloc_key();
                    let state_id = self.server.state.register_conn(&stream);
                    let mut conn = Conn::new(key, stream, state_id);
                    match self.poller.add(&conn.stream, Event::readable(key)) {
                        Ok(()) => {
                            conn.registered = true;
                            self.conns.insert(key, conn);
                        }
                        Err(_) => self.drop_conn(conn),
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }

    /// Handles readiness on one connection.
    fn conn_event(&mut self, key: usize, readable: bool, writable: bool) {
        let Some(mut conn) = self.conns.remove(&key) else {
            return; // already closed this tick
        };
        let mut alive = true;
        if readable && !conn.peer_eof {
            match fill_read_buf(&mut conn) {
                ReadEnd::Open => {}
                ReadEnd::Eof => {
                    conn.peer_eof = true;
                    // Disconnect detection, the event-loop way: EOF is a
                    // readiness event, and an abandoned in-flight request
                    // stops burning workers via its cancel token.
                    if let Some(token) = &conn.inflight {
                        token.cancel(CancelReason::Disconnected);
                    }
                }
                ReadEnd::Dead => alive = false,
            }
        }
        if alive {
            self.process_lines(&mut conn);
        }
        let _ = writable; // settle() always attempts the flush
        self.settle(conn, alive);
    }

    /// Applies one dispatcher completion to its connection.
    fn apply_completion(&mut self, completion: Completion) {
        match completion {
            Completion::Chunk { conn: key, line } => {
                let Some(mut conn) = self.conns.remove(&key) else {
                    return; // client vanished mid-stream
                };
                conn.write_buf.extend_from_slice(line.as_bytes());
                conn.write_buf.push(b'\n');
                self.settle(conn, true);
            }
            Completion::Reply { conn: key, reply } => {
                let Some(mut conn) = self.conns.remove(&key) else {
                    return;
                };
                conn.inflight = None;
                // Fault injection (debug builds only; `fault::active` is a
                // constant `false` in release, so the branches compile
                // away). Mirrors the threaded reply path exactly.
                if fault::active(fault::DROP_CONN) {
                    self.drop_conn(conn); // vanish without a reply
                    return;
                }
                if fault::active(fault::TORN_WRITE) {
                    if let Ok(text) = serde_json::to_string(&reply) {
                        let half = text.len() / 2;
                        conn.write_buf.extend_from_slice(&text.as_bytes()[..half]);
                    }
                    conn.close_after_drain = true;
                    self.settle(conn, true);
                    return;
                }
                if matches!(reply, Reply::ok(Response::Quit)) {
                    // `quit` ends the connection, not the server.
                    conn.close_after_drain = true;
                }
                conn.queue_reply(&reply);
                if !conn.close_after_drain {
                    // The reply is decided; a pipelined next request may
                    // dispatch now.
                    self.process_lines(&mut conn);
                }
                self.settle(conn, true);
            }
        }
    }

    /// Consumes complete request lines while the connection has no request
    /// in flight, enqueueing at most one for dispatch.
    fn process_lines(&mut self, conn: &mut Conn) {
        while conn.inflight.is_none() && !conn.close_after_drain {
            match take_line(&mut conn.read_buf) {
                Some(line) => {
                    if line.len() as u64 > MAX_REQUEST_BYTES {
                        conn.queue_reply(&Reply::request_too_large(MAX_REQUEST_BYTES));
                        conn.close_after_drain = true;
                        return;
                    }
                    self.handle_line(conn, &line);
                }
                None => {
                    if conn.read_buf.len() as u64 >= MAX_REQUEST_BYTES {
                        // A line still growing past the cap: refuse now,
                        // close once the refusal drains (the rest of the
                        // line cannot be resynchronized).
                        conn.queue_reply(&Reply::request_too_large(MAX_REQUEST_BYTES));
                        conn.close_after_drain = true;
                        conn.read_buf.clear();
                    } else if conn.peer_eof && !conn.read_buf.is_empty() {
                        // EOF mid-line: process the unterminated trailing
                        // request, as the threaded reader does.
                        let line = std::mem::take(&mut conn.read_buf);
                        self.handle_line(conn, &line);
                    }
                    return;
                }
            }
        }
    }

    /// Parses one request line and routes it to the dispatch queue (or
    /// answers it straight from the IO thread for protocol errors and
    /// refusals).
    fn handle_line(&mut self, conn: &mut Conn, raw: &[u8]) {
        let Ok(text) = std::str::from_utf8(raw) else {
            conn.queue_reply(&Reply::protocol_error("request line is not valid UTF-8"));
            conn.close_after_drain = true;
            return;
        };
        let line = text.trim();
        if line.is_empty() {
            return;
        }
        let request = match serde_json::from_str::<Request>(line) {
            Ok(request) => request,
            Err(e) => {
                conn.queue_reply(&Reply::protocol_error(format!("malformed request: {e}")));
                return;
            }
        };
        // Assemble the request's cancellation scope: deadline (when
        // configured), a per-request token the EOF path fires, and the
        // server's shutdown token.
        let token = CancelToken::new();
        let mut budget = RunBudget::unlimited()
            .with_token(token.clone())
            .with_token(self.server.state.shutdown_token.clone());
        if let Some(timeout) = self.server.request_timeout {
            budget = budget.with_timeout(timeout);
        }
        let pending = PendingRequest {
            conn: conn.key,
            session: request.session_name().to_string(),
            request,
            budget,
            draining: self.server.state.draining.load(Ordering::SeqCst),
        };
        let session = pending.session.clone();
        match self.queue.try_push(&session, pending) {
            Ok(()) => {
                if conn.peer_eof {
                    // The peer already hung up; don't let the request
                    // burn compute nobody will read.
                    token.cancel(CancelReason::Disconnected);
                }
                conn.inflight = Some(token);
            }
            // The dispatch stage is saturated (globally, or this session's
            // slice of it): structured backpressure, connection stays up.
            Err(TryPushError::Full(_)) => {
                conn.queue_reply(&Reply::overloaded(
                    format!("dispatch queue is full for session {session:?}"),
                    RETRY_AFTER_MS,
                ));
            }
            Err(TryPushError::Closed(_)) => {
                conn.queue_reply(&Reply::shutting_down());
                conn.close_after_drain = true;
            }
        }
    }

    /// Common epilogue: opportunistically flush, decide whether the
    /// connection lives on, and (re)register poller interest.
    fn settle(&mut self, mut conn: Conn, mut alive: bool) {
        if alive && !conn.write_buf.is_empty() && flush_write(&mut conn).is_err() {
            alive = false;
        }
        if alive && conn.write_buf.is_empty() {
            if conn.close_after_drain {
                alive = false;
            } else if conn.peer_eof && conn.inflight.is_none() {
                // Nothing buffered, nothing running, peer gone: done.
                // (Any trailing unterminated line was handled when EOF
                // was observed.)
                alive = false;
            }
        }
        if !alive {
            self.drop_conn(conn);
            return;
        }
        let interest = (
            !conn.peer_eof && (conn.read_buf.len() as u64) < READ_HIGH_WATER,
            !conn.write_buf.is_empty(),
        );
        let event = Event {
            key: conn.key,
            readable: interest.0,
            writable: interest.1,
        };
        let ok = match (conn.registered, interest) {
            // Nothing to hear: deregister so the always-armed hangup
            // bits can't ring the level-triggered bell every tick.
            (true, (false, false)) => {
                conn.registered = false;
                self.poller.delete(&conn.stream).is_ok()
            }
            (false, (false, false)) => true,
            (false, _) => {
                conn.registered = true;
                conn.interest = interest;
                self.poller.add(&conn.stream, event).is_ok()
            }
            (true, _) if interest != conn.interest => {
                conn.interest = interest;
                self.poller.modify(&conn.stream, event).is_ok()
            }
            (true, _) => true,
        };
        if !ok {
            self.drop_conn(conn);
            return;
        }
        self.conns.insert(conn.key, conn);
    }

    /// Releases a connection: poller registration, shutdown bookkeeping,
    /// and any in-flight compute (cancelled as disconnected).
    fn drop_conn(&mut self, conn: Conn) {
        let _ = self.poller.delete(&conn.stream);
        if let Some(id) = conn.state_id {
            self.server.state.deregister_conn(id);
        }
        if let Some(token) = conn.inflight {
            token.cancel(CancelReason::Disconnected);
        }
    }
}
