//! The serving configuration, dispatch semantics, and the legacy
//! thread-per-connection TCP front end.
//!
//! [`Server::run`] serves through the readiness-based [`crate::eventloop`]
//! by default: one IO thread multiplexes every connection, so 1k idle
//! clients cost 1k registered sockets instead of 1k parked threads, and a
//! client disconnect is a readiness event instead of a per-request watcher
//! thread. `ServerConfig { threaded: true }` (`serve --threaded`) selects
//! the original thread-per-connection loop in this module — kept as the
//! byte-compatibility baseline the load harness diffs the event loop
//! against. Both front ends share [`dispatch_with`], the whole request
//! semantics; the CPU budget is governed by the [`WorkerPool`] either way.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fairank_core::cancel::{CancelReason, CancelToken, RunBudget};
use fairank_core::fault;
use fairank_session::command::{apply_with_budget, Command};
use fairank_session::{ErrorResponse, Response};

use crate::pool::{PoolFull, WorkerPool};
use crate::protocol::{Reply, Request};
use crate::registry::{SessionLease, SessionRegistry};

/// Hard cap on one request line. A client that streams bytes without a
/// newline is cut off here instead of growing the read buffer without
/// bound; 1 MiB comfortably fits any real command (they are REPL lines).
pub const MAX_REQUEST_BYTES: u64 = 1 << 20;

/// Tunables of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads for quantify-class requests (0 = size to the host).
    pub workers: usize,
    /// Pending heavy jobs the queue holds before submitters block
    /// (0 = twice the worker count).
    pub queue_depth: usize,
    /// Allow wire clients to run commands that touch the server's
    /// filesystem (`load`, `save`, `open`, `export`, `scenario
    /// <spec.json>`). Off by default: a reachable port must not hand out
    /// file read/write on the host.
    pub allow_fs_commands: bool,
    /// Allow wire clients to run registry-admin commands (`sessions`,
    /// `evict <name>`). Off by default.
    pub admin: bool,
    /// Evict sessions idle for at least this long. A dedicated sweeper
    /// thread wakes periodically (at most every [`sweep_interval`]), so
    /// idle sessions expire even on a server that never accepts another
    /// connection. `None` (the default) keeps sessions forever.
    pub session_ttl: Option<std::time::Duration>,
    /// Per-request compute deadline. A request still running when it
    /// expires is cancelled cooperatively and answered with the structured
    /// `deadline_exceeded` error (carrying partial search counters).
    /// `None` (the default) lets requests run unbounded.
    pub request_timeout: Option<std::time::Duration>,
    /// Maximum compute-class requests one session may have in flight at
    /// once; extra requests are refused with `overloaded` instead of
    /// queueing unboundedly behind the session's mutex. 0 = unlimited.
    pub session_inflight_cap: usize,
    /// Entries the shared plan-cell cache may hold before LRU eviction
    /// (`serve --cell-cache-cap`). 0 disables caching entirely.
    pub cell_cache_cap: usize,
    /// Serve with the legacy thread-per-connection loop instead of the
    /// default event loop (`serve --threaded`). Wire behavior is
    /// identical; this exists as the baseline the load harness compares
    /// against.
    pub threaded: bool,
    /// Pending pool jobs one session may hold before further submissions
    /// are refused with `overloaded` (`serve --session-queue-cap`).
    /// 0 = unbounded per session (the global `queue_depth` still binds).
    pub session_queue_cap: usize,
    /// Event-loop dispatcher threads — how many requests can be *in
    /// dispatch* at once (light commands run here; heavy ones mostly wait
    /// on the pool). 0 = size to the pool (workers + 2). Ignored under
    /// `threaded`, where every connection thread dispatches for itself.
    pub dispatchers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            queue_depth: 0,
            allow_fs_commands: false,
            admin: false,
            session_ttl: None,
            request_timeout: None,
            session_inflight_cap: 0,
            cell_cache_cap: fairank_session::CellCache::DEFAULT_CAP,
            threaded: false,
            session_queue_cap: 0,
            dispatchers: 0,
        }
    }
}

/// Shared run-state of a serving server: the drain flag, the global
/// shutdown cancel token every request's budget carries, the in-flight
/// request count, and the open connection sockets (so shutdown can
/// force-close readers blocked on quiet peers).
#[derive(Debug, Default)]
pub(crate) struct ServeState {
    pub(crate) draining: AtomicBool,
    pub(crate) shutdown_token: CancelToken,
    pub(crate) active_requests: AtomicUsize,
    pub(crate) next_conn_id: AtomicU64,
    pub(crate) conns: Mutex<HashMap<u64, TcpStream>>,
}

impl ServeState {
    pub(crate) fn register_conn(&self, stream: &TcpStream) -> Option<u64> {
        let id = self.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let clone = stream.try_clone().ok()?;
        self.conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(id, clone);
        Some(id)
    }

    pub(crate) fn deregister_conn(&self, id: u64) {
        self.conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&id);
    }

    pub(crate) fn close_all_conns(&self) {
        for (_, conn) in self
            .conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .drain()
        {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// A running multi-session FaiRank server.
#[derive(Debug)]
pub struct Server {
    pub(crate) listener: TcpListener,
    pub(crate) registry: Arc<SessionRegistry>,
    pub(crate) pool: Arc<WorkerPool>,
    pub(crate) policy: DispatchPolicy,
    session_ttl: Option<std::time::Duration>,
    pub(crate) request_timeout: Option<std::time::Duration>,
    pub(crate) session_inflight_cap: usize,
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) state: Arc<ServeState>,
    threaded: bool,
    pub(crate) dispatchers: usize,
    pub(crate) session_queue_cap: usize,
}

/// Handle to a server running on a background thread (see
/// [`Server::spawn`]).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    state: Arc<ServeState>,
    thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener (use port 0 for an ephemeral port) and prepares
    /// the registry and worker pool. Nothing is served until [`Server::run`]
    /// or [`Server::spawn`].
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let workers = if config.workers == 0 {
            WorkerPool::default_workers()
        } else {
            config.workers
        };
        let depth = if config.queue_depth == 0 {
            workers * 2
        } else {
            config.queue_depth
        };
        let dispatchers = if config.dispatchers == 0 {
            workers + 2
        } else {
            config.dispatchers
        };
        Ok(Server {
            listener,
            registry: Arc::new(SessionRegistry::with_cell_cache_cap(config.cell_cache_cap)),
            pool: Arc::new(WorkerPool::with_caps(workers, depth, config.session_queue_cap)),
            policy: DispatchPolicy {
                allow_fs_commands: config.allow_fs_commands,
                admin: config.admin,
            },
            session_ttl: config.session_ttl,
            request_timeout: config.request_timeout,
            session_inflight_cap: config.session_inflight_cap,
            stop: Arc::new(AtomicBool::new(false)),
            state: Arc::new(ServeState::default()),
            threaded: config.threaded,
            dispatchers,
            session_queue_cap: config.session_queue_cap,
        })
    }

    /// The bound address (the actual port when 0 was requested).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared session registry (for in-process inspection/eviction).
    pub fn registry(&self) -> Arc<SessionRegistry> {
        Arc::clone(&self.registry)
    }

    /// Serves connections on the calling thread until stopped — through
    /// the event loop by default, or thread-per-connection under
    /// `ServerConfig { threaded: true }`.
    pub fn run(self) {
        // Idle-session TTL: a dedicated sweeper thread, NOT a pass on the
        // accept loop. Sweeping only on accept meant a quiet server (no new
        // connections) never expired anything — sessions pinned their
        // memory until the next client happened to connect.
        let sweeper = self.session_ttl.map(|ttl| {
            spawn_ttl_sweeper(Arc::clone(&self.registry), Arc::clone(&self.stop), ttl)
        });
        if self.threaded {
            self.run_threaded();
        } else if let Err(e) = crate::eventloop::run(&self) {
            // Registration with the OS poller failed at startup; there is
            // nothing to serve with. (Mid-loop per-connection errors are
            // handled by dropping the one connection, not surfaced here.)
            eprintln!("fairank serve: event loop failed: {e}");
            self.stop.store(true, Ordering::SeqCst);
        }
        if let Some(thread) = sweeper {
            let _ = thread.join();
        }
    }

    /// The legacy blocking accept loop: one thread per connection.
    fn run_threaded(&self) {
        let policy = self.policy;
        let limits = ConnLimits {
            request_timeout: self.request_timeout,
            session_inflight_cap: self.session_inflight_cap,
        };
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(mut stream) = stream else { continue };
            // Request/reply lines are small; without this Nagle's
            // algorithm + delayed ACK adds ~40 ms to every reply.
            let _ = stream.set_nodelay(true);
            if self.state.draining.load(Ordering::SeqCst) {
                // A draining server refuses new connections with a
                // structured reason instead of a silent close.
                send_reply(&mut stream, &Reply::shutting_down());
                continue;
            }
            let registry = Arc::clone(&self.registry);
            let pool = Arc::clone(&self.pool);
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || {
                serve_connection(stream, &registry, &pool, policy, &state, limits)
            });
        }
    }

    /// Serves on a background thread, returning a [`ServerHandle`] for the
    /// address and shutdown.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::clone(&self.stop);
        let state = Arc::clone(&self.state);
        let thread = std::thread::Builder::new()
            .name("fairank-server".into())
            .spawn(move || self.run())?;
        Ok(ServerHandle {
            addr,
            stop,
            state,
            thread: Some(thread),
        })
    }
}

impl ServerHandle {
    /// The address the server accepts on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections and joins the accept thread.
    /// In-flight compute is cancelled cooperatively (clients receive the
    /// structured `shutting_down` error) rather than drained.
    pub fn stop(mut self) {
        self.state.draining.store(true, Ordering::SeqCst);
        self.state.shutdown_token.cancel(CancelReason::Shutdown);
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }

    /// Graceful shutdown: refuse new connections and new requests, let
    /// in-flight requests finish for up to `drain`, then cancel whatever
    /// is still running (those clients receive `shutting_down`), close
    /// lingering connection sockets, and join the accept thread — which
    /// transitively joins the TTL sweeper and, once the last connection
    /// thread releases the pool, its workers.
    pub fn shutdown(mut self, drain: Duration) {
        // Phase 1: refuse new work everywhere. `draining` turns both new
        // connections (accept) and new requests on live connections
        // (dispatch) into structured `shutting_down` replies. The serve
        // loop itself keeps running through the drain — the event loop
        // must stay live to flush in-flight replies — so `stop` is not
        // raised until phase 4.
        self.state.draining.store(true, Ordering::SeqCst);
        // Phase 2: drain — wait for in-flight requests to finish.
        let deadline = Instant::now() + drain;
        while self.state.active_requests.load(Ordering::SeqCst) > 0
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Phase 3: whatever outlived the drain window is cancelled
        // cooperatively; searches notice within one budget-poll stride
        // and return `shutting_down` with partial stats.
        self.state.shutdown_token.cancel(CancelReason::Shutdown);
        let forced = Instant::now() + Duration::from_secs(10);
        while self.state.active_requests.load(Ordering::SeqCst) > 0
            && Instant::now() < forced
        {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Phase 4: stop the serve loop, unblock connection readers parked
        // on quiet peers so their threads exit, then join. The throwaway
        // connection wakes both front ends (blocking accept, or listener
        // readiness in the event loop).
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        self.state.close_all_conns();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.state.draining.store(true, Ordering::SeqCst);
            self.state.shutdown_token.cancel(CancelReason::Shutdown);
            self.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.addr);
            let _ = thread.join();
        }
    }
}

/// Time between idle-session sweeps for a given TTL: half the TTL (so a
/// session overstays by at most ~50%), clamped to `[5 ms, 1 s]` — the floor
/// keeps tiny test TTLs from spinning, the ceiling bounds how stale the
/// sweep can get on long TTLs.
pub fn sweep_interval(ttl: std::time::Duration) -> std::time::Duration {
    (ttl / 2).clamp(
        std::time::Duration::from_millis(5),
        std::time::Duration::from_secs(1),
    )
}

/// Spawns the idle-session sweeper: wakes every [`sweep_interval`], evicts
/// sessions idle past `ttl`, and exits promptly when `stop` is raised (it
/// sleeps in short ticks so server shutdown never waits a full interval).
fn spawn_ttl_sweeper(
    registry: Arc<SessionRegistry>,
    stop: Arc<AtomicBool>,
    ttl: std::time::Duration,
) -> JoinHandle<()> {
    let interval = sweep_interval(ttl);
    std::thread::Builder::new()
        .name("fairank-ttl-sweeper".into())
        .spawn(move || {
            let tick = interval.min(std::time::Duration::from_millis(10));
            let mut since_sweep = std::time::Duration::ZERO;
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(tick);
                since_sweep += tick;
                if since_sweep >= interval {
                    registry.evict_idle(ttl);
                    since_sweep = std::time::Duration::ZERO;
                }
            }
        })
        .expect("sweeper thread spawns")
}

/// What a wire client is allowed to run (see [`ServerConfig`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct DispatchPolicy {
    /// Permit `load`/`save`/`open`/`export`/`scenario <file>` from the
    /// wire.
    pub allow_fs_commands: bool,
    /// Permit registry-admin commands (`sessions`, `evict`) from the wire.
    pub admin: bool,
}

fn forbidden(message: &str) -> Reply {
    Reply::err(ErrorResponse::new("forbidden", message))
}

/// Where a streamed scenario reply delivers per-cell statistics: a
/// callback the connection layer injects, invoked from worker threads the
/// moment each plan cell finishes — before the plan's reduce assembles
/// the final report. The connection layer turns each emission into one
/// `{"chunk": CellStat}` wire line.
#[derive(Clone)]
pub struct ChunkSink(Arc<dyn Fn(&fairank_session::CellStat) + Send + Sync>);

impl ChunkSink {
    /// Wraps a delivery callback. The callback runs on pool worker
    /// threads, possibly concurrently for cells finishing together — it
    /// must serialize its own output (one whole line at a time).
    pub fn new(deliver: impl Fn(&fairank_session::CellStat) + Send + Sync + 'static) -> Self {
        ChunkSink(Arc::new(deliver))
    }

    /// Delivers one finished cell's statistics.
    pub fn emit(&self, stat: &fairank_session::CellStat) {
        (self.0)(stat);
    }
}

impl std::fmt::Debug for ChunkSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ChunkSink(..)")
    }
}

/// Per-request operational context threaded from the connection layer
/// into [`dispatch_with`]: the cancellation scope compute must poll, plus
/// the admission limits in force.
#[derive(Debug, Clone, Default)]
pub struct RequestContext {
    /// Cancellation scope (request deadline, disconnect token, global
    /// shutdown token). Compute-class commands poll it cooperatively.
    pub budget: RunBudget,
    /// Per-session in-flight cap (0 = unlimited).
    pub session_inflight_cap: usize,
    /// Set while the server drains: all requests are refused with the
    /// structured `shutting_down` error.
    pub draining: bool,
    /// Present when the client opted into chunked scenario replies
    /// (`"stream": true`): each finished cell's stats are emitted here
    /// before the terminal reply. `None` (the default) streams nothing.
    pub chunk_sink: Option<ChunkSink>,
}

/// The back-off hint attached to `overloaded` refusals. A constant (not
/// measured) hint: long enough that a retry storm cannot re-saturate the
/// queue instantly, short enough that a drained queue is refilled fast.
pub const RETRY_AFTER_MS: u64 = 100;

/// What a pool job reports back: the command result, or the discovery
/// that the session mutex was poisoned by an earlier panic.
enum Exec {
    Done(Result<Response, fairank_session::SessionError>),
    Poisoned,
}

/// Replaces a poisoned session with a fresh one and reports it. The next
/// request under the name gets a clean, working session.
fn quarantine(registry: &SessionRegistry, session_name: &str) -> Reply {
    registry.replace_poisoned(session_name);
    Reply::session_poisoned(session_name)
}

/// Executes one parsed request against the registry, routing CPU-bound
/// commands through the pool. This is the whole request semantics — the
/// TCP layer only adds line framing (and the per-request context) around
/// it. The default-context form is [`dispatch`].
pub fn dispatch_with(
    registry: &SessionRegistry,
    pool: &WorkerPool,
    request: Request,
    policy: DispatchPolicy,
    ctx: &RequestContext,
) -> Reply {
    if ctx.draining {
        return Reply::shutting_down();
    }
    let session_name = request.session_name().to_string();
    // A structured scenario spec takes precedence over the command string.
    let command = match request.scenario {
        Some(spec) => Command::RunScenario {
            spec: Box::new(spec),
        },
        None => match Command::parse(request.command_text()) {
            Ok(command) => command,
            Err(e) => return Reply::from_result(Err(e)),
        },
    };
    if command.touches_filesystem() && !policy.allow_fs_commands {
        return forbidden(
            "filesystem commands (load/save/open/export/scenario <file>) are \
             disabled on this server (start it with --allow-fs to permit them)",
        );
    }
    // Registry admin never reaches a session: it operates on the registry
    // itself, and only over an `--admin` server.
    if command.is_registry_admin() {
        if !policy.admin {
            return forbidden(
                "registry admin commands (sessions/evict) are disabled on this \
                 server (start it with --admin to permit them)",
            );
        }
        return match command {
            Command::Sessions => Reply::ok(Response::SessionList(registry_stats_view(registry))),
            Command::Evict { name } => match registry.evict(&name) {
                Ok(()) => Reply::ok(Response::SessionEvicted { name }),
                Err(e) => Reply::err(ErrorResponse::new("unknown_session", e.to_string())),
            },
            _ => unreachable!("is_registry_admin covers exactly these commands"),
        };
    }
    let lease = registry.lease(&session_name);
    // A session poisoned by an earlier panic is quarantined up front: the
    // half-mutated state is discarded, this request gets the structured
    // `session_poisoned` report, and the next one a fresh session.
    if lease.is_poisoned() {
        return quarantine(registry, &session_name);
    }
    let is_scenario = matches!(
        command,
        Command::RunScenario { .. } | Command::RunScenarioFile { .. }
    );
    // Admission: compute-class requests (heavy commands and scenario
    // plans) count against the session's in-flight cap; the guard frees
    // the slot when the reply is decided, on every path out.
    let _slot = if is_scenario || command.is_compute_heavy() {
        match lease.try_admit(ctx.session_inflight_cap) {
            Some(guard) => Some(guard),
            None => {
                return Reply::overloaded(
                    format!(
                        "session {session_name:?} already has {} request(s) in \
                         flight (cap {})",
                        lease.in_flight(),
                        ctx.session_inflight_cap
                    ),
                    RETRY_AFTER_MS,
                )
            }
        }
    } else {
        None
    };
    // Scenario plans do not occupy one worker slot for their whole run:
    // the connection thread compiles the plan and fans the independent
    // cells across the pool, so an N-cell grid saturates all workers.
    if is_scenario {
        return match run_scenario_on_pool(
            &lease,
            command,
            pool,
            &session_name,
            ctx,
            registry.cell_cache(),
        ) {
            ScenarioExec::Done(result) => Reply::from_result(result),
            // A panic during compile or reduce left the session
            // half-mutated (and its mutex poisoned): quarantine instead
            // of serving the suspect state.
            ScenarioExec::Poisoned => quarantine(registry, &session_name),
        };
    }
    let result = if command.is_compute_heavy() {
        let handle = Arc::clone(lease.handle());
        let budget = ctx.budget.clone();
        match pool.try_run_tagged(&session_name, move || match handle.lock() {
            Ok(mut session) => Exec::Done(apply_with_budget(&mut session, command, budget)),
            Err(_) => Exec::Poisoned,
        }) {
            // Every worker busy and the queue full: structured
            // backpressure instead of blocking the connection thread.
            Err(PoolFull) => {
                return Reply::overloaded(
                    "server is at capacity (all workers busy, queue full)",
                    RETRY_AFTER_MS,
                )
            }
            Ok(Some(Exec::Done(result))) => result,
            Ok(Some(Exec::Poisoned)) => return quarantine(registry, &session_name),
            // The job panicked; the worker survived. If the panic happened
            // while holding the session lock, the state is suspect —
            // quarantine it; otherwise the session stays serviceable.
            Ok(None) => {
                if lease.is_poisoned() {
                    return quarantine(registry, &session_name);
                }
                return Reply::err(ErrorResponse::new(
                    "internal",
                    "command panicked while executing",
                ));
            }
        }
    } else {
        match lease.handle().lock() {
            Ok(mut session) => apply_with_budget(&mut session, command, ctx.budget.clone()),
            Err(_) => return quarantine(registry, &session_name),
        }
    };
    Reply::from_result(result)
}

/// Snapshot of the registry for the `sessions` admin reply: the live
/// session names plus the shared dataset-store and cell-cache counters.
fn registry_stats_view(registry: &SessionRegistry) -> fairank_session::response::RegistryStatsView {
    let store = registry.store().stats();
    let cache = registry.cell_cache().stats();
    fairank_session::response::RegistryStatsView {
        sessions: registry.names(),
        store_datasets: store.datasets as u64,
        store_bytes: store.bytes as u64,
        cell_cache_entries: cache.entries,
        cell_cache_hits: cache.hits,
        cell_cache_misses: cache.misses,
        cell_cache_evictions: cache.evictions,
    }
}

/// [`dispatch_with`] under the default context: no deadline, no caps, not
/// draining — the semantics embedded callers and tests relied on before
/// operational limits existed.
pub fn dispatch(
    registry: &SessionRegistry,
    pool: &WorkerPool,
    request: Request,
    policy: DispatchPolicy,
) -> Reply {
    dispatch_with(registry, pool, request, policy, &RequestContext::default())
}

/// What the scenario path reports back: the plan's result, or the
/// discovery that the session is (or just became) poisoned and must be
/// quarantined instead of served.
enum ScenarioExec {
    Done(Result<Response, fairank_session::SessionError>),
    Poisoned,
}

/// Compiles a scenario command against the session and executes its cells
/// on the worker pool — one pool job per cell (tagged with the session so
/// the queue drains fairly), all enqueued before any is awaited, so the
/// grid runs as wide as the pool allows.
///
/// The session lock is held only around compile and the final reduce,
/// NEVER while waiting on the pool: a regular heavy command for the same
/// session runs as a pool job that starts by taking this lock, so a
/// connection thread that held it while blocking on workers would wedge
/// the whole pool (worker waits on the lock, lock holder waits on
/// workers). Releasing it between the phases lets interleaved commands
/// proceed; panel ids are assigned at reduce time against the
/// then-current session, exactly as two users typing concurrently would
/// see.
///
/// Both lock-holding phases run panic-contained and report
/// [`ScenarioExec::Poisoned`] when the lock is poisoned — found so, or
/// poisoned right here by a panicking compile/reduce (the reduce commits
/// panels via `Session::commit_panel`, which can genuinely panic
/// mid-mutation). The old code `unwrap_or_else(PoisonError::into_inner)`d
/// through poison at both sites and served the half-mutated session;
/// the caller now routes `Poisoned` through the registry's quarantine
/// instead, so the name maps to a fresh session.
fn run_scenario_on_pool(
    lease: &SessionLease,
    command: Command,
    pool: &WorkerPool,
    session_name: &str,
    ctx: &RequestContext,
    cache: &Arc<fairank_session::CellCache>,
) -> ScenarioExec {
    use fairank_session::plan;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let handle = lease.handle();
    let spec = match command {
        Command::RunScenario { spec } => *spec,
        // Only reachable under `--allow-fs`.
        Command::RunScenarioFile { path } => {
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(e) => return ScenarioExec::Done(Err(e.into())),
            };
            match serde_json::from_str(&text) {
                Ok(spec) => spec,
                Err(e) => {
                    return ScenarioExec::Done(Err(fairank_session::SessionError::Json(
                        format!("spec {path}: {e}"),
                    )))
                }
            }
        }
        _ => unreachable!("caller matched scenario commands"),
    };
    // Compile under the session lock. The lock is acquired *inside* the
    // contained closure so a compile panic poisons it (guard unwinds) and
    // is reported as such, not `into_inner`d past.
    let budget = &ctx.budget;
    let compiled = match catch_unwind(AssertUnwindSafe(|| {
        let session = match handle.lock() {
            Ok(session) => session,
            Err(_) => return None,
        };
        // The request's cancellation scope rides into every cell: a grid
        // hitting its deadline aborts all in-flight cells cooperatively.
        Some(plan::compile(&session, &spec).map(|plan| plan.with_run_budget(budget)))
    })) {
        Ok(Some(Ok(compiled))) => compiled,
        Ok(Some(Err(e))) => return ScenarioExec::Done(Err(e)),
        Ok(None) | Err(_) => return ScenarioExec::Poisoned,
    };
    let sink = ctx.chunk_sink.clone();
    let executed = compiled.execute_with(|cells| {
        pool.run_batch_tagged(
            session_name,
            cells
                .into_iter()
                .map(|cell| {
                    // Grid cells consult the registry-wide cell cache: a
                    // repeated dataset × configuration is served from the
                    // memoized outcome instead of recomputed.
                    let cache = Arc::clone(cache);
                    let sink = sink.clone();
                    move || {
                        let result = cell.execute_cached(&cache);
                        // Streaming: ship the finished cell's stats now,
                        // while sibling cells are still computing.
                        if let (Some(sink), Ok(cell_result)) = (&sink, &result) {
                            sink.emit(cell_result.stat());
                        }
                        result
                    }
                })
                .collect(),
        )
        .into_iter()
        .map(|result| {
            result.unwrap_or_else(|| {
                Err(fairank_session::SessionError::Internal(
                    "a scenario cell panicked while executing".into(),
                ))
            })
        })
        .collect()
    });
    // Reduce under the session lock, contained the same way: a panic in
    // `commit_panel` leaves half the panels committed — quarantine, don't
    // serve.
    match catch_unwind(AssertUnwindSafe(|| {
        let mut session = match handle.lock() {
            Ok(session) => session,
            Err(_) => return None,
        };
        Some(executed.finish(Some(&mut session)))
    })) {
        Ok(Some(result)) => ScenarioExec::Done(result.map(Response::Scenario)),
        Ok(None) | Err(_) => ScenarioExec::Poisoned,
    }
}

/// The per-connection operational limits (copied out of the server).
#[derive(Debug, Clone, Copy)]
struct ConnLimits {
    request_timeout: Option<Duration>,
    session_inflight_cap: usize,
}

/// How often the disconnect watcher probes the peer while a request is in
/// flight. Short enough that an abandoned search stops within tens of
/// milliseconds of the client vanishing.
const DISCONNECT_PROBE: Duration = Duration::from_millis(25);

/// Watches the connection's read side while a request executes: a peer
/// that closes (EOF) or errors mid-request cancels the request's token
/// with [`CancelReason::Disconnected`], so the compute it abandoned stops
/// burning workers. Returns the watcher thread; the caller flips `done`
/// and joins it once the reply is decided.
///
/// The probe uses a socket-level read timeout, which is shared with the
/// connection's reader (`SO_RCVTIMEO` is per socket, not per clone) — the
/// watcher must clear it before exiting, and the caller must join the
/// watcher before the next blocking read.
fn spawn_disconnect_watcher(
    stream: &TcpStream,
    token: CancelToken,
    done: Arc<AtomicBool>,
) -> Option<JoinHandle<()>> {
    let probe = stream.try_clone().ok()?;
    std::thread::Builder::new()
        .name("fairank-conn-watch".into())
        .spawn(move || {
            if probe.set_read_timeout(Some(DISCONNECT_PROBE)).is_err() {
                return;
            }
            let mut byte = [0u8; 1];
            while !done.load(Ordering::SeqCst) {
                match probe.peek(&mut byte) {
                    Ok(0) => {
                        token.cancel(CancelReason::Disconnected);
                        break;
                    }
                    // Bytes waiting (a pipelined request): the peer is
                    // alive; don't spin on the instantly-ready peek.
                    Ok(_) => std::thread::sleep(DISCONNECT_PROBE),
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => {
                        token.cancel(CancelReason::Disconnected);
                        break;
                    }
                }
            }
            // Fault injection (debug builds only): leave the socket-level
            // read timeout armed, exactly the teardown failure the read
            // loop's timeout-retry path must survive.
            if !fault::active(fault::STALE_TIMEOUT) {
                let _ = probe.set_read_timeout(None);
            }
        })
        .ok()
}

fn serve_connection(
    stream: TcpStream,
    registry: &SessionRegistry,
    pool: &WorkerPool,
    policy: DispatchPolicy,
    state: &ServeState,
    limits: ConnLimits,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let conn_id = state.register_conn(&stream);
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        // Read raw bytes, capped per request line: a peer streaming bytes
        // without a newline must not grow this buffer without bound, and
        // the size check must happen *before* UTF-8 validation so an
        // oversized (or binary) line still gets a structured refusal
        // instead of a silent drop.
        let mut buf: Vec<u8> = Vec::new();
        let mut dead = false;
        loop {
            let remaining = MAX_REQUEST_BYTES.saturating_sub(buf.len() as u64);
            match (&mut reader).take(remaining).read_until(b'\n', &mut buf) {
                // EOF between requests: the peer hung up normally.
                Ok(0) if buf.is_empty() => {
                    dead = true;
                    break;
                }
                // EOF mid-line (process the partial line below, like the
                // peer had sent a final unterminated request) — or the
                // line hit the byte cap (refused below).
                Ok(0) => break,
                Ok(_) if buf.ends_with(b"\n") => break,
                // Short read without EOF or newline: keep accumulating.
                Ok(_) => {}
                // A timeout error does NOT mean the peer is gone — it
                // means a socket-level read timeout was armed (the
                // disconnect watcher's probe timeout is per *socket*, not
                // per clone, and a watcher that failed its teardown leaves
                // it set). Treating it as fatal silently dropped live
                // connections; instead clear the stale timeout and retry
                // the read. Bytes already read stay in `buf` — the line
                // reassembles across retries, still under the byte cap.
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    let _ = reader.get_ref().set_read_timeout(None);
                }
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        if dead {
            break;
        }
        if !buf.ends_with(b"\n") && buf.len() as u64 >= MAX_REQUEST_BYTES {
            // Oversized request: answer once, then drop the connection
            // (the rest of the line cannot be resynchronized).
            send_reply(&mut writer, &Reply::request_too_large(MAX_REQUEST_BYTES));
            break;
        }
        let Ok(line) = std::str::from_utf8(&buf) else {
            send_reply(
                &mut writer,
                &Reply::protocol_error("request line is not valid UTF-8"),
            );
            break;
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let reply = match serde_json::from_str::<Request>(line) {
            Ok(request) => {
                // Assemble the request's cancellation scope: deadline
                // (when configured), a per-request token the disconnect
                // watcher can fire, and the server's shutdown token.
                let request_token = CancelToken::new();
                let mut budget = RunBudget::unlimited()
                    .with_token(request_token.clone())
                    .with_token(state.shutdown_token.clone());
                if let Some(timeout) = limits.request_timeout {
                    budget = budget.with_timeout(timeout);
                }
                // Streamed scenario replies write their chunk lines
                // through a serialized clone of this connection's write
                // half. Cells finish on pool workers while this thread
                // blocks inside dispatch, so every chunk is flushed
                // before the terminal reply is written below.
                let chunk_sink = if request.wants_stream() {
                    writer.try_clone().ok().map(|chunk_writer| {
                        let chunk_writer = Mutex::new(chunk_writer);
                        ChunkSink::new(move |stat| {
                            send_chunk(&chunk_writer, stat);
                        })
                    })
                } else {
                    None
                };
                let ctx = RequestContext {
                    budget,
                    session_inflight_cap: limits.session_inflight_cap,
                    draining: state.draining.load(Ordering::SeqCst),
                    chunk_sink,
                };
                let done = Arc::new(AtomicBool::new(false));
                let watcher =
                    spawn_disconnect_watcher(&writer, request_token, Arc::clone(&done));
                state.active_requests.fetch_add(1, Ordering::SeqCst);
                let reply = dispatch_with(registry, pool, request, policy, &ctx);
                state.active_requests.fetch_sub(1, Ordering::SeqCst);
                done.store(true, Ordering::SeqCst);
                if let Some(watcher) = watcher {
                    // Must finish before the next blocking read: the
                    // watcher owns the socket's read timeout.
                    let _ = watcher.join();
                }
                reply
            }
            Err(e) => Reply::protocol_error(format!("malformed request: {e}")),
        };
        let quit = matches!(reply, Reply::ok(Response::Quit));
        let Ok(text) = serde_json::to_string(&reply) else {
            break;
        };
        // Fault injection (debug builds only; `fault::active` is a
        // constant `false` in release, so both branches compile away).
        if fault::active(fault::DROP_CONN) {
            break; // vanish without a reply
        }
        if fault::active(fault::TORN_WRITE) {
            // Write half the reply and cut the connection: clients must
            // treat the unterminated line as malformed, not parse it.
            let half = text.len() / 2;
            let _ = writer.write_all(&text.as_bytes()[..half]);
            let _ = writer.flush();
            break;
        }
        if writer
            .write_all(text.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if quit {
            break; // `quit` ends the connection, not the server
        }
    }
    if let Some(id) = conn_id {
        state.deregister_conn(id);
    }
}

/// Serializes and writes one reply line, ignoring write failures (the
/// connection is ending or the peer is gone either way).
pub(crate) fn send_reply(writer: &mut TcpStream, reply: &Reply) {
    if let Ok(text) = serde_json::to_string(reply) {
        let _ = writer
            .write_all(text.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush());
    }
}

/// Serializes and writes one `{"chunk": CellStat}` line through the
/// serialized writer clone, ignoring write failures (a vanished streaming
/// client is noticed by the disconnect watcher, not here).
fn send_chunk(writer: &Mutex<TcpStream>, stat: &fairank_session::CellStat) {
    let Ok(text) = serde_json::to_string(&crate::protocol::Frame::chunk(stat.clone())) else {
        return;
    };
    let mut writer = writer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = writer
        .write_all(text.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_setup() -> (SessionRegistry, WorkerPool) {
        (SessionRegistry::new(), WorkerPool::new(2, 4))
    }

    const OPEN: DispatchPolicy = DispatchPolicy {
        allow_fs_commands: true,
        admin: false,
    };
    const LOCKED: DispatchPolicy = DispatchPolicy {
        allow_fs_commands: false,
        admin: false,
    };
    const ADMIN: DispatchPolicy = DispatchPolicy {
        allow_fs_commands: false,
        admin: true,
    };

    #[test]
    fn dispatch_routes_to_named_sessions() {
        let (registry, pool) = test_setup();
        let reply = dispatch(
            &registry,
            &pool,
            Request::in_session("a", "generate pop biased n=40 seed=1"),
            LOCKED,
        );
        assert!(reply.is_ok());
        // The dataset exists in `a`, not in `b`.
        let reply = dispatch(&registry, &pool, Request::in_session("a", "datasets"), LOCKED);
        match reply.into_result().unwrap() {
            Response::DatasetList(entries) => assert_eq!(entries.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        let reply = dispatch(&registry, &pool, Request::in_session("b", "datasets"), LOCKED);
        match reply.into_result().unwrap() {
            Response::DatasetList(entries) => assert!(entries.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(registry.names(), vec!["a", "b"]);
    }

    #[test]
    fn dispatch_reports_structured_errors() {
        let (registry, pool) = test_setup();
        let reply = dispatch(&registry, &pool, Request::new("show 7"), LOCKED);
        let err = reply.into_result().unwrap_err();
        assert_eq!(err.kind, "unknown_panel");
        let reply = dispatch(&registry, &pool, Request::new("bogus"), LOCKED);
        assert_eq!(reply.into_result().unwrap_err().kind, "command");
    }

    #[test]
    fn filesystem_commands_are_refused_unless_allowed() {
        let (registry, pool) = test_setup();
        for line in [
            "load d /etc/passwd",
            "save /tmp/exfil",
            "open /tmp/exfil",
            "export 0 /tmp/exfil.json",
        ] {
            let parsed = Command::parse(line).unwrap();
            assert!(parsed.touches_filesystem(), "{line}");
            let reply = dispatch(&registry, &pool, Request::new(line), LOCKED);
            assert_eq!(
                reply.into_result().unwrap_err().kind,
                "forbidden",
                "{line} must be refused"
            );
        }
        // No session state was touched by refused commands.
        assert!(registry.is_empty() || registry.names() == vec!["default"]);
        // The same command under an open policy reaches the session layer
        // (and fails there for its own reasons, not with `forbidden`).
        let reply = dispatch(&registry, &pool, Request::new("export 0 /tmp/x.json"), OPEN);
        assert_eq!(reply.into_result().unwrap_err().kind, "unknown_panel");
    }

    #[test]
    fn heavy_commands_run_on_the_pool() {
        let (registry, pool) = test_setup();
        for line in [
            "generate pop biased n=60 seed=2",
            "define f rating*1.0",
        ] {
            assert!(dispatch(&registry, &pool, Request::new(line), LOCKED).is_ok());
        }
        // `quantify` is compute-heavy: is_compute_heavy gates the pool path.
        assert!(Command::parse("quantify pop f").unwrap().is_compute_heavy());
        assert!(!Command::parse("panels").unwrap().is_compute_heavy());
        let reply = dispatch(&registry, &pool, Request::new("quantify pop f"), LOCKED);
        match reply.into_result().unwrap() {
            Response::PanelCreated(view) => {
                assert_eq!(view.id, 0);
                assert!(view.unfairness > 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stream_reaudits_run_on_the_pool() {
        let (registry, pool) = test_setup();
        // `stream` is compute-heavy, so it rides the generic pool path and
        // gets the per-request budget stamped like any other search.
        assert!(Command::parse("stream taskrabbit errands")
            .unwrap()
            .is_compute_heavy());
        let reply = dispatch(
            &registry,
            &pool,
            Request::new("stream taskrabbit errands n=80 seed=3 rounds=2 stream-seed=9"),
            LOCKED,
        );
        match reply.into_result().unwrap() {
            Response::Stream(view) => {
                assert_eq!(view.outcome.job_id, "errands");
                assert_eq!(view.outcome.rounds.len(), 3); // round 0 + 2 churn rounds
                assert!(view.outcome.total_reused_histograms() > 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A stream scenario compiles per-criterion cells onto the pool.
        let reply = dispatch(
            &registry,
            &pool,
            Request::new(
                "scenario stream taskrabbit errands n=80 seed=3 rounds=2 stream-seed=9 \
                 aggs=mean,max",
            ),
            LOCKED,
        );
        match reply.into_result().unwrap() {
            Response::Scenario(report) => {
                assert_eq!(report.perspective, "stream");
                assert_eq!(report.cells.len(), 2);
                assert!(report.cells.iter().all(|c| c.delta_reused_histograms > 0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn registry_admin_is_gated_by_policy() {
        let (registry, pool) = test_setup();
        registry.attach_or_create("a");
        registry.attach_or_create("b");
        // Without --admin: forbidden, nothing evicted.
        for line in ["sessions", "evict a"] {
            let reply = dispatch(&registry, &pool, Request::new(line), LOCKED);
            assert_eq!(reply.into_result().unwrap_err().kind, "forbidden", "{line}");
        }
        assert_eq!(registry.len(), 2);
        // With --admin: list and evict operate on the registry.
        let reply = dispatch(&registry, &pool, Request::new("sessions"), ADMIN);
        match reply.into_result().unwrap() {
            Response::SessionList(view) => {
                assert_eq!(view.sessions, vec!["a", "b"]);
                // Nothing loaded or quantified yet: the shared store and
                // cell cache report empty.
                assert_eq!(view.store_datasets, 0);
                assert_eq!(view.cell_cache_entries, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        let reply = dispatch(&registry, &pool, Request::new("evict a"), ADMIN);
        match reply.into_result().unwrap() {
            Response::SessionEvicted { name } => assert_eq!(name, "a"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(registry.names(), vec!["b"]);
        let reply = dispatch(&registry, &pool, Request::new("evict ghost"), ADMIN);
        assert_eq!(reply.into_result().unwrap_err().kind, "unknown_session");
        // Admin commands never create a session as a side effect.
        assert_eq!(registry.names(), vec!["b"]);
    }

    #[test]
    fn scenario_requests_fan_cells_across_the_pool() {
        let (registry, pool) = test_setup();
        for line in [
            "generate pop biased n=60 seed=2",
            "define f rating*1.0",
            "define g rating*0.5+language_test*0.5",
        ] {
            assert!(dispatch(&registry, &pool, Request::new(line), LOCKED).is_ok());
        }
        // Command-string form.
        let reply = dispatch(
            &registry,
            &pool,
            Request::new("scenario grid pop f,g aggs=mean,max"),
            LOCKED,
        );
        let response = reply.into_result().unwrap();
        let Response::Scenario(report) = &response else {
            panic!("expected Scenario, got {response:?}");
        };
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.perspective, "grid");
        // Panels were committed into the session behind the wire.
        let reply = dispatch(&registry, &pool, Request::new("panels"), LOCKED);
        match reply.into_result().unwrap() {
            Response::PanelList(entries) => assert_eq!(entries.len(), 4),
            other => panic!("unexpected {other:?}"),
        }
        // Structured-spec form (no command string at all).
        let spec = fairank_session::ScenarioSpec::new(
            fairank_session::plan::Perspective::Grid {
                datasets: vec!["pop".into()],
                functions: vec!["f".into()],
                filter: None,
            },
        );
        let reply = dispatch(
            &registry,
            &pool,
            Request::scenario(crate::protocol::DEFAULT_SESSION, spec),
            LOCKED,
        );
        let Response::Scenario(report) = reply.into_result().unwrap() else {
            panic!("expected Scenario");
        };
        assert_eq!(report.cells.len(), 1);
        // A scenario spec file is a filesystem command: refused by default.
        let reply = dispatch(
            &registry,
            &pool,
            Request::new("scenario /tmp/spec.json"),
            LOCKED,
        );
        assert_eq!(reply.into_result().unwrap_err().kind, "forbidden");
    }

    #[test]
    fn concurrent_scenario_and_heavy_command_on_one_worker_do_not_deadlock() {
        // Regression: the scenario path must not hold the session lock
        // while blocking on pool results. With a single worker, a heavy
        // command for the same session runs as a pool job that starts by
        // taking that lock — if the scenario's connection thread held it,
        // the lone worker would block forever and the queued cells would
        // never run.
        let registry = Arc::new(SessionRegistry::new());
        // Queue deep enough that the heavy command's (non-blocking)
        // admission is never refused while the scenario floods the pool —
        // this test is about lock ordering, not backpressure.
        let pool = Arc::new(WorkerPool::new(1, 8));
        for line in ["generate pop biased n=60 seed=2", "define f rating*1.0"] {
            assert!(dispatch(&registry, &pool, Request::new(line), LOCKED).is_ok());
        }
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        for line in ["scenario grid pop f aggs=mean,max,min", "quantify pop f"] {
            let registry = Arc::clone(&registry);
            let pool = Arc::clone(&pool);
            let done = done_tx.clone();
            std::thread::spawn(move || {
                let reply = dispatch(&registry, &pool, Request::new(line), LOCKED);
                done.send((line, reply.is_ok())).unwrap();
            });
        }
        for _ in 0..2 {
            let (line, ok) = done_rx
                .recv_timeout(std::time::Duration::from_secs(60))
                .expect("a request wedged: scenario fan-out deadlocked the pool");
            assert!(ok, "{line} failed");
        }
        // All four panels (3 scenario cells + 1 quantify) landed.
        let reply = dispatch(&registry, &pool, Request::new("panels"), LOCKED);
        match reply.into_result().unwrap() {
            Response::PanelList(entries) => assert_eq!(entries.len(), 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn server_binds_ephemeral_and_stops() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        assert_ne!(addr.port(), 0);
        let handle = server.spawn().unwrap();
        assert_eq!(handle.addr(), addr);
        handle.stop(); // must not hang
    }
}
