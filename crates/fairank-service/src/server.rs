//! The TCP front end: `std::net` only, thread per connection, heavy
//! requests routed through the bounded [`WorkerPool`].
//!
//! Connection threads are cheap (they block on socket reads); the CPU
//! budget is governed by the pool, so 100 idle clients cost 100 parked
//! threads while at most `workers` quantifications run at once.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use fairank_session::command::{apply, Command};
use fairank_session::Response;

use crate::pool::WorkerPool;
use crate::protocol::{Reply, Request};
use crate::registry::SessionRegistry;

/// Hard cap on one request line. A client that streams bytes without a
/// newline is cut off here instead of growing the read buffer without
/// bound; 1 MiB comfortably fits any real command (they are REPL lines).
pub const MAX_REQUEST_BYTES: u64 = 1 << 20;

/// Tunables of a [`Server`].
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Worker threads for quantify-class requests (0 = size to the host).
    pub workers: usize,
    /// Pending heavy jobs the queue holds before submitters block
    /// (0 = twice the worker count).
    pub queue_depth: usize,
    /// Allow wire clients to run commands that touch the server's
    /// filesystem (`load`, `save`, `open`, `export`). Off by default: a
    /// reachable port must not hand out file read/write on the host.
    pub allow_fs_commands: bool,
}

/// A running multi-session FaiRank server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    registry: Arc<SessionRegistry>,
    pool: Arc<WorkerPool>,
    allow_fs_commands: bool,
    stop: Arc<AtomicBool>,
}

/// Handle to a server running on a background thread (see
/// [`Server::spawn`]).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener (use port 0 for an ephemeral port) and prepares
    /// the registry and worker pool. Nothing is served until [`Server::run`]
    /// or [`Server::spawn`].
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let workers = if config.workers == 0 {
            WorkerPool::default_workers()
        } else {
            config.workers
        };
        let depth = if config.queue_depth == 0 {
            workers * 2
        } else {
            config.queue_depth
        };
        Ok(Server {
            listener,
            registry: Arc::new(SessionRegistry::new()),
            pool: Arc::new(WorkerPool::new(workers, depth)),
            allow_fs_commands: config.allow_fs_commands,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (the actual port when 0 was requested).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared session registry (for in-process inspection/eviction).
    pub fn registry(&self) -> Arc<SessionRegistry> {
        Arc::clone(&self.registry)
    }

    /// Serves connections on the calling thread until stopped.
    pub fn run(self) {
        let policy = DispatchPolicy {
            allow_fs_commands: self.allow_fs_commands,
        };
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let registry = Arc::clone(&self.registry);
            let pool = Arc::clone(&self.pool);
            std::thread::spawn(move || serve_connection(stream, &registry, &pool, policy));
        }
    }

    /// Serves on a background thread, returning a [`ServerHandle`] for the
    /// address and shutdown.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::clone(&self.stop);
        let thread = std::thread::Builder::new()
            .name("fairank-server".into())
            .spawn(move || self.run())?;
        Ok(ServerHandle {
            addr,
            stop,
            thread: Some(thread),
        })
    }
}

impl ServerHandle {
    /// The address the server accepts on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections and joins the accept thread.
    /// Already-open connections finish at their own pace.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.addr);
            let _ = thread.join();
        }
    }
}

/// What a wire client is allowed to run (see [`ServerConfig`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct DispatchPolicy {
    /// Permit `load`/`save`/`open`/`export` from the wire.
    pub allow_fs_commands: bool,
}

/// Executes one parsed request against the registry, routing CPU-bound
/// commands through the pool. This is the whole request semantics — the
/// TCP layer only adds line framing around it.
pub fn dispatch(
    registry: &SessionRegistry,
    pool: &WorkerPool,
    request: Request,
    policy: DispatchPolicy,
) -> Reply {
    let command = match Command::parse(&request.command) {
        Ok(command) => command,
        Err(e) => return Reply::from_result(Err(e)),
    };
    if command.touches_filesystem() && !policy.allow_fs_commands {
        return Reply::err(fairank_session::ErrorResponse {
            kind: "forbidden".to_string(),
            message: "filesystem commands (load/save/open/export) are disabled \
                      on this server (start it with --allow-fs to permit them)"
                .to_string(),
        });
    }
    let handle = registry.attach_or_create(request.session_name());
    let result = if command.is_compute_heavy() {
        match pool.run(move || {
            let mut session = handle.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            apply(&mut session, command)
        }) {
            Some(result) => result,
            // The job panicked; the worker survived, the session may be
            // partially mutated but stays serviceable.
            None => {
                return Reply::err(fairank_session::ErrorResponse {
                    kind: "internal".to_string(),
                    message: "command panicked while executing".to_string(),
                })
            }
        }
    } else {
        let mut session = handle.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        apply(&mut session, command)
    };
    Reply::from_result(result)
}

fn serve_connection(
    stream: TcpStream,
    registry: &SessionRegistry,
    pool: &WorkerPool,
    policy: DispatchPolicy,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let mut line = String::new();
        // Cap each request line: a peer streaming bytes without a newline
        // must not grow this buffer without bound.
        match (&mut reader).take(MAX_REQUEST_BYTES).read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(_) => break, // includes non-UTF-8 input
        }
        if !line.ends_with('\n') && line.len() as u64 >= MAX_REQUEST_BYTES {
            // Oversized request: answer once, then drop the connection
            // (the rest of the line cannot be resynchronized).
            let reply = Reply::protocol_error(format!(
                "request line exceeds {MAX_REQUEST_BYTES} bytes"
            ));
            if let Ok(text) = serde_json::to_string(&reply) {
                let _ = writer
                    .write_all(text.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"));
            }
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let reply = match serde_json::from_str::<Request>(line) {
            Ok(request) => dispatch(registry, pool, request, policy),
            Err(e) => Reply::protocol_error(format!("malformed request: {e}")),
        };
        let quit = matches!(reply, Reply::ok(Response::Quit));
        let Ok(text) = serde_json::to_string(&reply) else {
            break;
        };
        if writer
            .write_all(text.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if quit {
            break; // `quit` ends the connection, not the server
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_setup() -> (SessionRegistry, WorkerPool) {
        (SessionRegistry::new(), WorkerPool::new(2, 4))
    }

    const OPEN: DispatchPolicy = DispatchPolicy {
        allow_fs_commands: true,
    };
    const LOCKED: DispatchPolicy = DispatchPolicy {
        allow_fs_commands: false,
    };

    #[test]
    fn dispatch_routes_to_named_sessions() {
        let (registry, pool) = test_setup();
        let reply = dispatch(
            &registry,
            &pool,
            Request::in_session("a", "generate pop biased n=40 seed=1"),
            LOCKED,
        );
        assert!(reply.is_ok());
        // The dataset exists in `a`, not in `b`.
        let reply = dispatch(&registry, &pool, Request::in_session("a", "datasets"), LOCKED);
        match reply.into_result().unwrap() {
            Response::DatasetList(entries) => assert_eq!(entries.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        let reply = dispatch(&registry, &pool, Request::in_session("b", "datasets"), LOCKED);
        match reply.into_result().unwrap() {
            Response::DatasetList(entries) => assert!(entries.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(registry.names(), vec!["a", "b"]);
    }

    #[test]
    fn dispatch_reports_structured_errors() {
        let (registry, pool) = test_setup();
        let reply = dispatch(&registry, &pool, Request::new("show 7"), LOCKED);
        let err = reply.into_result().unwrap_err();
        assert_eq!(err.kind, "unknown_panel");
        let reply = dispatch(&registry, &pool, Request::new("bogus"), LOCKED);
        assert_eq!(reply.into_result().unwrap_err().kind, "command");
    }

    #[test]
    fn filesystem_commands_are_refused_unless_allowed() {
        let (registry, pool) = test_setup();
        for line in [
            "load d /etc/passwd",
            "save /tmp/exfil",
            "open /tmp/exfil",
            "export 0 /tmp/exfil.json",
        ] {
            let parsed = Command::parse(line).unwrap();
            assert!(parsed.touches_filesystem(), "{line}");
            let reply = dispatch(&registry, &pool, Request::new(line), LOCKED);
            assert_eq!(
                reply.into_result().unwrap_err().kind,
                "forbidden",
                "{line} must be refused"
            );
        }
        // No session state was touched by refused commands.
        assert!(registry.is_empty() || registry.names() == vec!["default"]);
        // The same command under an open policy reaches the session layer
        // (and fails there for its own reasons, not with `forbidden`).
        let reply = dispatch(&registry, &pool, Request::new("export 0 /tmp/x.json"), OPEN);
        assert_eq!(reply.into_result().unwrap_err().kind, "unknown_panel");
    }

    #[test]
    fn heavy_commands_run_on_the_pool() {
        let (registry, pool) = test_setup();
        for line in [
            "generate pop biased n=60 seed=2",
            "define f rating*1.0",
        ] {
            assert!(dispatch(&registry, &pool, Request::new(line), LOCKED).is_ok());
        }
        // `quantify` is compute-heavy: is_compute_heavy gates the pool path.
        assert!(Command::parse("quantify pop f").unwrap().is_compute_heavy());
        assert!(!Command::parse("panels").unwrap().is_compute_heavy());
        let reply = dispatch(&registry, &pool, Request::new("quantify pop f"), LOCKED);
        match reply.into_result().unwrap() {
            Response::PanelCreated(view) => {
                assert_eq!(view.id, 0);
                assert!(view.unfairness > 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn server_binds_ephemeral_and_stops() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        assert_ne!(addr.port(), 0);
        let handle = server.spawn().unwrap();
        assert_eq!(handle.addr(), addr);
        handle.stop(); // must not hang
    }
}
