//! # fairank-service
//!
//! The serving layer over the typed session API: where `fairank-session`
//! is one auditor exploring one workspace, this crate multiplexes many
//! concurrent clients over many named sessions — the shape production
//! fairness-measurement services take (fairness quantified as a *service*
//! queried over many rankings, not a single-user REPL).
//!
//! * [`registry`] — the concurrent session store: named [`Session`]s
//!   behind `RwLock<HashMap<_, Arc<Mutex<_>>>>`, with create / attach /
//!   detach / evict, per-entry last-use tracking, and idle-TTL expiry
//!   (`serve --session-ttl`).
//! * [`sched`] — per-key fair queueing ([`sched::FairQueue`]): bounded
//!   FIFOs per session drained round-robin, the scheduling core under
//!   both the worker pool and the event loop's dispatch stage.
//! * [`pool`] — a bounded worker pool that caps how many quantify-class
//!   (CPU-bound) requests run at once, independent of connection count.
//!   Jobs are tagged by session and drained fairly; scenario plans fan
//!   out through [`pool::WorkerPool::run_batch_tagged`], so an N-cell
//!   grid saturates all workers without starving other sessions.
//! * [`protocol`] — the JSON-lines wire format: one request per line
//!   (`{"session": .., "command": ..}` — or `{"session": .., "scenario":
//!   <spec>}` for structured scenario plans), one reply per line
//!   (`{"ok": Response}` / `{"err": {"kind", "message"}}`). Commands use
//!   the *exact* REPL syntax (`Command::parse`), so any transcript that
//!   works in the CLI works over the wire. Scenario requests may set
//!   `"stream": true` to receive one `{"chunk": CellStat}` line per
//!   finished cell before the final reply. Oversized request lines are
//!   refused with the structured `request_too_large` kind before the
//!   connection closes.
//! * [`eventloop`] — the default TCP front end: a readiness-based event
//!   loop (vendored `polling` shim: epoll on Linux, `poll(2)` fallback)
//!   drives every connection's read-accumulate → dispatch → write-drain
//!   state machine on one thread; a small dispatcher pool executes the
//!   requests. Client disconnects are readiness events (EOF), so
//!   abandoned compute is cancelled without a watcher thread per request.
//! * [`server`] — configuration, dispatch semantics, and the legacy
//!   thread-per-connection front end (`serve --threaded`), kept as the
//!   byte-compatibility baseline the load harness diffs the event loop
//!   against; registry admin (`sessions` / `evict`) is served at the
//!   dispatch layer behind `serve --admin`.
//!
//! [`Session`]: fairank_session::Session

pub mod eventloop;
pub mod pool;
pub mod protocol;
pub mod registry;
pub mod sched;
pub mod server;

pub use pool::{PoolFull, WorkerPool};
pub use protocol::{Frame, Reply, Request, DEFAULT_SESSION};
pub use registry::{RegistryError, SessionLease, SessionRegistry};
pub use server::{
    dispatch, dispatch_with, ChunkSink, DispatchPolicy, RequestContext, Server,
    ServerConfig, ServerHandle, MAX_REQUEST_BYTES, RETRY_AFTER_MS,
};
