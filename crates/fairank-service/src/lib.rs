//! # fairank-service
//!
//! The serving layer over the typed session API: where `fairank-session`
//! is one auditor exploring one workspace, this crate multiplexes many
//! concurrent clients over many named sessions — the shape production
//! fairness-measurement services take (fairness quantified as a *service*
//! queried over many rankings, not a single-user REPL).
//!
//! * [`registry`] — the concurrent session store: named [`Session`]s
//!   behind `RwLock<HashMap<_, Arc<Mutex<_>>>>`, with create / attach /
//!   detach / evict, per-entry last-use tracking, and idle-TTL expiry
//!   (`serve --session-ttl`).
//! * [`pool`] — a bounded worker pool that caps how many quantify-class
//!   (CPU-bound) requests run at once, independent of connection count.
//!   Scenario plans fan out through [`pool::WorkerPool::run_batch`]: an
//!   N-cell grid saturates all workers instead of occupying one slot.
//! * [`protocol`] — the JSON-lines wire format: one request per line
//!   (`{"session": .., "command": ..}` — or `{"session": .., "scenario":
//!   <spec>}` for structured scenario plans), one reply per line
//!   (`{"ok": Response}` / `{"err": {"kind", "message"}}`). Commands use
//!   the *exact* REPL syntax (`Command::parse`), so any transcript that
//!   works in the CLI works over the wire. Oversized request lines are
//!   refused with the structured `request_too_large` kind before the
//!   connection closes.
//! * [`server`] — the TCP front end: `std::net` only, thread per
//!   connection, heavy requests routed through the pool; registry admin
//!   (`sessions` / `evict`) is served at the dispatch layer behind
//!   `serve --admin`.
//!
//! [`Session`]: fairank_session::Session

pub mod pool;
pub mod protocol;
pub mod registry;
pub mod server;

pub use pool::{PoolFull, WorkerPool};
pub use protocol::{Reply, Request, DEFAULT_SESSION};
pub use registry::{RegistryError, SessionLease, SessionRegistry};
pub use server::{
    dispatch, dispatch_with, DispatchPolicy, RequestContext, Server, ServerConfig,
    ServerHandle, MAX_REQUEST_BYTES, RETRY_AFTER_MS,
};
