//! Streaming (chunked) scenario replies over real sockets: one
//! `{"chunk": CellStat}` line per cell as it completes, terminated by the
//! ordinary reply envelope — byte-compatible with non-streamed serving.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use fairank_service::{Frame, Request, Server, ServerConfig, ServerHandle};
use fairank_session::{CellStat, Response, ScenarioReport};

/// One live client connection speaking the JSON-lines protocol.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).expect("connect to server");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            reader,
            writer: stream,
        }
    }

    fn send_line(&mut self, request: &Request) {
        let line = serde_json::to_string(request).expect("serialize request");
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .expect("send request");
    }

    /// Reads one wire line and parses it as a [`Frame`] (chunk or
    /// terminal reply). `None` on EOF.
    fn read_frame(&mut self) -> Option<Frame> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(serde_json::from_str(line.trim()).expect("frame parses")),
            Err(_) => None,
        }
    }

    /// Sends a request and collects frames until the terminal reply:
    /// every mid-stream chunk plus the final decoded response.
    fn send_collect(&mut self, request: &Request) -> (Vec<CellStat>, Response) {
        self.send_line(request);
        let mut chunks = Vec::new();
        loop {
            match self.read_frame().expect("server replied") {
                Frame::chunk(stat) => chunks.push(stat),
                frame => {
                    let response = frame
                        .into_reply()
                        .expect("terminal frame")
                        .into_result()
                        .unwrap_or_else(|e| panic!("request failed: {e}"));
                    return (chunks, response);
                }
            }
        }
    }

    /// Sends a command to a named session and unwraps the success payload.
    fn command(&mut self, session: &str, command: &str) -> Response {
        let (chunks, response) = self.send_collect(&Request::in_session(session, command));
        assert!(
            chunks.is_empty(),
            "non-streamed request produced {} chunks",
            chunks.len()
        );
        response
    }
}

/// A fresh server with the shared cell cache disabled, so two runs of the
/// same grid report identical (all-zero) cache counters and the streamed
/// vs non-streamed reports can be compared bit-for-bit.
fn start_server(threaded: bool) -> ServerHandle {
    Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            queue_depth: 8,
            cell_cache_cap: 0,
            threaded,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
    .spawn()
    .expect("spawn server")
}

/// Loads the deterministic grid fixture into `session`.
fn setup_grid(client: &mut Client, session: &str) {
    client.command(session, "generate pop biased n=100 seed=5");
    client.command(session, "define f rating*1.0");
    client.command(session, "define g rating*0.6+language_test*0.4");
}

const GRID: &str = "scenario grid pop f,g aggs=mean,max,min";

/// The report with every wall-clock field zeroed — the only fields that
/// legitimately differ between two runs of the same deterministic plan.
fn normalized(report: &ScenarioReport) -> ScenarioReport {
    let mut report = report.clone();
    report.total_elapsed_us = 0;
    for cell in &mut report.cells {
        cell.elapsed_us = 0;
    }
    report
}

fn run_streamed(handle: &ServerHandle, session: &str) -> (Vec<CellStat>, ScenarioReport) {
    let mut client = Client::connect(handle);
    setup_grid(&mut client, session);
    let (chunks, response) =
        client.send_collect(&Request::in_session(session, GRID).with_stream());
    let Response::Scenario(report) = response else {
        panic!("expected Scenario, got {response:?}");
    };
    (chunks, report)
}

#[test]
fn streamed_grid_yields_one_chunk_per_cell_then_the_full_report() {
    let handle = start_server(false);
    let (chunks, report) = run_streamed(&handle, "stream");

    // 2 functions × 3 aggregators: six cells, six chunks.
    assert_eq!(report.cells.len(), 6);
    assert_eq!(chunks.len(), report.cells.len());

    // Each chunk is the exact CellStat that lands in the final report —
    // same counters, same elapsed, same unfairness. Chunks arrive in
    // completion order (the pool races cells), so match by label.
    let mut chunks = chunks;
    chunks.sort_by(|a, b| a.label.cmp(&b.label));
    let mut cells = report.cells.clone();
    cells.sort_by(|a, b| a.label.cmp(&b.label));
    assert_eq!(chunks, cells);
    handle.stop();
}

#[test]
fn streamed_report_is_bit_identical_to_the_unstreamed_report() {
    // Same deterministic grid against two fresh servers: the streamed
    // run's terminal report serializes byte-for-byte like the plain one
    // once wall-clock fields are zeroed.
    let streamed_handle = start_server(false);
    let (_, streamed) = run_streamed(&streamed_handle, "bitwise");
    streamed_handle.stop();

    let plain_handle = start_server(false);
    let mut client = Client::connect(&plain_handle);
    setup_grid(&mut client, "bitwise");
    let Response::Scenario(plain) = client.command("bitwise", GRID) else {
        panic!("expected Scenario");
    };
    plain_handle.stop();

    let streamed_json =
        serde_json::to_string(&normalized(&streamed)).expect("serialize streamed report");
    let plain_json = serde_json::to_string(&normalized(&plain)).expect("serialize plain report");
    assert_eq!(streamed_json, plain_json);
}

#[test]
fn threaded_server_streams_the_same_chunks() {
    // The legacy thread-per-connection path shares the chunk-sink plumbing:
    // same cells, same chunk-per-cell contract.
    let handle = start_server(true);
    let (chunks, report) = run_streamed(&handle, "threaded");
    assert_eq!(report.cells.len(), 6);
    assert_eq!(chunks.len(), 6);
    let mut labels: Vec<&str> = chunks.iter().map(|c| c.label.as_str()).collect();
    labels.sort_unstable();
    let mut expected: Vec<&str> = report.cells.iter().map(|c| c.label.as_str()).collect();
    expected.sort_unstable();
    assert_eq!(labels, expected);
    handle.stop();
}

#[test]
fn stream_flag_on_plain_commands_is_harmless() {
    // `stream: true` on a command that has nothing to stream produces the
    // ordinary single terminal reply — no spurious chunk lines.
    let handle = start_server(false);
    let mut client = Client::connect(&handle);
    let (chunks, response) = client.send_collect(&Request::new("help").with_stream());
    assert!(chunks.is_empty());
    assert!(matches!(response, Response::Help));
    handle.stop();
}

#[test]
fn mid_stream_disconnect_leaves_server_and_session_healthy() {
    let handle = start_server(false);

    // Start a streamed grid, read at most one frame, then vanish without
    // draining the rest: the server must drop the remaining chunks (and
    // the terminal reply) on the floor, not wedge or crash.
    {
        let mut client = Client::connect(&handle);
        setup_grid(&mut client, "dropout");
        client.send_line(&Request::in_session("dropout", GRID).with_stream());
        let _ = client.read_frame();
        // Connection dropped here (client goes out of scope mid-stream).
    }

    // A fresh client still gets full service, and the half-streamed
    // session is still attachable and serviceable — the abandoned run
    // must not have poisoned it.
    let mut fresh = Client::connect(&handle);
    assert!(matches!(fresh.command("probe", "help"), Response::Help));
    let Response::Scenario(report) = fresh.command("dropout", GRID) else {
        panic!("expected Scenario after mid-stream disconnect");
    };
    assert_eq!(report.cells.len(), 6);
    assert!(report.cells.iter().all(|c| c.unfairness.is_some()));
    handle.stop();
}
