//! Regression tests for the serving-tier bug fixes:
//!
//! 1. A panic inside a scenario cell commit used to be papered over with
//!    `unwrap_or_else(PoisonError::into_inner)`, serving later requests a
//!    half-mutated session. The scenario path now routes through the
//!    registry's poison quarantine: the caller gets `session_poisoned`
//!    and the next attach gets a fresh session.
//! 2. A disconnect watcher that failed to clear the socket read timeout
//!    left the connection's read loop seeing `WouldBlock`/`TimedOut`,
//!    which it treated as fatal — silently dropping a *live* connection.
//!    The read loop now clears the stale timeout and retries.
//! 3. The TTL sweeper (and admin `evict`) racing an in-flight request:
//!    eviction between lease acquisition and the post-compute commit must
//!    neither resurrect the evicted entry nor double-drop it.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
#[cfg(debug_assertions)]
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

#[cfg(debug_assertions)]
use fairank_core::fault;
use fairank_service::{Reply, Request, Server, ServerConfig, ServerHandle, SessionRegistry};
use fairank_session::Response;

/// Serializes the fault-injection tests: fault points are process-global.
#[cfg(debug_assertions)]
fn serialized() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Disarms every fault point when dropped, so a panicking assertion in
/// one test cannot leave the mask armed for the rest of the process.
#[cfg(debug_assertions)]
struct FaultScope;

#[cfg(debug_assertions)]
impl FaultScope {
    fn arm(point: &str) -> FaultScope {
        fault::enable(point);
        FaultScope
    }
}

#[cfg(debug_assertions)]
impl Drop for FaultScope {
    fn drop(&mut self) {
        fault::clear();
    }
}

/// One live client connection speaking the JSON-lines protocol.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).expect("connect to server");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            reader,
            writer: stream,
        }
    }

    fn send(&mut self, request: &Request) -> Option<Reply> {
        let line = serde_json::to_string(request).expect("serialize request");
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .ok()?;
        let mut reply = String::new();
        match self.reader.read_line(&mut reply) {
            Ok(0) | Err(_) => None,
            Ok(_) => Some(serde_json::from_str(reply.trim()).expect("reply parses")),
        }
    }

    /// Sends a command to a named session and unwraps the success payload.
    fn command(&mut self, session: &str, command: &str) -> Response {
        self.send(&Request::in_session(session, command))
            .expect("server replied")
            .into_result()
            .unwrap_or_else(|e| panic!("{command:?} failed: {e}"))
    }
}

fn start_server_with(config: ServerConfig) -> ServerHandle {
    Server::bind("127.0.0.1:0", config)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server")
}

fn plain_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_depth: 4,
        ..ServerConfig::default()
    }
}

// ------------------------------------------------- 1. poison quarantine

/// A panic while committing a scenario cell poisons the session mutex.
/// The old code swallowed the poison (`PoisonError::into_inner`) and kept
/// serving the half-mutated session; the fix quarantines it: the caller
/// gets the structured `session_poisoned` error and the *next* attach
/// under the same name gets a fresh, empty session.
#[test]
#[cfg(debug_assertions)]
fn scenario_commit_panic_quarantines_the_session() {
    let _guard = serialized();
    let handle = start_server_with(plain_config());
    let mut client = Client::connect(&handle);
    client.command("audit", "generate pop biased n=80 seed=3");
    client.command("audit", "define f rating*1.0");

    // Panic fires inside `Session::commit_panel` while the scenario's
    // finish phase holds the session lock — exactly the half-mutated
    // state the quarantine exists for.
    {
        let _fault = FaultScope::arm(fault::COMMIT_PANIC);
        let err = client
            .send(&Request::in_session("audit", "scenario grid pop f aggs=mean,max"))
            .expect("server replied despite the panic")
            .into_result()
            .expect_err("poisoned session must not return a report");
        assert_eq!(err.kind, "session_poisoned");
    }

    // The next attach under the name sees a fresh session: no datasets,
    // no functions, no half-committed panels.
    let mut next = Client::connect(&handle);
    match next.command("audit", "datasets") {
        Response::DatasetList(entries) => assert!(
            entries.is_empty(),
            "quarantine must swap in a fresh session, found {entries:?}"
        ),
        other => panic!("expected DatasetList, got {other:?}"),
    }
    match next.command("audit", "panels") {
        Response::PanelList(entries) => assert!(entries.is_empty()),
        other => panic!("expected PanelList, got {other:?}"),
    }

    // And the fresh session is fully serviceable end to end.
    next.command("audit", "generate pop biased n=80 seed=3");
    next.command("audit", "define f rating*1.0");
    let Response::Scenario(report) = next.command("audit", "scenario grid pop f aggs=mean,max")
    else {
        panic!("expected Scenario");
    };
    assert_eq!(report.cells.len(), 2);
    handle.stop();
}

// --------------------------------------------- 2. stale socket timeout

/// The per-request disconnect watcher arms a socket-level read timeout on
/// its probe clone; `SO_RCVTIMEO` is per *socket*, so a watcher that
/// fails its teardown leaves the connection's read half timing out. The
/// read loop used to treat any `Err` as a dead peer and silently dropped
/// the live connection; it must instead clear the stale timeout and
/// retry the read.
#[test]
#[cfg(debug_assertions)]
fn stale_read_timeout_does_not_drop_a_live_connection() {
    let _guard = serialized();
    // The watcher only exists on the thread-per-connection path — the
    // event loop detects disconnects as readiness events instead.
    let handle = start_server_with(ServerConfig {
        threaded: true,
        ..plain_config()
    });
    let mut client = Client::connect(&handle);
    let _fault = FaultScope::arm(fault::STALE_TIMEOUT);

    for round in 0..3 {
        // Each request spawns a watcher that (under the fault) leaves the
        // 25 ms probe timeout armed on the socket...
        assert!(
            matches!(client.command("live", "help"), Response::Help),
            "round {round}"
        );
        // ...then an idle gap longer than the timeout: the server's
        // blocking read hits `WouldBlock`/`TimedOut` while the peer is
        // demonstrably alive. Before the fix the server closed the
        // connection here and the next `command` died on EOF.
        std::thread::sleep(Duration::from_millis(120));
    }
    assert!(matches!(client.command("live", "help"), Response::Help));
    handle.stop();
}

// ------------------------------------------- 3. TTL-sweeper/evict race

/// Eviction (TTL sweep or admin `evict`) between lease acquisition and
/// the request's post-compute use of the handle: the in-flight request
/// must finish against the leased entry, the name must stay evicted (no
/// resurrection), and a later attach must get a *fresh* session — while
/// dropping the old lease afterwards must not double-drop anything.
#[test]
fn eviction_racing_an_in_flight_request_neither_resurrects_nor_double_drops() {
    let registry = SessionRegistry::new();

    // Request thread: acquires the lease... (window opens)
    let lease = registry.lease("racer");
    let first_handle = std::sync::Arc::clone(lease.handle());

    // ...sweeper fires in the window before `try_admit` — nothing is in
    // flight yet, so the entry is fair game and gets evicted.
    assert_eq!(registry.evict_idle(Duration::ZERO), vec!["racer"]);
    assert!(registry.is_empty());

    // The request proceeds against its (now anonymous) lease: admission
    // and the session lock still work, backed by the Arc it holds.
    let admitted = lease.try_admit(1).expect("admit against evicted entry");
    {
        let session = lease.handle().lock().expect("evicted session still locks");
        drop(session);
    }
    drop(admitted);

    // No resurrection: finishing the request must not have re-registered
    // the name.
    assert!(registry.is_empty(), "evicted session resurrected");

    // A later attach under the same name is a brand-new entry, not the
    // evicted one.
    let fresh = registry.lease("racer");
    assert!(
        !std::sync::Arc::ptr_eq(&first_handle, fresh.handle()),
        "attach after eviction handed back the evicted session"
    );

    // Dropping the stale lease (and its clone) after the fresh one exists
    // is a plain refcount release — no double-drop, no panic.
    drop(lease);
    drop(first_handle);
    assert_eq!(registry.names(), vec!["racer"]);
}

/// The sweeper must never evict a session with admitted in-flight work,
/// no matter how stale its attach clock looks.
#[test]
fn ttl_sweep_skips_sessions_with_in_flight_requests() {
    let registry = SessionRegistry::new();
    let lease = registry.lease("busy");
    let admitted = lease.try_admit(0).expect("unlimited cap admits");

    // In flight: a zero-TTL sweep (every session is "idle enough") must
    // still leave the busy session alone.
    assert!(registry.evict_idle(Duration::ZERO).is_empty());
    assert_eq!(registry.names(), vec!["busy"]);

    // Slot released: the very next sweep evicts it.
    drop(admitted);
    assert_eq!(registry.evict_idle(Duration::ZERO), vec!["busy"]);
    assert!(registry.is_empty());
}

/// Admin `evict` over the wire racing a long compute: the long request
/// still answers correctly even though its session name was evicted
/// mid-flight, and the name maps to a fresh session afterwards.
#[test]
fn wire_evict_during_a_request_still_answers_the_request() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            admin: true,
            ..plain_config()
        },
    )
    .expect("bind ephemeral port");
    let registry = server.registry();
    let handle = server.spawn().expect("spawn server");

    let mut worker = Client::connect(&handle);
    // A compute slow enough (transport EMD at a high bin count) that the
    // evict demonstrably lands while it holds the session.
    worker.command("victim", "generate pop biased n=1500 seed=7");
    worker.command("victim", "define f rating*0.7+language_test*0.3");

    worker
        .writer
        .write_all(
            serde_json::to_string(&Request::in_session(
                "victim",
                "quantify pop f emd=transport bins=32",
            ))
            .unwrap()
            .as_bytes(),
        )
        .and_then(|()| worker.writer.write_all(b"\n"))
        .expect("send quantify");

    // Wait (in-process, via the shared registry) until the quantify has
    // been admitted against its lease, so the evict below provably races
    // an in-flight request rather than an idle session.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while registry.lease("victim").in_flight() == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "quantify never reached in-flight admission"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    let mut admin = Client::connect(&handle);
    let evicted = admin
        .send(&Request::in_session("ops", "evict victim"))
        .expect("admin replied");
    assert!(matches!(
        evicted.into_result(),
        Ok(Response::SessionEvicted { .. })
    ));

    // The in-flight quantify still completes against its leased session.
    let mut reply = String::new();
    worker
        .reader
        .read_line(&mut reply)
        .expect("read quantify reply");
    let reply: Reply = serde_json::from_str(reply.trim()).expect("reply parses");
    match reply.into_result() {
        Ok(Response::PanelCreated(view)) => assert_eq!(view.individuals, 1500),
        other => panic!("expected PanelCreated, got {other:?}"),
    }

    // The name now maps to a fresh session: the old dataset is gone.
    let mut next = Client::connect(&handle);
    match next.command("victim", "datasets") {
        Response::DatasetList(entries) => assert!(entries.is_empty()),
        other => panic!("expected DatasetList, got {other:?}"),
    }
    handle.stop();
}
