//! Chaos and operational-limit tests: deadlines, disconnects, overload,
//! poisoning, graceful shutdown, and the fault-injection points — all
//! exercised over real sockets against a live server.
//!
//! The fault mask (`fairank_core::fault`) is process-global, so every
//! test in this binary runs under one lock: a torn-write fault armed by
//! one test must never leak into another's reply path.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

#[cfg(debug_assertions)]
use fairank_core::fault;
use fairank_service::{Reply, Request, Server, ServerConfig, ServerHandle};
use fairank_session::Response;

/// Serializes the whole binary: fault points are process-global state.
fn serialized() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Disarms every fault point when dropped, so a panicking assertion in
/// one test cannot leave the mask armed for the rest of the process.
#[cfg(debug_assertions)]
struct FaultScope;

#[cfg(debug_assertions)]
impl FaultScope {
    fn arm(point: &str) -> FaultScope {
        fault::enable(point);
        FaultScope
    }
}

#[cfg(debug_assertions)]
impl Drop for FaultScope {
    fn drop(&mut self) {
        fault::clear();
    }
}

/// A search slow enough that one quantify takes seconds compared to the
/// cancellation latency (25 ms disconnect probe + one budget stride):
/// the transportation-solver EMD backend at a high bin count. The
/// default 1-D backends are too fast to cancel meaningfully at any
/// dataset size a test should generate; the profile split keeps the
/// uncancelled baseline at roughly 2–4 s in both builds.
#[cfg(debug_assertions)]
const HEAVY_N: usize = 1_500;
#[cfg(debug_assertions)]
const HEAVY_BINS: usize = 32;
#[cfg(not(debug_assertions))]
const HEAVY_N: usize = 4_000;
#[cfg(not(debug_assertions))]
const HEAVY_BINS: usize = 64;

/// The heavy quantify command line (see [`HEAVY_N`]/[`HEAVY_BINS`]).
fn heavy_quantify() -> String {
    format!("quantify pop f emd=transport bins={HEAVY_BINS}")
}

/// One live client connection speaking the JSON-lines protocol.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).expect("connect to server");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            reader,
            writer: stream,
        }
    }

    /// Writes one request line without waiting for the reply.
    fn send_line(&mut self, request: &Request) {
        let line = serde_json::to_string(request).expect("serialize request");
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .expect("send request");
    }

    /// Reads one reply line; `None` on EOF. Panics if the line is not a
    /// well-formed wire envelope — chaos tests treat any malformed reply
    /// as a failure, so the parse is strict everywhere.
    fn read_reply(&mut self) -> Option<Reply> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(
                serde_json::from_str(line.trim()).expect("reply parses as the wire envelope"),
            ),
            Err(_) => None,
        }
    }

    fn send(&mut self, request: &Request) -> Reply {
        self.send_line(request);
        self.read_reply().expect("server replied")
    }

    /// Sends a command to a named session and unwraps the success payload.
    fn command(&mut self, session: &str, command: &str) -> Response {
        self.send(&Request::in_session(session, command))
            .into_result()
            .unwrap_or_else(|e| panic!("{command:?} failed: {e}"))
    }
}

fn start_server_with(config: ServerConfig) -> ServerHandle {
    Server::bind("127.0.0.1:0", config)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server")
}

fn plain_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_depth: 4,
        ..ServerConfig::default()
    }
}

/// Loads the heavy dataset + function into `session` on an open client.
fn setup_heavy(client: &mut Client, session: &str) {
    client.command(session, &format!("generate pop biased n={HEAVY_N} seed=7"));
    client.command(session, "define f rating*0.7+language_test*0.3");
}

/// How long an *uncancelled* quantify of the heavy shape takes on this
/// machine and profile — measured once per process against a throwaway
/// server, so the cancellation tests assert relative speedups instead of
/// hard-coding machine-dependent wall-clock bounds.
fn heavy_baseline() -> Duration {
    static BASELINE: OnceLock<Duration> = OnceLock::new();
    *BASELINE.get_or_init(|| {
        let handle = start_server_with(plain_config());
        let mut client = Client::connect(&handle);
        setup_heavy(&mut client, "baseline");
        let start = Instant::now();
        match client.command("baseline", &heavy_quantify()) {
            Response::PanelCreated(_) => {}
            other => panic!("expected PanelCreated, got {other:?}"),
        }
        let elapsed = start.elapsed();
        handle.stop();
        elapsed
    })
}

/// A machine so fast the heavy shape completes near-instantly makes the
/// "cancelled well before completion" assertions meaningless; skip them
/// there rather than flake.
fn baseline_or_skip(test: &str) -> Option<Duration> {
    let baseline = heavy_baseline();
    if baseline < Duration::from_millis(300) {
        eprintln!(
            "{test}: heavy quantify finishes in {baseline:?}; too fast for a \
             meaningful cancellation-latency assertion, skipping"
        );
        return None;
    }
    Some(baseline)
}

#[test]
fn deadline_exceeded_carries_partial_stats_and_frees_the_worker() {
    let _guard = serialized();
    let Some(baseline) = baseline_or_skip("deadline test") else {
        return;
    };

    // Same shape, but the server enforces a deadline far below the
    // uncancelled runtime.
    let handle = start_server_with(ServerConfig {
        request_timeout: Some(Duration::from_millis(100)),
        ..plain_config()
    });
    let mut client = Client::connect(&handle);
    setup_heavy(&mut client, "slow");

    let start = Instant::now();
    let reply = client.send(&Request::in_session("slow", heavy_quantify()));
    let elapsed = start.elapsed();
    let err = reply.into_result().expect_err("deadline must trip");
    assert_eq!(err.kind, "deadline_exceeded");
    let partial = err
        .partial
        .expect("a deadline reply carries the partial search counters");
    // The search ran for ~100 ms before cancelling: it did real work.
    assert!(
        partial.nodes_evaluated + partial.emd_calls + partial.histograms_built > 0,
        "partial stats are all zero: {partial:?}"
    );
    // "Well before uncancelled completion": the reply must beat the
    // uncancelled runtime by a wide margin, not just the deadline + noise.
    assert!(
        elapsed < baseline / 2,
        "deadline reply took {elapsed:?}, baseline is {baseline:?}"
    );

    // The worker the deadline freed serves the next request immediately —
    // same connection, same session, no lingering lock or slot.
    let start = Instant::now();
    match client.command("slow", "datasets") {
        Response::DatasetList(entries) => assert_eq!(entries.len(), 1),
        other => panic!("expected DatasetList, got {other:?}"),
    }
    assert!(
        start.elapsed() < baseline / 2,
        "post-deadline request was not served promptly: {:?}",
        start.elapsed()
    );
    handle.stop();
}

#[test]
fn client_disconnect_mid_request_releases_the_session_promptly() {
    let _guard = serialized();
    let Some(baseline) = baseline_or_skip("disconnect test") else {
        return;
    };

    let handle = start_server_with(plain_config());
    let mut doomed = Client::connect(&handle);
    setup_heavy(&mut doomed, "abandoned");

    // Fire the heavy quantify, give the search a moment to take the
    // session lock and a worker, then vanish without reading the reply.
    doomed.send_line(&Request::in_session("abandoned", heavy_quantify()));
    std::thread::sleep(Duration::from_millis(250));
    let _ = doomed.writer.shutdown(std::net::Shutdown::Both);
    drop(doomed);

    // The disconnect watcher cancels the orphaned search, which releases
    // the session mutex and the worker slot. A new client touching the
    // SAME session (a light command still needs the session lock) must be
    // served long before the abandoned search would have finished.
    let start = Instant::now();
    let mut next = Client::connect(&handle);
    match next.command("abandoned", "datasets") {
        Response::DatasetList(entries) => assert_eq!(entries.len(), 1),
        other => panic!("expected DatasetList, got {other:?}"),
    }
    let recovery = start.elapsed();
    assert!(
        recovery < baseline / 2,
        "session stayed locked for {recovery:?} after the client vanished \
         (uncancelled search takes {baseline:?})"
    );
    handle.stop();
}

#[test]
fn graceful_shutdown_with_inflight_work_does_not_hang() {
    let _guard = serialized();
    if baseline_or_skip("shutdown test").is_none() {
        return;
    }

    let handle = start_server_with(plain_config());
    let mut client = Client::connect(&handle);
    setup_heavy(&mut client, "draining");
    client.send_line(&Request::in_session("draining", heavy_quantify()));

    // Read the in-flight request's fate on a helper thread: the drain
    // window (50 ms) is far below the search time, so phase 3 cancels it
    // and the client sees `shutting_down` — or EOF if the socket close
    // races the reply write. Both are acceptable; a hang is not.
    let reader = std::thread::spawn(move || {
        let reply = client.read_reply();
        if let Some(reply) = reply {
            let err = reply.into_result().expect_err("cancelled, not completed");
            assert_eq!(err.kind, "shutting_down");
        }
    });

    std::thread::sleep(Duration::from_millis(100));
    let start = Instant::now();
    handle.shutdown(Duration::from_millis(50));
    let elapsed = start.elapsed();
    // Cooperative cancellation bounds the shutdown: drain window + one
    // budget-poll stride + joins, nowhere near the uncancelled runtime of
    // the in-flight search (and nowhere near the 10 s forced-wait cap).
    assert!(
        elapsed < Duration::from_secs(8),
        "shutdown took {elapsed:?} with one in-flight request"
    );
    reader.join().expect("in-flight client observed the shutdown");
}

#[test]
fn load_smoke_64_connections_zero_malformed_replies() {
    let _guard = serialized();
    const CLIENTS: usize = 64;

    // 64 connections vs 4 workers and a shallow queue: the server may
    // refuse (structured `overloaded`), but every reply must parse and
    // carry a known kind — no torn lines, no hangs, no worker loss.
    let handle = start_server_with(ServerConfig {
        workers: 4,
        queue_depth: 4,
        ..ServerConfig::default()
    });

    let latencies: Vec<Vec<Duration>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let handle = &handle;
                scope.spawn(move || {
                    let mut client = Client::connect(handle);
                    let session = format!("load-{i}");
                    let mut latencies = Vec::new();
                    let mut timed = |client: &mut Client, line: &str| {
                        let start = Instant::now();
                        let reply = client.send(&Request::in_session(&session, line));
                        latencies.push(start.elapsed());
                        reply
                    };
                    for line in [
                        "generate pop biased n=150 seed=3",
                        "define f rating*0.6+language_test*0.4",
                    ] {
                        let reply = timed(&mut client, line);
                        assert!(reply.is_ok(), "setup {line:?} failed");
                    }
                    // The compute-class request is the one admission may
                    // refuse; success and structured refusal are both
                    // legitimate under a 16× connection storm.
                    match timed(&mut client, "quantify pop f").into_result() {
                        Ok(Response::PanelCreated(view)) => assert!(view.unfairness > 0.0),
                        Ok(other) => panic!("expected PanelCreated, got {other:?}"),
                        Err(e) => {
                            assert_eq!(e.kind, "overloaded", "unexpected refusal: {e}");
                            assert!(
                                e.retry_after_ms.is_some(),
                                "overloaded reply must carry the back-off hint"
                            );
                        }
                    }
                    // The connection stays serviceable afterwards.
                    let reply = timed(&mut client, "help");
                    assert!(reply.is_ok(), "post-storm help failed");
                    latencies
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    // Bounded tail latency: nothing queued unboundedly or deadlocked.
    let mut all: Vec<Duration> = latencies.into_iter().flatten().collect();
    all.sort_unstable();
    assert_eq!(all.len(), CLIENTS * 4);
    let p99 = all[all.len() * 99 / 100];
    assert!(
        p99 < Duration::from_secs(30),
        "p99 reply latency {p99:?} under the connection storm"
    );
    handle.stop();
}

#[test]
fn overloaded_sessions_refuse_with_retry_hint() {
    let _guard = serialized();
    // The occupying search must still be running when the second request
    // lands; skip on machines where it finishes near-instantly.
    if baseline_or_skip("session-cap test").is_none() {
        return;
    }

    // Cap one session to a single in-flight compute request, occupy that
    // slot with a slow search, and watch the second request bounce with
    // the structured hint instead of queueing behind the session mutex.
    let handle = start_server_with(ServerConfig {
        session_inflight_cap: 1,
        ..plain_config()
    });
    let mut first = Client::connect(&handle);
    setup_heavy(&mut first, "capped");
    first.send_line(&Request::in_session("capped", heavy_quantify()));
    std::thread::sleep(Duration::from_millis(100));

    let mut second = Client::connect(&handle);
    let err = second
        .send(&Request::in_session("capped", heavy_quantify()))
        .into_result()
        .expect_err("second in-flight request must be refused");
    assert_eq!(err.kind, "overloaded");
    assert!(err.retry_after_ms.is_some());

    // The occupant finishes normally; its slot frees for a retry.
    let reply = first.read_reply().expect("first request completes");
    assert!(reply.is_ok(), "occupant failed: {reply:?}");
    let retry = second.send(&Request::in_session("capped", heavy_quantify()));
    assert!(retry.is_ok(), "retry after the slot freed failed: {retry:?}");
    handle.stop();
}

#[cfg(debug_assertions)]
#[test]
fn emd_panic_quarantines_the_session_and_the_server_survives() {
    let _guard = serialized();
    let handle = start_server_with(plain_config());
    let mut client = Client::connect(&handle);
    client.command("victim", "generate pop biased n=200 seed=5");
    client.command("victim", "define f rating*1.0");

    // The injected panic fires inside the EMD evaluation on a pool
    // worker, while the job holds the session mutex: the state is
    // suspect, so the dispatch layer quarantines the session and says so.
    let err = {
        let _fault = FaultScope::arm(fault::EMD_PANIC);
        client
            .send(&Request::in_session("victim", "quantify pop f"))
            .into_result()
            .expect_err("injected panic must surface as an error")
    };
    assert_eq!(err.kind, "session_poisoned");
    assert!(err.message.contains("victim"));

    // Same name, fresh session: the half-mutated state is gone, and the
    // full pipeline works again once the fault is disarmed.
    match client.command("victim", "datasets") {
        Response::DatasetList(entries) => {
            assert!(entries.is_empty(), "quarantine must discard old state")
        }
        other => panic!("expected DatasetList, got {other:?}"),
    }
    client.command("victim", "generate pop biased n=200 seed=5");
    client.command("victim", "define f rating*1.0");
    match client.command("victim", "quantify pop f") {
        Response::PanelCreated(view) => assert!(view.unfairness > 0.0),
        other => panic!("expected PanelCreated, got {other:?}"),
    }
    handle.stop();
}

#[cfg(debug_assertions)]
#[test]
fn slow_cells_trip_the_deadline_inside_scenario_plans() {
    let _guard = serialized();

    // Every plan cell sleeps 40 ms under SLOW_CELL; a 20 ms request
    // deadline therefore trips inside the fan-out, and the cancellation
    // must propagate out of the pool as the structured deadline error.
    let handle = start_server_with(ServerConfig {
        request_timeout: Some(Duration::from_millis(20)),
        ..plain_config()
    });
    let mut client = Client::connect(&handle);
    client.command("grid", "generate pop biased n=100 seed=5");
    client.command("grid", "define f rating*1.0");
    client.command("grid", "define g rating*0.6+language_test*0.4");

    let err = {
        let _fault = FaultScope::arm(fault::SLOW_CELL);
        client
            .send(&Request::in_session(
                "grid",
                "scenario grid pop f,g aggs=mean,max,min",
            ))
            .into_result()
            .expect_err("slow cells must blow the deadline")
    };
    assert_eq!(err.kind, "deadline_exceeded");
    handle.stop();

    // Fault disarmed: the identical plan completes on an undeadlined
    // server — the injection, not the plan, was what blew the budget.
    let handle = start_server_with(plain_config());
    let mut client = Client::connect(&handle);
    client.command("grid", "generate pop biased n=100 seed=5");
    client.command("grid", "define f rating*1.0");
    client.command("grid", "define g rating*0.6+language_test*0.4");
    match client.command("grid", "scenario grid pop f,g aggs=mean,max,min") {
        Response::Scenario(report) => assert_eq!(report.cells.len(), 6),
        other => panic!("expected Scenario, got {other:?}"),
    }
    handle.stop();
}

#[cfg(debug_assertions)]
#[test]
fn dropped_connections_leave_the_server_healthy() {
    let _guard = serialized();
    let handle = start_server_with(plain_config());

    {
        let _fault = FaultScope::arm(fault::DROP_CONN);
        let mut client = Client::connect(&handle);
        client.send_line(&Request::new("help"));
        // The server vanishes without a reply: EOF, not a torn line.
        assert!(client.read_reply().is_none(), "drop-conn must not reply");
    }

    let mut fresh = Client::connect(&handle);
    assert!(matches!(fresh.command("ok", "help"), Response::Help));
    handle.stop();
}

#[cfg(debug_assertions)]
#[test]
fn torn_writes_produce_unparseable_lines_and_the_server_survives() {
    let _guard = serialized();
    let handle = start_server_with(plain_config());

    {
        let _fault = FaultScope::arm(fault::TORN_WRITE);
        let mut client = Client::connect(&handle);
        client.send_line(&Request::new("help"));
        // Half a reply, then the connection cuts: the bytes must NOT
        // parse as the wire envelope — a client that "succeeds" on a
        // torn line has a framing bug.
        let mut torn = String::new();
        client
            .reader
            .read_to_string(&mut torn)
            .expect("drain the torn connection");
        assert!(!torn.is_empty(), "torn write sent nothing at all");
        assert!(!torn.ends_with('\n'), "torn reply must be unterminated");
        assert!(
            serde_json::from_str::<Reply>(torn.trim()).is_err(),
            "half a reply must not parse: {torn:?}"
        );
    }

    let mut fresh = Client::connect(&handle);
    assert!(matches!(fresh.command("ok", "help"), Response::Help));
    handle.stop();
}

#[cfg(debug_assertions)]
#[test]
fn repeated_fault_storms_never_degrade_the_server() {
    let _guard = serialized();
    let handle = start_server_with(plain_config());

    // Seed a small session once; the storm re-creates it whenever a
    // panic round quarantines it.
    let seed_session = |client: &mut Client| {
        client.command("storm", "generate pop biased n=120 seed=2");
        client.command("storm", "define f rating*1.0");
    };
    let mut control = Client::connect(&handle);
    seed_session(&mut control);

    for round in 0..25 {
        match round % 3 {
            0 => {
                // Panic round: quantify under EMD_PANIC; the reply is the
                // quarantine report and the session needs reseeding.
                let _fault = FaultScope::arm(fault::EMD_PANIC);
                let result = control
                    .send(&Request::in_session("storm", "quantify pop f"))
                    .into_result();
                let Err(err) = result else {
                    panic!("round {round}: injected panic must surface as an error");
                };
                assert_eq!(err.kind, "session_poisoned", "round {round}");
                drop(_fault);
                seed_session(&mut control);
            }
            1 => {
                // Drop round: a throwaway connection dies without a reply.
                let _fault = FaultScope::arm(fault::DROP_CONN);
                let mut doomed = Client::connect(&handle);
                doomed.send_line(&Request::new("help"));
                assert!(doomed.read_reply().is_none(), "round {round}");
            }
            _ => {
                // Torn round: a throwaway connection gets half a line.
                let _fault = FaultScope::arm(fault::TORN_WRITE);
                let mut doomed = Client::connect(&handle);
                doomed.send_line(&Request::new("help"));
                let mut torn = String::new();
                let _ = doomed.reader.read_to_string(&mut torn);
                assert!(
                    serde_json::from_str::<Reply>(torn.trim()).is_err(),
                    "round {round}: torn line parsed"
                );
            }
        }
        // Health probe after every injection: faults disarmed, a fresh
        // connection and the storm session both serve normally.
        let mut probe = Client::connect(&handle);
        assert!(
            matches!(probe.command("probe", "help"), Response::Help),
            "round {round}: server unhealthy after fault"
        );
    }

    // After 25 rounds of panics, drops, and torn writes: the full
    // pipeline still works end to end.
    match control.command("storm", "quantify pop f") {
        Response::PanelCreated(view) => assert!(view.unfairness > 0.0),
        other => panic!("expected PanelCreated, got {other:?}"),
    }
    handle.stop();
}
