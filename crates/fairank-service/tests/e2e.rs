//! End-to-end tests of the JSON-lines TCP server: real sockets, real
//! threads, structured (non-string-scraped) responses.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use fairank_service::{Reply, Request, Server, ServerConfig, ServerHandle};
use fairank_session::Response;

/// One live client connection speaking the JSON-lines protocol.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).expect("connect to server");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            reader,
            writer: stream,
        }
    }

    fn send_raw(&mut self, line: &str) -> Reply {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .expect("send request");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        serde_json::from_str(reply.trim()).expect("reply parses as the wire envelope")
    }

    fn send(&mut self, request: &Request) -> Reply {
        self.send_raw(&serde_json::to_string(request).expect("serialize request"))
    }

    /// Sends a command to a named session and unwraps the success payload.
    fn command(&mut self, session: &str, command: &str) -> Response {
        self.send(&Request::in_session(session, command))
            .into_result()
            .unwrap_or_else(|e| panic!("{command:?} failed: {e}"))
    }
}

fn start_server() -> ServerHandle {
    start_server_with(ServerConfig {
        workers: 2,
        queue_depth: 4,
        ..ServerConfig::default()
    })
}

fn start_server_with(config: ServerConfig) -> ServerHandle {
    Server::bind("127.0.0.1:0", config)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server")
}

#[test]
fn concurrent_clients_quantify_in_distinct_sessions() {
    let handle = start_server();
    const CLIENTS: usize = 5;

    let unfairness: Vec<f64> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let handle = &handle;
                scope.spawn(move || {
                    let mut client = Client::connect(handle);
                    let session = format!("client-{i}");
                    client.command(&session, "generate pop biased n=150 seed=9");
                    client.command(&session, "define f rating*0.7+language_test*0.3");
                    match client.command(&session, "quantify pop f") {
                        Response::PanelCreated(view) => {
                            // Structured access, no string scraping: each
                            // client owns its session, so its first panel
                            // is #0 and the tree rides along.
                            assert_eq!(view.id, 0, "session {session}");
                            assert!(view.num_partitions >= 1);
                            assert_eq!(view.nodes.len(), view.tree_nodes);
                            assert_eq!(view.individuals, 150);
                            view.unfairness
                        }
                        other => panic!("expected PanelCreated, got {other:?}"),
                    }
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });

    // Identical seeds through independent sessions: identical results.
    assert_eq!(unfairness.len(), CLIENTS);
    for u in &unfairness {
        assert!(*u > 0.0);
        assert_eq!(u, &unfairness[0]);
    }
    handle.stop();
}

#[test]
fn concurrent_clients_share_one_session() {
    let handle = start_server();

    // One client sets the shared state up.
    let mut setup = Client::connect(&handle);
    setup.command("shared", "generate pop biased n=100 seed=3");
    setup.command("shared", "define f rating*1.0");

    // Four clients quantify into the same session at once; the per-session
    // mutex serializes them, so panel ids are a permutation of 0..4.
    let mut ids: Vec<usize> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let handle = &handle;
                scope.spawn(move || {
                    let mut client = Client::connect(handle);
                    match client.command("shared", "quantify pop f") {
                        Response::PanelCreated(view) => view.id,
                        other => panic!("expected PanelCreated, got {other:?}"),
                    }
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    ids.sort_unstable();
    assert_eq!(ids, vec![0, 1, 2, 3]);

    // The shared session saw every panel.
    match setup.command("shared", "panels") {
        Response::PanelList(entries) => assert_eq!(entries.len(), 4),
        other => panic!("expected PanelList, got {other:?}"),
    }
    handle.stop();
}

#[test]
fn errors_and_malformed_lines_are_structured() {
    let handle = start_server();
    let mut client = Client::connect(&handle);

    // Session error: stable kind, human message.
    let reply = client.send(&Request::new("show 42"));
    let err = reply.into_result().unwrap_err();
    assert_eq!(err.kind, "unknown_panel");
    assert!(err.message.contains("#42"));

    // Parse error in the command language.
    let reply = client.send(&Request::new("frobnicate"));
    assert_eq!(reply.into_result().unwrap_err().kind, "command");

    // A line that is not JSON at all: protocol error, connection survives.
    let reply = client.send_raw("this is not json");
    assert_eq!(reply.into_result().unwrap_err().kind, "protocol");
    let reply = client.send(&Request::new("help"));
    assert!(matches!(reply.into_result().unwrap(), Response::Help));

    // Filesystem commands are forbidden from the wire by default.
    for line in ["load d /etc/passwd", "save /tmp/exfil", "export 0 /tmp/x.json"] {
        let reply = client.send(&Request::new(line));
        assert_eq!(reply.into_result().unwrap_err().kind, "forbidden", "{line}");
    }
    handle.stop();
}

#[test]
fn quit_ends_the_connection_but_not_the_session() {
    let handle = start_server();

    let mut first = Client::connect(&handle);
    first.command("sticky", "generate pop biased n=50 seed=1");
    let reply = first.send(&Request::in_session("sticky", "quit"));
    assert!(matches!(reply.into_result().unwrap(), Response::Quit));
    // The server closed this connection after the quit reply.
    let mut line = String::new();
    assert_eq!(first.reader.read_line(&mut line).unwrap(), 0);

    // The session itself survives for the next client.
    let mut second = Client::connect(&handle);
    match second.command("sticky", "datasets") {
        Response::DatasetList(entries) => {
            assert_eq!(entries.len(), 1);
            assert_eq!(entries[0].name, "pop");
        }
        other => panic!("expected DatasetList, got {other:?}"),
    }
    handle.stop();
}

#[test]
fn scenario_plan_runs_as_one_wire_request() {
    let handle = start_server();
    let mut client = Client::connect(&handle);
    client.command("plans", "generate pop biased n=100 seed=5");
    client.command("plans", "define f rating*1.0");
    client.command("plans", "define g rating*0.6+language_test*0.4");

    // The whole grid — 2 functions × 3 aggregators — is one request; the
    // server fans the 6 cells across its worker pool.
    let response = client.command("plans", "scenario grid pop f,g aggs=mean,max,min");
    let Response::Scenario(report) = &response else {
        panic!("expected Scenario, got {response:?}");
    };
    assert_eq!(report.perspective, "grid");
    assert_eq!(report.cells.len(), 6);
    assert!(report.cells.iter().all(|c| c.unfairness.is_some()));

    // The committed panels are visible to subsequent commands.
    match client.command("plans", "panels") {
        Response::PanelList(entries) => assert_eq!(entries.len(), 6),
        other => panic!("expected PanelList, got {other:?}"),
    }

    // The structured-spec request form carries the plan as JSON, not as a
    // command string.
    let spec = fairank_session::ScenarioSpec::new(
        fairank_session::plan::Perspective::EndUser {
            market: fairank_session::plan::MarketSpec {
                preset: "taskrabbit".into(),
                n: 60,
                seed: 3,
            },
            groups: vec!["gender=Female".into()],
        },
    );
    let reply = client.send(&Request::scenario("plans", spec));
    let Response::Scenario(report) = reply.into_result().unwrap() else {
        panic!("expected Scenario");
    };
    assert_eq!(report.perspective, "end-user");
    assert!(!report.cells.is_empty());
    handle.stop();
}

#[test]
fn admin_commands_require_the_admin_flag() {
    // Plain server: sessions/evict are refused.
    let handle = start_server();
    let mut client = Client::connect(&handle);
    client.command("alpha", "help");
    let reply = client.send(&Request::new("sessions"));
    assert_eq!(reply.into_result().unwrap_err().kind, "forbidden");
    let reply = client.send(&Request::new("evict alpha"));
    assert_eq!(reply.into_result().unwrap_err().kind, "forbidden");
    handle.stop();

    // Admin server: the registry is listable and evictable over the wire.
    let handle = start_server_with(ServerConfig {
        workers: 2,
        queue_depth: 4,
        admin: true,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&handle);
    client.command("alpha", "generate pop biased n=30 seed=1");
    client.command("beta", "help");
    // Admin commands operate on the registry without creating a session
    // for the requesting name.
    match client.command("any", "sessions") {
        Response::SessionList(view) => {
            assert_eq!(view.sessions, vec!["alpha", "beta"]);
            // `alpha` generated one dataset into the shared store.
            assert_eq!(view.store_datasets, 1);
            assert!(view.store_bytes > 0);
        }
        other => panic!("expected SessionList, got {other:?}"),
    }
    match client.command("any", "evict alpha") {
        Response::SessionEvicted { name } => assert_eq!(name, "alpha"),
        other => panic!("expected SessionEvicted, got {other:?}"),
    }
    // Evicted: a new attach under the name is a fresh session.
    match client.command("alpha", "datasets") {
        Response::DatasetList(entries) => assert!(entries.is_empty()),
        other => panic!("expected DatasetList, got {other:?}"),
    }
    let reply = client.send(&Request::in_session("any", "evict ghost"));
    assert_eq!(reply.into_result().unwrap_err().kind, "unknown_session");
    handle.stop();
}

#[test]
fn idle_sessions_expire_after_the_ttl_without_new_connections() {
    // Regression: the TTL sweep used to run only on the accept loop, so a
    // quiet server (no further connections) never expired anything. The
    // dedicated sweeper thread must evict the idle session on its own —
    // this test opens ONE connection, lets it go idle, and watches the
    // registry in-process; no second connection ever arrives.
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            queue_depth: 4,
            admin: true,
            session_ttl: Some(std::time::Duration::from_millis(50)),
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let registry = server.registry();
    let handle = server.spawn().expect("spawn server");

    {
        let mut early = Client::connect(&handle);
        early.command("stale", "generate pop biased n=30 seed=1");
        assert_eq!(registry.names(), vec!["stale"]);
    }
    // No new connection from here on. The sweeper alone must notice the
    // idle session; poll well past TTL + sweep interval before failing.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !registry.is_empty() {
        assert!(
            std::time::Instant::now() < deadline,
            "stale session survived the TTL on a quiet server: {:?}",
            registry.names()
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    handle.stop();
}

#[test]
fn oversized_request_lines_get_a_structured_refusal() {
    use fairank_service::MAX_REQUEST_BYTES;

    let handle = start_server();
    let mut client = Client::connect(&handle);
    // Exactly the cap, no newline: the server must reply once with the
    // `request_too_large` kind, then close — not silently drop the line.
    let oversized = vec![b'a'; MAX_REQUEST_BYTES as usize];
    client.writer.write_all(&oversized).expect("send oversized line");
    client.writer.flush().expect("flush oversized line");
    let mut reply = String::new();
    client
        .reader
        .read_line(&mut reply)
        .expect("read the refusal");
    let reply: Reply = serde_json::from_str(reply.trim()).expect("refusal parses");
    let err = reply.into_result().unwrap_err();
    assert_eq!(err.kind, "request_too_large");
    assert!(err.message.contains(&MAX_REQUEST_BYTES.to_string()));
    // The connection is closed afterwards.
    let mut rest = String::new();
    assert_eq!(client.reader.read_line(&mut rest).unwrap(), 0);

    // A fresh connection still serves normally.
    let mut fresh = Client::connect(&handle);
    assert!(matches!(
        fresh.command("ok", "help"),
        Response::Help
    ));
    handle.stop();
}

#[test]
fn rendered_transcript_matches_local_rendering() {
    // A remote client can reproduce the exact REPL text from the wire
    // payload alone: render(response) over the deserialized Response.
    let handle = start_server();
    let mut client = Client::connect(&handle);
    client.command("render", "generate pop biased n=80 seed=7");
    client.command("render", "define f rating*1.0");
    let response = client.command("render", "quantify pop f");
    let remote_text = fairank_session::present::render(&response);
    assert!(remote_text.starts_with("panel #0: unfairness "));
    assert!(remote_text.contains("ALL"));
    assert!(remote_text.contains("μ="));
    handle.stop();
}
