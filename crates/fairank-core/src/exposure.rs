//! Exposure-based group fairness — an alternative fairness notion.
//!
//! The paper positions FaiRank as "generic … the ability to quantify
//! different notions of fairness" and cites Singh & Joachims' *fairness of
//! exposure* and Biega et al.'s *equity of attention*. This module adds a
//! position-based exposure metric over the same partitioning machinery:
//! each rank position carries examination probability `1 / log2(2 + rank)`
//! (the DCG discount), a group's exposure is its members' mean position
//! weight, and the disparity between groups is aggregated exactly like the
//! EMD-based unfairness.
//!
//! Exposure disparity complements the histogram EMD: EMD compares *score
//! distributions*; exposure compares *where the ranking actually places
//! people*, which is what viewers of a results page see.

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};
use crate::fairness::Aggregator;
use crate::partition::Partition;
use crate::scoring::scores_to_ranking;

/// Position weight of `rank` (0-based): the DCG examination discount.
pub fn position_weight(rank: usize) -> f64 {
    1.0 / ((rank as f64 + 2.0).log2())
}

/// Per-individual exposure for a ranking of `n` individuals:
/// `exposure[row] = position_weight(rank_of(row))`, normalized so the mean
/// exposure over all individuals is 1.
pub fn exposures_from_ranking(ranking: &[u32], n: usize) -> Result<Vec<f64>> {
    if ranking.len() != n {
        return Err(CoreError::InvalidScoring(format!(
            "ranking has {} entries for {n} rows",
            ranking.len()
        )));
    }
    if n == 0 {
        return Err(CoreError::EmptyInput);
    }
    let mut exposure = vec![0.0f64; n];
    let mut total = 0.0;
    for (rank, &row) in ranking.iter().enumerate() {
        let idx = row as usize;
        if idx >= n {
            return Err(CoreError::InvalidScoring(format!(
                "ranking references row {idx} out of {n}"
            )));
        }
        let w = position_weight(rank);
        exposure[idx] = w;
        total += w;
    }
    let mean = total / n as f64;
    for e in exposure.iter_mut() {
        *e /= mean;
    }
    Ok(exposure)
}

/// Per-individual exposure induced by scores (ranked best-first).
pub fn exposures_from_scores(scores: &[f64]) -> Result<Vec<f64>> {
    exposures_from_ranking(&scores_to_ranking(scores), scores.len())
}

/// Exposure statistics of one partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupExposure {
    /// Mean normalized exposure of the group (1.0 = population average).
    pub mean_exposure: f64,
    /// Group size.
    pub size: usize,
}

/// Mean exposure per partition.
pub fn group_exposures(
    partitions: &[Partition],
    exposure: &[f64],
) -> Vec<GroupExposure> {
    partitions
        .iter()
        .map(|p| {
            let sum: f64 = p.rows.iter().map(|&r| exposure[r as usize]).sum();
            GroupExposure {
                mean_exposure: if p.is_empty() { 0.0 } else { sum / p.len() as f64 },
                size: p.len(),
            }
        })
        .collect()
}

/// Exposure disparity of a partitioning: the aggregator applied to the
/// pairwise absolute differences of group mean exposures. Zero when every
/// group enjoys the same average examination probability.
pub fn exposure_disparity(
    partitions: &[Partition],
    exposure: &[f64],
    aggregator: Aggregator,
) -> f64 {
    let groups = group_exposures(partitions, exposure);
    let mut diffs = Vec::with_capacity(groups.len() * (groups.len().saturating_sub(1)) / 2);
    for i in 0..groups.len() {
        for j in (i + 1)..groups.len() {
            diffs.push((groups[i].mean_exposure - groups[j].mean_exposure).abs());
        }
    }
    aggregator.apply(&diffs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{ProtectedAttribute, RankingSpace};

    #[test]
    fn position_weights_decay() {
        assert!((position_weight(0) - 1.0).abs() < 1e-12);
        assert!(position_weight(0) > position_weight(1));
        assert!(position_weight(1) > position_weight(9));
        assert!(position_weight(1000) > 0.0);
    }

    #[test]
    fn exposures_are_normalized_to_unit_mean() {
        let scores = [0.9, 0.1, 0.5, 0.7];
        let exp = exposures_from_scores(&scores).unwrap();
        let mean: f64 = exp.iter().sum::<f64>() / exp.len() as f64;
        assert!((mean - 1.0).abs() < 1e-12);
        // The best-scored row gets the highest exposure.
        assert!(exp[0] > exp[1]);
        assert!(exp[0] > exp[3]);
    }

    #[test]
    fn ranking_validation() {
        assert!(exposures_from_ranking(&[0, 1], 3).is_err());
        assert!(exposures_from_ranking(&[0, 5], 2).is_err());
        assert!(exposures_from_ranking(&[], 0).is_err());
    }

    fn separated_space() -> (RankingSpace, Vec<Partition>) {
        let g = ProtectedAttribute::from_values("g", &["a", "a", "b", "b"]);
        let space = RankingSpace::new(vec![g], vec![0.9, 0.8, 0.2, 0.1]).unwrap();
        let parts = Partition::root(&space).split(&space, 0);
        (space, parts)
    }

    #[test]
    fn disparity_detects_exposure_gap() {
        let (space, parts) = separated_space();
        let exp = exposures_from_scores(space.scores()).unwrap();
        let groups = group_exposures(&parts, &exp);
        assert!(groups[0].mean_exposure > 1.0); // group a ranks on top
        assert!(groups[1].mean_exposure < 1.0);
        let d = exposure_disparity(&parts, &exp, Aggregator::Mean);
        assert!(d > 0.2, "disparity {d}");
    }

    #[test]
    fn interleaved_groups_have_low_disparity() {
        let g = ProtectedAttribute::from_values("g", &["a", "b", "a", "b"]);
        let space = RankingSpace::new(vec![g], vec![0.9, 0.8, 0.2, 0.1]).unwrap();
        let parts = Partition::root(&space).split(&space, 0);
        let exp = exposures_from_scores(space.scores()).unwrap();
        let d = exposure_disparity(&parts, &exp, Aggregator::Mean);
        let (sep_space, sep_parts) = separated_space();
        let sep_exp = exposures_from_scores(sep_space.scores()).unwrap();
        let d_sep = exposure_disparity(&sep_parts, &sep_exp, Aggregator::Mean);
        assert!(d < d_sep, "interleaved {d} vs separated {d_sep}");
    }

    #[test]
    fn single_partition_has_zero_disparity() {
        let (space, _) = separated_space();
        let exp = exposures_from_scores(space.scores()).unwrap();
        let root = vec![Partition::root(&space)];
        assert_eq!(exposure_disparity(&root, &exp, Aggregator::Mean), 0.0);
    }

    #[test]
    fn disparity_respects_aggregator() {
        let g = ProtectedAttribute::from_values("g", &["a", "b", "c", "c", "b", "a"]);
        let space =
            RankingSpace::new(vec![g], vec![0.9, 0.5, 0.1, 0.2, 0.6, 0.95]).unwrap();
        let parts = Partition::root(&space).split(&space, 0);
        let exp = exposures_from_scores(space.scores()).unwrap();
        let mean = exposure_disparity(&parts, &exp, Aggregator::Mean);
        let max = exposure_disparity(&parts, &exp, Aggregator::Max);
        let min = exposure_disparity(&parts, &exp, Aggregator::Min);
        assert!(min <= mean && mean <= max);
    }
}
