//! Fairness criteria: aggregators, objectives and `unfairness(P, f)`.
//!
//! Definition 2 measures the unfairness of a scoring function `f` on a
//! partitioning `P` as the *average* pairwise EMD between partition score
//! histograms; the paper explicitly allows "any aggregation function over
//! pairwise distances … (highest average, lowest variance, etc.)". The
//! optimization problem then either maximizes (Most Unfair Partitioning,
//! Definition 1) or minimizes (Least Unfair Partitioning) that aggregate.

use serde::{Deserialize, Serialize};

use crate::emd::Emd;
use crate::error::Result;
use crate::histogram::{Histogram, HistogramSpec};
use crate::pairwise::{cross_distances, pairwise_distances};
use crate::partition::Partition;

/// How pairwise EMDs are folded into one unfairness number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Aggregator {
    /// Average pairwise EMD — the paper's Definition 2.
    #[default]
    Mean,
    /// Maximum pairwise EMD ("highest maximum EMD between any pair").
    Max,
    /// Minimum pairwise EMD.
    Min,
    /// Population variance of the pairwise EMDs ("lowest variance").
    Variance,
    /// Standard deviation of the pairwise EMDs.
    StdDev,
    /// Spread: max − min of the pairwise EMDs.
    Range,
}

impl Aggregator {
    /// Applies the aggregator. By convention an empty distance set (fewer
    /// than two partitions) aggregates to `0.0`: a single group cannot be
    /// treated unequally.
    pub fn apply(&self, distances: &[f64]) -> f64 {
        self.apply_iter(|| distances.iter().copied())
    }

    /// Applies the aggregator to a *replayable* stream of distances without
    /// materializing them — the split engine's batched aggregations feed
    /// `C(L, 2)` expanded values straight from a distinct-pair table, which
    /// for fine partitionings is millions of reads better left unstored.
    /// `distances` may be invoked more than once (the variance family
    /// takes two passes), and every invocation must yield the same
    /// sequence. The floating-point operation order per variant is
    /// identical to feeding the materialized sequence to [`apply`], so the
    /// two entry points are bit-identical (pinned by a unit test).
    ///
    /// [`apply`]: Aggregator::apply
    pub fn apply_iter<I, F>(&self, distances: F) -> f64
    where
        I: Iterator<Item = f64>,
        F: Fn() -> I,
    {
        if distances().next().is_none() {
            return 0.0;
        }
        match self {
            Aggregator::Mean => {
                let (sum, n) = Self::sum_count(distances());
                sum / n as f64
            }
            Aggregator::Max => Self::max_of(distances()),
            Aggregator::Min => Self::min_of(distances()),
            Aggregator::Variance => Self::variance_of(&distances),
            Aggregator::StdDev => Self::variance_of(&distances).sqrt(),
            Aggregator::Range => Self::max_of(distances()) - Self::min_of(distances()),
        }
    }

    /// One-pass sum and count. The sum folds with `+` from `0.0`, exactly
    /// like `Iterator::sum` over the same sequence.
    fn sum_count(iter: impl Iterator<Item = f64>) -> (f64, usize) {
        iter.fold((0.0, 0usize), |(s, n), d| (s + d, n + 1))
    }

    fn max_of(iter: impl Iterator<Item = f64>) -> f64 {
        iter.fold(f64::NEG_INFINITY, f64::max)
    }

    fn min_of(iter: impl Iterator<Item = f64>) -> f64 {
        iter.fold(f64::INFINITY, f64::min)
    }

    /// Two-pass population variance of a non-empty replayable stream.
    fn variance_of<I, F>(distances: &F) -> f64
    where
        I: Iterator<Item = f64>,
        F: Fn() -> I,
    {
        let (sum, n) = Self::sum_count(distances());
        let mean = sum / n as f64;
        distances().map(|d| (d - mean).powi(2)).sum::<f64>() / n as f64
    }

    /// All aggregators, for sweeps in the exploration UI and experiments.
    pub fn all() -> [Aggregator; 6] {
        [
            Aggregator::Mean,
            Aggregator::Max,
            Aggregator::Min,
            Aggregator::Variance,
            Aggregator::StdDev,
            Aggregator::Range,
        ]
    }

    /// Stable name used by the command language and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Aggregator::Mean => "mean",
            Aggregator::Max => "max",
            Aggregator::Min => "min",
            Aggregator::Variance => "variance",
            Aggregator::StdDev => "stddev",
            Aggregator::Range => "range",
        }
    }

    /// Parses a name produced by [`Aggregator::name`] (case-insensitive;
    /// `avg` is accepted for `mean`).
    pub fn parse(s: &str) -> Option<Aggregator> {
        match s.to_ascii_lowercase().as_str() {
            "mean" | "avg" | "average" => Some(Aggregator::Mean),
            "max" | "maximum" => Some(Aggregator::Max),
            "min" | "minimum" => Some(Aggregator::Min),
            "variance" | "var" => Some(Aggregator::Variance),
            "stddev" | "std" => Some(Aggregator::StdDev),
            "range" | "spread" => Some(Aggregator::Range),
            _ => None,
        }
    }
}

/// Whether the search looks for the most or the least unfair partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Objective {
    /// Definition 1: `argmax_P unfairness(P, f)`.
    #[default]
    MostUnfair,
    /// The dual: `argmin_P unfairness(P, f)`.
    LeastUnfair,
}

impl Objective {
    /// True when `candidate` is strictly better than `incumbent` under this
    /// objective.
    pub fn is_better(&self, candidate: f64, incumbent: f64) -> bool {
        match self {
            Objective::MostUnfair => candidate > incumbent,
            Objective::LeastUnfair => candidate < incumbent,
        }
    }

    /// The worst possible value under this objective (identity of
    /// best-of-fold).
    pub fn worst(&self) -> f64 {
        match self {
            Objective::MostUnfair => f64::NEG_INFINITY,
            Objective::LeastUnfair => f64::INFINITY,
        }
    }

    /// Stable name used by the command language and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Objective::MostUnfair => "most-unfair",
            Objective::LeastUnfair => "least-unfair",
        }
    }

    /// Parses a name produced by [`Objective::name`].
    pub fn parse(s: &str) -> Option<Objective> {
        match s.to_ascii_lowercase().as_str() {
            "most-unfair" | "most" | "argmax" | "max-unfair" => Some(Objective::MostUnfair),
            "least-unfair" | "least" | "argmin" | "min-unfair" => Some(Objective::LeastUnfair),
            _ => None,
        }
    }
}

/// A complete fairness criterion: what to optimize, how to aggregate, which
/// EMD backend, and the histogram shape.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FairnessCriterion {
    /// Search direction.
    pub objective: Objective,
    /// Pairwise-distance aggregation (Definition 2 uses `Mean`).
    pub aggregator: Aggregator,
    /// EMD configuration.
    pub emd: Emd,
    /// Histogram shape shared by every partition.
    pub hist: HistogramSpec,
}

impl FairnessCriterion {
    /// A criterion with the default EMD backend and histogram spec.
    pub fn new(objective: Objective, aggregator: Aggregator) -> Self {
        FairnessCriterion {
            objective,
            aggregator,
            ..Default::default()
        }
    }

    /// Replaces the histogram spec.
    pub fn with_hist(mut self, hist: HistogramSpec) -> Self {
        self.hist = hist;
        self
    }

    /// Replaces the EMD configuration.
    pub fn with_emd(mut self, emd: Emd) -> Self {
        self.emd = emd;
        self
    }

    /// Fits the histogram range to the observed score range of a space —
    /// the paper's "equal bins over the range of f" for functions that do
    /// not span the whole unit interval (or exceed it, e.g. unclamped
    /// linear combinations). Keeps the current bin count. Degenerate
    /// (all-equal-scores) ranges fall back to the unit interval around the
    /// value.
    pub fn fit_range(mut self, space: &crate::space::RankingSpace) -> Self {
        let (lo, hi) = space.score_range();
        let spec = if hi > lo {
            crate::histogram::HistogramSpec::new(self.hist.bins(), lo, hi)
        } else {
            crate::histogram::HistogramSpec::new(self.hist.bins(), lo - 0.5, lo + 0.5)
        };
        if let Ok(spec) = spec {
            self.hist = spec;
        }
        self
    }

    /// Builds the score histogram of one partition.
    pub fn histogram(&self, partition: &Partition, scores: &[f64]) -> Histogram {
        Histogram::from_rows(self.hist, scores, &partition.rows)
    }

    /// `unfairness(P, f)` — Definition 2 generalized to this criterion's
    /// aggregator: aggregate of pairwise EMDs between partition histograms.
    pub fn unfairness(&self, partitions: &[Partition], scores: &[f64]) -> Result<f64> {
        let hists: Vec<Histogram> = partitions
            .iter()
            .map(|p| self.histogram(p, scores))
            .collect();
        let dists = pairwise_distances(&hists, &self.emd)?;
        Ok(self.aggregator.apply(&dists))
    }

    /// Aggregate of EMDs between one partition and each of `others` —
    /// Algorithm 1's `avg(EMD(current, siblings, f))`, generalized.
    pub fn versus(
        &self,
        partition: &Partition,
        others: &[Partition],
        scores: &[f64],
    ) -> Result<f64> {
        let h = self.histogram(partition, scores);
        let other_hists: Vec<Histogram> = others
            .iter()
            .map(|p| self.histogram(p, scores))
            .collect();
        let dists = cross_distances(std::slice::from_ref(&h), &other_hists, &self.emd)?;
        Ok(self.aggregator.apply(&dists))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{ProtectedAttribute, RankingSpace};

    #[test]
    fn aggregators_on_known_values() {
        let d = [0.1, 0.3, 0.5];
        assert!((Aggregator::Mean.apply(&d) - 0.3).abs() < 1e-12);
        assert_eq!(Aggregator::Max.apply(&d), 0.5);
        assert_eq!(Aggregator::Min.apply(&d), 0.1);
        let var = Aggregator::Variance.apply(&d);
        assert!((var - (0.04 + 0.0 + 0.04) / 3.0).abs() < 1e-12);
        assert!((Aggregator::StdDev.apply(&d) - var.sqrt()).abs() < 1e-12);
        assert!((Aggregator::Range.apply(&d) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_distance_sets_aggregate_to_zero() {
        for agg in Aggregator::all() {
            assert_eq!(agg.apply(&[]), 0.0, "{agg:?}");
        }
    }

    #[test]
    fn aggregator_names_round_trip() {
        for agg in Aggregator::all() {
            assert_eq!(Aggregator::parse(agg.name()), Some(agg));
        }
        assert_eq!(Aggregator::parse("AVG"), Some(Aggregator::Mean));
        assert_eq!(Aggregator::parse("nonsense"), None);
    }

    #[test]
    fn objective_comparisons() {
        assert!(Objective::MostUnfair.is_better(0.5, 0.4));
        assert!(!Objective::MostUnfair.is_better(0.4, 0.4));
        assert!(Objective::LeastUnfair.is_better(0.3, 0.4));
        assert!(!Objective::LeastUnfair.is_better(0.4, 0.4));
        assert!(Objective::MostUnfair.is_better(0.0, Objective::MostUnfair.worst()));
        assert!(Objective::LeastUnfair.is_better(0.0, Objective::LeastUnfair.worst()));
    }

    #[test]
    fn objective_names_round_trip() {
        for obj in [Objective::MostUnfair, Objective::LeastUnfair] {
            assert_eq!(Objective::parse(obj.name()), Some(obj));
        }
        assert_eq!(Objective::parse("argmax"), Some(Objective::MostUnfair));
        assert_eq!(Objective::parse("x"), None);
    }

    fn two_group_space() -> RankingSpace {
        // Group a scores low, group b scores high — clear unfairness.
        let g = ProtectedAttribute::from_values("g", &["a", "a", "a", "b", "b", "b"]);
        RankingSpace::new(vec![g], vec![0.05, 0.1, 0.15, 0.85, 0.9, 0.95]).unwrap()
    }

    #[test]
    fn unfairness_of_separated_groups_is_high() {
        let s = two_group_space();
        let parts = Partition::root(&s).split(&s, 0);
        let crit = FairnessCriterion::default();
        let u = crit.unfairness(&parts, s.scores()).unwrap();
        assert!(u > 0.7, "u = {u}");
    }

    #[test]
    fn unfairness_of_identical_groups_is_zero() {
        let g = ProtectedAttribute::from_values("g", &["a", "b", "a", "b"]);
        let s = RankingSpace::new(vec![g], vec![0.25, 0.25, 0.75, 0.75]).unwrap();
        let parts = Partition::root(&s).split(&s, 0);
        let crit = FairnessCriterion::default();
        let u = crit.unfairness(&parts, s.scores()).unwrap();
        assert!(u.abs() < 1e-12);
    }

    #[test]
    fn unfairness_of_single_partition_is_zero() {
        let s = two_group_space();
        let crit = FairnessCriterion::default();
        let u = crit
            .unfairness(&[Partition::root(&s)], s.scores())
            .unwrap();
        assert_eq!(u, 0.0);
    }

    #[test]
    fn versus_matches_manual_cross_average() {
        let s = two_group_space();
        let parts = Partition::root(&s).split(&s, 0);
        let crit = FairnessCriterion::default();
        let v = crit.versus(&parts[0], &parts[1..], s.scores()).unwrap();
        let u = crit.unfairness(&parts, s.scores()).unwrap();
        // With exactly two partitions these coincide.
        assert!((v - u).abs() < 1e-12);
    }

    #[test]
    fn fit_range_tracks_observed_scores() {
        let s = RankingSpace::new(vec![], vec![0.2, 0.4, 0.6]).unwrap();
        let crit = FairnessCriterion::default().fit_range(&s);
        assert!((crit.hist.lo() - 0.2).abs() < 1e-12);
        assert!((crit.hist.hi() - 0.6).abs() < 1e-12);
        assert_eq!(crit.hist.bins(), 10);
        // Degenerate range falls back to a unit-wide window.
        let flat = RankingSpace::new(vec![], vec![0.5, 0.5]).unwrap();
        let crit = FairnessCriterion::default().fit_range(&flat);
        assert!((crit.hist.hi() - crit.hist.lo() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_range_changes_unfairness_scale() {
        // Scores concentrated in [0.4, 0.6]: under a unit histogram both
        // groups share bins; under a fitted range they separate.
        let g = ProtectedAttribute::from_values("g", &["a", "a", "b", "b"]);
        let s = RankingSpace::new(vec![g], vec![0.42, 0.44, 0.56, 0.58]).unwrap();
        let parts = Partition::root(&s).split(&s, 0);
        let unit = FairnessCriterion::default();
        let fitted = FairnessCriterion::default().fit_range(&s);
        let u_unit = unit.unfairness(&parts, s.scores()).unwrap();
        let u_fit = fitted.unfairness(&parts, s.scores()).unwrap();
        assert!(u_fit > u_unit, "fitted {u_fit} should exceed unit {u_unit}");
    }

    #[test]
    fn criterion_builders() {
        let crit = FairnessCriterion::new(Objective::LeastUnfair, Aggregator::Max)
            .with_emd(Emd::new(crate::emd::EmdBackendKind::Transport))
            .with_hist(HistogramSpec::unit(5).unwrap());
        assert_eq!(crit.hist.bins(), 5);
        assert_eq!(crit.objective, Objective::LeastUnfair);
        assert_eq!(crit.aggregator, Aggregator::Max);
    }

    #[test]
    fn apply_iter_matches_apply_bitwise() {
        // The streaming entry point must reproduce the slice entry point
        // bit for bit — the engine's batch aggregation depends on it.
        let sets: [&[f64]; 4] = [
            &[],
            &[0.25],
            &[0.1, 0.7, 0.3, 0.3, 0.0],
            &[1e-3, 0.999, 0.5, 1e-3, 0.42, 0.17, 0.17],
        ];
        for agg in Aggregator::all() {
            for set in sets {
                let direct = agg.apply(set);
                let streamed = agg.apply_iter(|| set.iter().copied());
                assert_eq!(
                    direct.to_bits(),
                    streamed.to_bits(),
                    "{agg:?} on {set:?}: {direct} vs {streamed}"
                );
            }
        }
    }
}
