//! Named fault-injection points for chaos testing.
//!
//! Debug builds carry a process-global mask of armed injection points,
//! settable programmatically ([`enable`]/[`disable`]/[`clear`]) or via the
//! `FAIRANK_FAULT` environment variable (comma-separated point names,
//! read once). Release builds compile the whole mechanism down to
//! constants: [`armed`] is `false`, [`active`] always returns `false`,
//! and the branches guarding each injection site are dead code the
//! optimizer removes. A release-gated test pins that contract.
//!
//! The points:
//!
//! | name            | site                              | effect                       |
//! |-----------------|-----------------------------------|------------------------------|
//! | `emd-panic`     | `SplitEngine` distance evaluation | panics mid-search            |
//! | `slow-cell`     | core plan `SearchStrategy::run`   | sleeps before each cell      |
//! | `drop-conn`     | service reply path                | drops the socket, no reply   |
//! | `torn-write`    | service reply path                | writes half a reply, drops   |
//! | `commit-panic`  | `Session::commit_panel` reduce    | panics mid-commit            |
//! | `stale-timeout` | disconnect watcher teardown       | leaves `SO_RCVTIMEO` armed   |

use std::time::Duration;

/// Panic inside the EMD distance evaluation (exercises lock poisoning and
/// worker panic containment).
pub const EMD_PANIC: &str = "emd-panic";
/// Sleep inside every plan cell (exercises deadlines and backpressure).
pub const SLOW_CELL: &str = "slow-cell";
/// Drop the connection instead of replying (exercises client retry).
pub const DROP_CONN: &str = "drop-conn";
/// Write a truncated reply then drop the connection (exercises client
/// parse robustness and server health after torn writes).
pub const TORN_WRITE: &str = "torn-write";
/// Panic inside the scenario reduce's panel commit, while the session
/// lock is held (exercises poison quarantine on the scenario path).
pub const COMMIT_PANIC: &str = "commit-panic";
/// Make the disconnect watcher skip clearing the socket read timeout on
/// exit (exercises the connection read loop's tolerance of a stale
/// `SO_RCVTIMEO`).
pub const STALE_TIMEOUT: &str = "stale-timeout";

/// Every known injection point, in mask-bit order (append-only: the bit
/// index is each point's position here).
pub const ALL_POINTS: &[&str] = &[
    EMD_PANIC,
    SLOW_CELL,
    DROP_CONN,
    TORN_WRITE,
    COMMIT_PANIC,
    STALE_TIMEOUT,
];

/// How long [`sleep_point`] stalls when its point is armed.
pub const SLOW_POINT_DELAY: Duration = Duration::from_millis(40);

/// Whether this build carries live fault-injection machinery.
/// `false` in release builds: every injection site is a dead branch.
pub const fn armed() -> bool {
    cfg!(debug_assertions)
}

#[cfg(debug_assertions)]
mod imp {
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::OnceLock;

    static MASK: AtomicU32 = AtomicU32::new(0);
    static ENV_MASK: OnceLock<u32> = OnceLock::new();

    fn bit(point: &str) -> u32 {
        let index = super::ALL_POINTS
            .iter()
            .position(|&name| name == point)
            .unwrap_or_else(|| panic!("unknown fault point {point:?}"));
        1 << index
    }

    fn env_mask() -> u32 {
        let Ok(spec) = std::env::var("FAIRANK_FAULT") else {
            return 0;
        };
        spec.split(',')
            .map(str::trim)
            .filter(|name| !name.is_empty())
            .map(bit)
            .fold(0, |mask, bit| mask | bit)
    }

    pub fn active(point: &str) -> bool {
        let armed = MASK.load(Ordering::Acquire) | *ENV_MASK.get_or_init(env_mask);
        armed & bit(point) != 0
    }

    pub fn enable(point: &str) {
        MASK.fetch_or(bit(point), Ordering::AcqRel);
    }

    pub fn disable(point: &str) {
        MASK.fetch_and(!bit(point), Ordering::AcqRel);
    }

    pub fn clear() {
        MASK.store(0, Ordering::Release);
    }
}

#[cfg(not(debug_assertions))]
mod imp {
    pub fn active(_point: &str) -> bool {
        false
    }
    pub fn enable(_point: &str) {}
    pub fn disable(_point: &str) {}
    pub fn clear() {}
}

/// Is the named point currently armed? Always `false` in release builds.
#[inline]
pub fn active(point: &str) -> bool {
    armed() && imp::active(point)
}

/// Arm a point (no-op in release builds).
pub fn enable(point: &str) {
    imp::enable(point);
}

/// Disarm a point (no-op in release builds).
pub fn disable(point: &str) {
    imp::disable(point);
}

/// Disarm every programmatically armed point (env-armed points persist).
pub fn clear() {
    imp::clear();
}

/// Panic if the named point is armed. Call this at the injection site.
#[inline]
pub fn panic_point(point: &str) {
    if active(point) {
        panic!("fault injected: {point}");
    }
}

/// Stall for [`SLOW_POINT_DELAY`] if the named point is armed.
#[inline]
pub fn sleep_point(point: &str) {
    if active(point) {
        std::thread::sleep(SLOW_POINT_DELAY);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Fault state is process-global; unit tests here run under one lock so
    // parallel test threads don't observe each other's arming.
    fn serialized() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    #[cfg(debug_assertions)]
    fn enable_disable_roundtrip_in_debug_builds() {
        let _guard = serialized();
        assert!(armed());
        assert!(!active(EMD_PANIC));
        enable(EMD_PANIC);
        assert!(active(EMD_PANIC));
        assert!(!active(SLOW_CELL), "points arm independently");
        disable(EMD_PANIC);
        assert!(!active(EMD_PANIC));
        enable(DROP_CONN);
        enable(TORN_WRITE);
        clear();
        assert!(ALL_POINTS.iter().all(|p| !active(p)));
    }

    #[test]
    #[cfg(debug_assertions)]
    fn panic_point_fires_when_armed() {
        let _guard = serialized();
        enable(EMD_PANIC);
        let result = std::panic::catch_unwind(|| panic_point(EMD_PANIC));
        clear();
        assert!(result.is_err(), "armed panic point must panic");
        panic_point(EMD_PANIC); // disarmed: must not panic
    }

    /// The release contract: fault injection compiles to a no-op. CI runs
    /// this test under `--release` as the build check.
    #[test]
    #[cfg(not(debug_assertions))]
    fn fault_injection_is_inert_in_release_builds() {
        let _guard = serialized();
        assert!(!armed());
        enable(EMD_PANIC);
        enable(SLOW_CELL);
        assert!(ALL_POINTS.iter().all(|p| !active(p)), "release builds never arm");
        panic_point(EMD_PANIC); // must not panic even after enable()
        clear();
    }
}
