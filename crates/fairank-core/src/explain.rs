//! Explanations of `QUANTIFY` decisions.
//!
//! The FaiRank interface lets users interrogate a partitioning tree; this
//! module reconstructs, for every node of a finished tree, the candidate
//! table the greedy search faced — each attribute's split score, which one
//! won, and why leaves stopped (no attributes left, nothing splits, or the
//! split test failed). Panels surface this as the answer to "why did it
//! split on gender here?".

use serde::{Deserialize, Serialize};

use crate::error::Result;
use crate::fairness::FairnessCriterion;
use crate::pairwise::cross_distances;
use crate::partition::{Partition, PartitioningTree};
use crate::space::RankingSpace;

/// One candidate attribute at a node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitCandidate {
    /// Attribute index in the space.
    pub attr: usize,
    /// Attribute name.
    pub name: String,
    /// Number of non-empty children the split would create.
    pub children: usize,
    /// Aggregated pairwise EMD among those children (the `mostUnfair`
    /// selection score).
    pub score: f64,
    /// True for the attribute the search actually chose.
    pub chosen: bool,
}

/// Why a node became a final partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// Every protected attribute was already used on the path (Algorithm 1
    /// line 1).
    NoAttributesLeft,
    /// No remaining attribute takes two or more values inside the node.
    NothingSplits,
    /// The split test failed: the children were not farther from the
    /// siblings than the node itself (line 9).
    NotBeneficial,
}

/// The decision recorded at one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Decision {
    /// The node was split on the named attribute.
    Split {
        /// Attribute index.
        attr: usize,
        /// Attribute name.
        name: String,
    },
    /// The node became a final partition.
    Stop {
        /// Why.
        reason: StopReason,
    },
}

/// The full explanation of one tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeExplanation {
    /// Node id within the tree.
    pub node: usize,
    /// Partition label.
    pub label: String,
    /// Aggregate EMD of the node vs its siblings (Algorithm 1 line 4);
    /// `None` for the root.
    pub current_vs_siblings: Option<f64>,
    /// Candidate table, sorted by score under the criterion's objective
    /// (best first).
    pub candidates: Vec<SplitCandidate>,
    /// What happened.
    pub decision: Decision,
}

/// Explains every node of a finished tree by replaying the search's
/// bookkeeping (candidates, sibling aggregates) against the space.
pub fn explain_tree(
    space: &RankingSpace,
    tree: &PartitioningTree,
    criterion: &FairnessCriterion,
) -> Result<Vec<NodeExplanation>> {
    let scores = space.scores();
    let n_attrs = space.attributes().len();
    let mut out = Vec::with_capacity(tree.len());
    for id in 0..tree.len() {
        let node = tree.node(id);
        let partition = &node.partition;
        // Attributes still available here = all minus those on the path.
        let used: Vec<usize> = partition.path.iter().map(|s| s.attr).collect();
        let avail: Vec<usize> = (0..n_attrs).filter(|a| !used.contains(a)).collect();

        // Sibling set (other children of the parent).
        let siblings: Vec<Partition> = match node.parent {
            None => Vec::new(),
            Some(p) => tree
                .node(p)
                .children
                .iter()
                .filter(|&&c| c != id)
                .map(|&c| tree.node(c).partition.clone())
                .collect(),
        };
        let current_vs_siblings = if siblings.is_empty() {
            None
        } else {
            Some(criterion.versus(partition, &siblings, scores)?)
        };

        // Candidate table.
        let mut candidates = Vec::new();
        for &attr in &avail {
            let children = partition.split(space, attr);
            if children.len() < 2 {
                continue;
            }
            let score = criterion.unfairness(&children, scores)?;
            candidates.push(SplitCandidate {
                attr,
                name: space.attribute(attr).expect("attr exists").name.clone(),
                children: children.len(),
                score,
                chosen: node.split_attr == Some(attr),
            });
        }
        candidates.sort_by(|a, b| {
            let ord = a.score.partial_cmp(&b.score).unwrap_or(std::cmp::Ordering::Equal);
            match criterion.objective {
                crate::fairness::Objective::MostUnfair => ord.reverse(),
                crate::fairness::Objective::LeastUnfair => ord,
            }
        });

        let decision = match node.split_attr {
            Some(attr) => Decision::Split {
                attr,
                name: space.attribute(attr).expect("attr exists").name.clone(),
            },
            None => {
                let reason = if avail.is_empty() {
                    StopReason::NoAttributesLeft
                } else if candidates.is_empty() {
                    StopReason::NothingSplits
                } else {
                    // Reconstruct the failed split test for the best
                    // candidate: children-vs-siblings did not beat
                    // current-vs-siblings.
                    let best = &candidates[0];
                    let children = partition.split(space, best.attr);
                    let hists_children: Vec<_> = children
                        .iter()
                        .map(|p| criterion.histogram(p, scores))
                        .collect();
                    let hists_sib: Vec<_> = siblings
                        .iter()
                        .map(|p| criterion.histogram(p, scores))
                        .collect();
                    // Note: a depth cap or minimum-partition-size guard in
                    // the original search also lands here; the replay
                    // cannot distinguish them from the plain split test.
                    let _ = cross_distances(&hists_children, &hists_sib, &criterion.emd)?;
                    StopReason::NotBeneficial
                };
                Decision::Stop { reason }
            }
        };

        out.push(NodeExplanation {
            node: id,
            label: partition.label(space),
            current_vs_siblings,
            candidates,
            decision,
        });
    }
    Ok(out)
}

/// Renders one explanation as text (used by the session's `why` command).
pub fn render_explanation(explanation: &NodeExplanation) -> String {
    let mut out = format!("why [{}] {}\n", explanation.node, explanation.label);
    if let Some(v) = explanation.current_vs_siblings {
        out.push_str(&format!("  vs siblings: {v:.4}\n"));
    }
    match &explanation.decision {
        Decision::Split { name, .. } => {
            out.push_str(&format!("  decision: SPLIT on {name}\n"));
        }
        Decision::Stop { reason } => {
            let text = match reason {
                StopReason::NoAttributesLeft => "no protected attributes left on this path",
                StopReason::NothingSplits => "no remaining attribute divides this group",
                StopReason::NotBeneficial => {
                    "splitting would not move the objective past the sibling test"
                }
            };
            out.push_str(&format!("  decision: STOP — {text}\n"));
        }
    }
    if !explanation.candidates.is_empty() {
        out.push_str("  candidates:\n");
        for c in &explanation.candidates {
            out.push_str(&format!(
                "    {:<20} score {:.4}  children {}{}\n",
                c.name,
                c.score,
                c.children,
                if c.chosen { "  ← chosen" } else { "" }
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantify::Quantify;
    use crate::space::ProtectedAttribute;

    fn space() -> RankingSpace {
        let g = ProtectedAttribute::from_values(
            "gender",
            &["F", "M", "F", "M", "F", "M", "F", "M"],
        );
        let c = ProtectedAttribute::from_values(
            "color",
            &["r", "r", "b", "b", "r", "b", "r", "b"],
        );
        RankingSpace::new(
            vec![g, c],
            vec![0.1, 0.9, 0.15, 0.85, 0.12, 0.88, 0.11, 0.92],
        )
        .unwrap()
    }

    #[test]
    fn explains_every_node() {
        let s = space();
        let criterion = FairnessCriterion::default();
        let outcome = Quantify::new(criterion).run_space(&s).unwrap();
        let explanations = explain_tree(&s, &outcome.tree, &criterion).unwrap();
        assert_eq!(explanations.len(), outcome.tree.len());
        // Root has no siblings and must be a split (gender separates
        // cleanly).
        assert!(explanations[0].current_vs_siblings.is_none());
        assert!(matches!(explanations[0].decision, Decision::Split { .. }));
    }

    #[test]
    fn chosen_candidate_is_the_best_under_the_objective() {
        let s = space();
        let criterion = FairnessCriterion::default();
        let outcome = Quantify::new(criterion).run_space(&s).unwrap();
        let explanations = explain_tree(&s, &outcome.tree, &criterion).unwrap();
        for e in &explanations {
            if let Decision::Split { attr, .. } = e.decision {
                // The candidate table is sorted best-first, so the chosen
                // attribute must be the first entry.
                assert_eq!(e.candidates[0].attr, attr, "node {}", e.node);
                assert!(e.candidates[0].chosen);
            }
        }
    }

    #[test]
    fn leaves_carry_stop_reasons() {
        let s = space();
        let criterion = FairnessCriterion::default();
        let outcome = Quantify::new(criterion).run_space(&s).unwrap();
        let explanations = explain_tree(&s, &outcome.tree, &criterion).unwrap();
        let leaf_ids = outcome.tree.leaf_ids();
        for id in leaf_ids {
            match &explanations[id].decision {
                Decision::Stop { .. } => {}
                other => panic!("leaf {id} has non-stop decision {other:?}"),
            }
        }
    }

    #[test]
    fn rendering_mentions_decision_and_candidates() {
        let s = space();
        let criterion = FairnessCriterion::default();
        let outcome = Quantify::new(criterion).run_space(&s).unwrap();
        let explanations = explain_tree(&s, &outcome.tree, &criterion).unwrap();
        let text = render_explanation(&explanations[0]);
        assert!(text.contains("SPLIT on"));
        assert!(text.contains("← chosen"));
        // Find a leaf and confirm a STOP line renders.
        let leaf = outcome.tree.leaf_ids()[0];
        let text = render_explanation(&explanations[leaf]);
        assert!(text.contains("STOP"));
    }

    #[test]
    fn depth_capped_trees_explain_without_panicking() {
        let s = space();
        let criterion = FairnessCriterion::default();
        let outcome = Quantify::new(criterion)
            .with_max_depth(1)
            .run_space(&s)
            .unwrap();
        // Depth-capped leaves may look like "NotBeneficial" from replay —
        // the explanation must still be produced for every node.
        let explanations = explain_tree(&s, &outcome.tree, &criterion).unwrap();
        assert_eq!(explanations.len(), outcome.tree.len());
    }
}
