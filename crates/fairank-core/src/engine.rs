//! The split-evaluation engine shared by every partitioning search.
//!
//! Evaluating candidate splits dominates the `QUANTIFY` hot path: the naive
//! formulation re-derives `bin_of(score)` for every row of every histogram,
//! materializes a `Vec<u32>` row-set per candidate child just to histogram
//! it, recomputes the winning split that `mostUnfair` already scored, and
//! re-evaluates the same partition-pair EMDs at every recursion level.
//! [`SplitEngine`] removes all four costs while remaining *bit-identical*
//! to the naive evaluation order (asserted by the `engine_equivalence`
//! property suite):
//!
//! 1. **Binned-score cache** — [`RankingSpace::bin_codes`] is computed once
//!    per run, so building a histogram over a row subset is pure counting.
//! 2. **One-pass counting splits** — [`SplitEngine::best_split`] scores
//!    every candidate attribute of a node with a single scan over the
//!    node's rows, accumulating `counts[value][bin]` directly; candidate
//!    children get histograms without child row vectors ever materializing
//!    (rows materialize only for the winning attribute, and only once the
//!    split is accepted).
//! 3. **Winner cache** — the winning attribute and interned handles to its
//!    child histograms are handed back in a [`CandidateSplit`]; the
//!    histograms live on in the engine's arenas and their pairwise
//!    distances in the memo, so the recursion's follow-up evaluations
//!    reuse what `mostUnfair` already built.
//! 4. **EMD memo table** — histogram cache entries are keyed by partition
//!    *path* (the conjunction of attribute constraints uniquely identifies
//!    a partition's rows within one space) and each distinct histogram
//!    *content* is interned to a small id; distances are memoized by id
//!    pair. Content keying subsumes path identity — a node's histogram,
//!    hence its distance to any fixed sibling, is identical across
//!    recursion levels — and additionally collapses the huge pairwise
//!    matrices over fine partitionings, whose small partitions repeat the
//!    same few score distributions constantly.
//!
//! The core is *data-oriented*: every cache is a flat, preallocated arena
//! indexed by dense `u32` ids rather than a pointer-heavy map of owned
//! keys.
//!
//! * Partition paths live in a [`PathTrie`] — parallel `Vec`s of nodes and
//!   intrusive edge lists — so a path lookup is a walk over packed
//!   `(attr, code)` words instead of hashing (and, on insert, cloning) a
//!   `Vec<PathStep>` key.
//! * Histogram contents live in a [`ContentTable`]: one flat `counts` row
//!   per content id (stride = bins) plus a lazily-filled, equally flat
//!   normalized-mass arena. No per-id `Histogram` or boxed mass vector is
//!   allocated on the hot path; `Histogram` values materialize only for
//!   the transport backend and the public [`SplitEngine::histogram`].
//! * The EMD memo packs the unordered content-id pair into one `u64` key
//!   over an open-addressed, linear-probing [`FlatMemo`] (Fibonacci
//!   hashing) — the single hottest table of a search, probed once per
//!   partition pair per recursion level.
//! * All transient buffers (distance vectors, batch dedup tables, split
//!   counting grids, SoA fold scratch) persist in a [`Scratch`] pool and
//!   are reused across calls, so steady-state evaluation does not allocate.
//!
//! The engine mirrors [`FairnessCriterion`]'s aggregation orders exactly
//! (pairwise `(0,1), (0,2), …` and children-outer cross products), so
//! floating-point accumulation is unchanged and search results do not move
//! by a single bit.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

use crate::cancel::{BudgetChecker, CancelReason, RunBudget};
use crate::emd::EmdBackendKind;
use crate::error::{CoreError, Result};
use crate::fairness::FairnessCriterion;
use crate::fault;
use crate::histogram::{Histogram, HistogramSpec};
use crate::partition::{Partition, PathStep};
use crate::quantify::SearchStats;
use crate::space::RankingSpace;

/// Multiply-rotate hasher for the engine's internal maps. The keys are
/// small, trusted, and hashed millions of times per search, where SipHash's
/// DoS resistance costs more than the EMD it saves; this is the FxHash
/// folding scheme over 8-byte chunks.
#[derive(Default)]
struct EngineHasher(u64);

impl EngineHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for EngineHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.fold(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }
}

type EngineMap<K, V> = HashMap<K, V, BuildHasherDefault<EngineHasher>>;

// ---- small-input bypass ---------------------------------------------------
//
// On small spaces even the flat tables' per-lookup overhead (hashing a
// counts row, probing the open-addressed memo) exceeds the arithmetic it
// saves — the ROADMAP's "slightly slower than naive on ≤1k rows" soft
// spot. Small runs produce only a handful of distinct contents, so the
// engine swaps the content index for a linear scan and the memo for a
// dense id×id matrix. Caching behavior (hence stats and results) is
// bit-for-bit the same; only the container changes.

/// Row-count ceiling for the compact (bypass) caches.
const SMALL_SPACE_ROWS: usize = 1024;
/// Attribute-count ceiling for the compact caches (more attributes mean
/// more distinct paths, where linear scans stop paying off).
const SMALL_SPACE_ATTRS: usize = 4;
/// Total-cardinality ceiling (sum over attributes of distinct values).
/// Cache entry counts — and the dense matrix's stride — grow with the
/// number of distinct partitions, which is driven by cardinality, not by
/// attribute count; a 2-attribute space with a 1000-value column would
/// turn the linear scans quadratic and the matrix huge.
const SMALL_SPACE_CARDINALITY: usize = 64;

/// "No entry" marker for the trie's `u32` indices.
const NONE32: u32 = u32::MAX;

/// Packs one path constraint into a single trie-edge word.
#[inline]
fn pack_step(attr: usize, code: u32) -> u64 {
    ((attr as u64) << 32) | code as u64
}

/// Path → content-id cache as a trie over packed `(attr, code)` edges,
/// stored as parallel arrays: per node a head into an intrusive edge list
/// and the interned content id (or [`NONE32`]); per edge the packed step,
/// the child node, and the next edge of the same parent. Node 0 is the
/// root (the empty path). Lookups walk words instead of hashing a
/// `Vec<PathStep>`, and inserting a child never clones the parent path.
#[derive(Debug)]
struct PathTrie {
    first_edge: Vec<u32>,
    content: Vec<u32>,
    edge_step: Vec<u64>,
    edge_child: Vec<u32>,
    edge_next: Vec<u32>,
}

impl PathTrie {
    fn new() -> Self {
        PathTrie {
            first_edge: vec![NONE32],
            content: vec![NONE32],
            edge_step: Vec::new(),
            edge_child: Vec::new(),
            edge_next: Vec::new(),
        }
    }

    /// The node for `path`, creating any missing suffix.
    fn node_of(&mut self, path: &[PathStep]) -> u32 {
        let mut node = 0u32;
        for step in path {
            node = self.child_node(node, pack_step(step.attr, step.code));
        }
        node
    }

    /// The child of `node` along `step`, created on first use.
    fn child_node(&mut self, node: u32, step: u64) -> u32 {
        let mut e = self.first_edge[node as usize];
        while e != NONE32 {
            let ei = e as usize;
            if self.edge_step[ei] == step {
                return self.edge_child[ei];
            }
            e = self.edge_next[ei];
        }
        let child = self.first_edge.len() as u32;
        self.first_edge.push(NONE32);
        self.content.push(NONE32);
        let edge = self.edge_step.len() as u32;
        self.edge_step.push(step);
        self.edge_child.push(child);
        self.edge_next.push(self.first_edge[node as usize]);
        self.first_edge[node as usize] = edge;
        child
    }

    #[inline]
    fn content(&self, node: u32) -> Option<u32> {
        let id = self.content[node as usize];
        (id != NONE32).then_some(id)
    }

    #[inline]
    fn set_content(&mut self, node: u32, id: u32) {
        self.content[node as usize] = id;
    }

    /// The node for `path` without creating anything — `None` if some step
    /// was never inserted.
    fn lookup(&self, path: &[PathStep]) -> Option<u32> {
        let mut node = 0u32;
        for step in path {
            node = self.lookup_child(node, pack_step(step.attr, step.code))?;
        }
        Some(node)
    }

    /// The child of `node` along `step` without creating it.
    fn lookup_child(&self, node: u32, step: u64) -> Option<u32> {
        let mut e = self.first_edge[node as usize];
        while e != NONE32 {
            let ei = e as usize;
            if self.edge_step[ei] == step {
                return Some(self.edge_child[ei]);
            }
            e = self.edge_next[ei];
        }
        None
    }

    /// The cached content of `node`'s child along `step`, if both the edge
    /// and its content exist.
    fn child_content(&self, node: u32, step: u64) -> Option<u32> {
        self.content(self.lookup_child(node, step)?)
    }

    /// Visits every `(packed step, child node)` edge of `node`, in the
    /// list's (reverse-insertion) order.
    fn for_each_edge<F: FnMut(u64, u32)>(&self, node: u32, mut f: F) {
        let mut e = self.first_edge[node as usize];
        while e != NONE32 {
            let ei = e as usize;
            f(self.edge_step[ei], self.edge_child[ei]);
            e = self.edge_next[ei];
        }
    }

    fn num_nodes(&self) -> usize {
        self.first_edge.len()
    }

    /// Rewrites every stored content id through `remap` after a
    /// [`ContentTable::retain_content`] compaction. Every referenced id
    /// must have been kept live.
    fn remap_contents(&mut self, remap: &[u32]) {
        for c in &mut self.content {
            if *c != NONE32 {
                debug_assert_ne!(remap[*c as usize], NONE32, "live content dropped");
                *c = remap[*c as usize];
            }
        }
    }
}

/// How the [`ContentTable`] finds an existing id for a counts row.
#[derive(Debug)]
enum ContentIndex {
    /// FxHash of the row → candidate ids (collisions resolved by comparing
    /// the actual rows in the arena).
    Hashed(EngineMap<u64, Vec<u32>>),
    /// Linear scan over all rows — faster when only a handful of distinct
    /// contents exist.
    Compact,
}

/// The interned-histogram arena: one flat `counts` row per content id
/// (stride = bins), a parallel total, and a lazily-filled flat
/// normalized-mass arena — the hoisted per-histogram work of the batched
/// and kernel backends. `Histogram` values are materialized only on demand
/// (transport backend, public histogram lookups); the hot path works on
/// the raw rows.
#[derive(Debug)]
struct ContentTable {
    spec: HistogramSpec,
    bins: usize,
    /// `counts[id * bins .. (id + 1) * bins]` is content `id`'s row.
    counts: Vec<u64>,
    /// Total count per content id.
    totals: Vec<u64>,
    /// `masses[id * bins ..]`, valid once `mass_ready[id]`.
    masses: Vec<f64>,
    mass_ready: Vec<bool>,
    /// Lazily materialized canonical `Histogram` per id.
    hists: Vec<Option<Histogram>>,
    /// Generation tag per id: the [`Self::stamp`] in force when the id was
    /// interned (or last confirmed by a mutation / reuse count). Lets an
    /// incremental run count how much of an earlier generation's cache it
    /// actually consulted. All zeros for from-scratch engines.
    gen: Vec<u32>,
    /// Tag applied to newly interned contents.
    stamp: u32,
    index: ContentIndex,
}

impl ContentTable {
    fn new(spec: HistogramSpec, index: ContentIndex) -> Self {
        ContentTable {
            bins: spec.bins(),
            spec,
            counts: Vec::new(),
            totals: Vec::new(),
            masses: Vec::new(),
            mass_ready: Vec::new(),
            hists: Vec::new(),
            gen: Vec::new(),
            stamp: 0,
            index,
        }
    }

    fn hash_row(row: &[u64]) -> u64 {
        let mut h = EngineHasher::default();
        for &w in row {
            h.write_u64(w);
        }
        h.finish()
    }

    fn row(&self, id: u32) -> &[u64] {
        let base = id as usize * self.bins;
        &self.counts[base..base + self.bins]
    }

    fn find(&self, row: &[u64]) -> Option<u32> {
        match &self.index {
            ContentIndex::Compact => (0..self.totals.len() as u32).find(|&id| self.row(id) == row),
            ContentIndex::Hashed(map) => map
                .get(&Self::hash_row(row))?
                .iter()
                .copied()
                .find(|&id| self.row(id) == row),
        }
    }

    /// Interns a counts row, returning a dense id such that equal rows
    /// always map to the same id. Hits allocate nothing; a miss appends
    /// one row to each arena.
    fn intern(&mut self, row: &[u64]) -> u32 {
        debug_assert_eq!(row.len(), self.bins, "one slot per bin");
        if let Some(id) = self.find(row) {
            return id;
        }
        let id = self.totals.len() as u32;
        self.counts.extend_from_slice(row);
        self.totals.push(row.iter().sum());
        self.masses.resize(self.masses.len() + self.bins, 0.0);
        self.mass_ready.push(false);
        self.hists.push(None);
        self.gen.push(self.stamp);
        if let ContentIndex::Hashed(map) = &mut self.index {
            let h = Self::hash_row(row);
            map.entry(h).or_default().push(id);
        }
        id
    }

    /// Number of interned contents.
    fn len(&self) -> usize {
        self.totals.len()
    }

    /// Overwrites the id's generation tag (mutation layers stamp adjusted
    /// or reconfirmed contents with the current generation).
    #[inline]
    fn mark_generation(&mut self, id: u32, generation: u32) {
        self.gen[id as usize] = generation;
    }

    /// Drops every content whose `live` flag is false, compacting the
    /// arenas in id order, and returns the old-id → new-id map
    /// ([`NONE32`] marks a dropped id). The map is monotonic, so canonical
    /// (unordered, `lo <= hi`) pair orientations survive rekeying.
    fn retain_content(&mut self, live: &[bool]) -> Vec<u32> {
        let n = self.totals.len();
        debug_assert_eq!(live.len(), n, "one flag per content id");
        let mut remap = vec![NONE32; n];
        let mut next = 0u32;
        for (old, &keep) in live.iter().enumerate() {
            if !keep {
                continue;
            }
            let new = next as usize;
            next += 1;
            remap[old] = new as u32;
            if new != old {
                let (ob, nb) = (old * self.bins, new * self.bins);
                self.counts.copy_within(ob..ob + self.bins, nb);
                self.masses.copy_within(ob..ob + self.bins, nb);
                self.totals[new] = self.totals[old];
                self.mass_ready[new] = self.mass_ready[old];
                self.hists.swap(new, old);
                self.gen[new] = self.gen[old];
            }
        }
        let kept = next as usize;
        self.counts.truncate(kept * self.bins);
        self.masses.truncate(kept * self.bins);
        self.totals.truncate(kept);
        self.mass_ready.truncate(kept);
        self.hists.truncate(kept);
        self.gen.truncate(kept);
        if matches!(self.index, ContentIndex::Hashed(_)) {
            let hashes: Vec<u64> = (0..kept as u32)
                .map(|id| Self::hash_row(self.row(id)))
                .collect();
            if let ContentIndex::Hashed(map) = &mut self.index {
                map.clear();
                for (id, h) in hashes.into_iter().enumerate() {
                    map.entry(h).or_default().push(id as u32);
                }
            }
        }
        remap
    }

    #[inline]
    fn is_empty(&self, id: u32) -> bool {
        self.totals[id as usize] == 0
    }

    /// Fills the id's normalized-mass row on first use (bit-identical to
    /// [`Histogram::mass`]: `count / total` per bin).
    fn ensure_mass(&mut self, id: u32) {
        let i = id as usize;
        if self.mass_ready[i] {
            return;
        }
        let total = self.totals[i];
        let base = i * self.bins;
        if total != 0 {
            let t = total as f64;
            for bin in 0..self.bins {
                self.masses[base + bin] = self.counts[base + bin] as f64 / t;
            }
        }
        self.mass_ready[i] = true;
    }

    #[inline]
    fn mass(&self, id: u32) -> &[f64] {
        debug_assert!(self.mass_ready[id as usize], "ensure_mass first");
        let base = id as usize * self.bins;
        &self.masses[base..base + self.bins]
    }

    /// Materializes the id's canonical `Histogram` on first use.
    fn ensure_hist(&mut self, id: u32) {
        let i = id as usize;
        if self.hists[i].is_none() {
            let row = self.counts[i * self.bins..(i + 1) * self.bins].to_vec();
            self.hists[i] = Some(Histogram::from_counts(self.spec, row));
        }
    }

    #[inline]
    fn hist(&self, id: u32) -> &Histogram {
        self.hists[id as usize].as_ref().expect("ensure_hist first")
    }

    /// An owned `Histogram` of the id's content.
    fn hist_owned(&self, id: u32) -> Histogram {
        Histogram::from_counts(self.spec, self.row(id).to_vec())
    }
}

/// Open-addressed, linear-probing memo from a packed unordered id pair to
/// a distance. Fibonacci hashing over a power-of-two table, grown at 50%
/// load — the hottest table of a search, where even an FxHash `HashMap`'s
/// control-byte probing and tuple hashing are measurable.
#[derive(Debug)]
struct FlatMemo {
    /// Slot keys; [`u64::MAX`] marks an empty slot (never a real key:
    /// content ids stay far below `u32::MAX`).
    keys: Vec<u64>,
    vals: Vec<f64>,
    len: usize,
}

impl FlatMemo {
    const EMPTY: u64 = u64::MAX;

    fn new() -> Self {
        FlatMemo {
            keys: vec![Self::EMPTY; 64],
            vals: vec![0.0; 64],
            len: 0,
        }
    }

    #[inline]
    fn start(&self, key: u64) -> usize {
        // Fibonacci hashing: multiply by 2^64/φ, keep the top log2(cap) bits.
        let shift = 64 - self.keys.len().trailing_zeros();
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> shift) as usize
    }

    fn get(&self, key: u64) -> Option<f64> {
        let mask = self.keys.len() - 1;
        let mut i = self.start(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.vals[i]);
            }
            if k == Self::EMPTY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    fn insert(&mut self, key: u64, val: f64) {
        debug_assert_ne!(key, Self::EMPTY, "key reserved for empty slots");
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = self.start(key);
        loop {
            let k = self.keys[i];
            if k == Self::EMPTY {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return;
            }
            if k == key {
                self.vals[i] = val;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![Self::EMPTY; cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0.0; cap]);
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != Self::EMPTY {
                self.insert(k, v);
            }
        }
    }

    /// Selective invalidation: rewrites every surviving entry's id pair
    /// through `remap` (old content id → new id, [`NONE32`] = dropped) and
    /// discards entries touching a dropped id. Returns the number of
    /// entries dropped. A monotonic remap preserves canonical pair
    /// orientation, so rekeyed entries stay findable under `canon`.
    fn retain_rekey(&mut self, remap: &[u32]) -> usize {
        let cap = self.keys.len();
        let old_keys = std::mem::replace(&mut self.keys, vec![Self::EMPTY; cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0.0; cap]);
        self.len = 0;
        let mut dropped = 0usize;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k == Self::EMPTY {
                continue;
            }
            let (a, b) = ((k >> 32) as usize, (k & 0xFFFF_FFFF) as usize);
            let ra = remap.get(a).copied().unwrap_or(NONE32);
            let rb = remap.get(b).copied().unwrap_or(NONE32);
            if ra == NONE32 || rb == NONE32 {
                dropped += 1;
            } else {
                self.insert(((ra as u64) << 32) | rb as u64, v);
            }
        }
        dropped
    }
}

/// EMD memo keyed by the (canonical) pair of content ids. The compact form
/// is a dense stride×stride matrix: content ids are small and dense, so a
/// direct index beats any probing on the memo's very hot lookup path. The
/// general form is the open-addressed [`FlatMemo`]. Empty dense cells hold
/// NaN — a value no (validated) distance ever takes.
#[derive(Debug)]
enum EmdMemo {
    Flat(FlatMemo),
    Dense { stride: usize, cells: Vec<f64> },
}

impl EmdMemo {
    #[inline]
    fn pack(a: u32, b: u32) -> u64 {
        ((a as u64) << 32) | b as u64
    }

    fn get(&self, a: u32, b: u32) -> Option<f64> {
        match self {
            EmdMemo::Flat(memo) => memo.get(Self::pack(a, b)),
            EmdMemo::Dense { stride, cells } => {
                let (a, b) = (a as usize, b as usize);
                if a < *stride && b < *stride {
                    let v = cells[a * stride + b];
                    (!v.is_nan()).then_some(v)
                } else {
                    None
                }
            }
        }
    }

    fn insert(&mut self, a: u32, b: u32, d: f64) {
        match self {
            EmdMemo::Flat(memo) => memo.insert(Self::pack(a, b), d),
            EmdMemo::Dense { stride, cells } => {
                let needed = (a.max(b) as usize) + 1;
                if needed > *stride {
                    let new_stride = needed.next_power_of_two().max(8);
                    let mut grown = vec![f64::NAN; new_stride * new_stride];
                    for row in 0..*stride {
                        for col in 0..*stride {
                            grown[row * new_stride + col] = cells[row * *stride + col];
                        }
                    }
                    *cells = grown;
                    *stride = new_stride;
                }
                cells[(a as usize) * *stride + (b as usize)] = d;
            }
        }
    }

    /// Selective invalidation over either representation: entries touching
    /// a dropped content id ([`NONE32`] in `remap`) are discarded, the rest
    /// rekeyed in place. Returns the number of entries dropped.
    fn retain_rekey(&mut self, remap: &[u32]) -> usize {
        match self {
            EmdMemo::Flat(memo) => memo.retain_rekey(remap),
            EmdMemo::Dense { stride, cells } => {
                let s = *stride;
                let mut kept: Vec<(usize, usize, f64)> = Vec::new();
                let mut dropped = 0usize;
                for a in 0..s {
                    for b in 0..s {
                        let v = cells[a * s + b];
                        if v.is_nan() {
                            continue;
                        }
                        let ra = remap.get(a).copied().unwrap_or(NONE32);
                        let rb = remap.get(b).copied().unwrap_or(NONE32);
                        if ra == NONE32 || rb == NONE32 {
                            dropped += 1;
                        } else {
                            // Monotonic remap: ra <= a and rb <= b, so the
                            // rekeyed cell stays inside the stride.
                            kept.push((ra as usize, rb as usize, v));
                        }
                    }
                }
                for c in cells.iter_mut() {
                    *c = f64::NAN;
                }
                for (a, b, v) in kept {
                    cells[a * s + b] = v;
                }
                dropped
            }
        }
    }
}

/// Canonical (unordered) orientation of a content-id pair.
#[inline]
fn canon(a: u32, b: u32) -> (u32, u32) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Reusable buffers for the engine's transient per-call state. Taken with
/// `mem::take` for the duration of a call and put back afterwards, so
/// nested calls use disjoint fields and steady-state evaluation never
/// allocates.
#[derive(Debug, Default)]
struct Scratch {
    /// Distance vectors handed to the aggregator.
    dists: Vec<f64>,
    /// Content-id lists of the partitions under evaluation.
    ids: Vec<u32>,
    /// Distinct content ids of one batch.
    distinct: Vec<u32>,
    /// content id → slot in `distinct` ([`NONE32`] = unseen), reset after
    /// every batch by walking `distinct`, so dedup is O(L + D) instead of
    /// a per-id linear scan.
    slot_lookup: Vec<u32>,
    /// Slot (index into `distinct`) per batch element.
    slots: Vec<u32>,
    /// Second slot list for cross batches.
    slots2: Vec<u32>,
    /// Dense distinct×distinct distance table of one batch.
    table: Vec<f64>,
    /// Which cross-batch table cells have been encountered.
    have: Vec<bool>,
    /// Distinct slot pairs not served by the memo.
    missing: Vec<(u32, u32)>,
    /// Bin-major SoA mass matrix for the kernel fold.
    soa: Vec<f64>,
    /// Kernel fold accumulators.
    cum: Vec<f64>,
    total: Vec<f64>,
    folded: Vec<f64>,
    /// `counts[value * bins + bin]` grid of `best_split`'s one-pass scan.
    counts: Vec<u64>,
    /// Rows per value code in `best_split`.
    sizes: Vec<u32>,
}

/// Work counters the engine maintains, surfaced through `SearchStats` and
/// the beam/exhaustive outcomes so perf regressions are assertable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Histograms actually constructed (cache misses included, cache hits
    /// not).
    pub histograms_built: usize,
    /// EMD distances actually computed (memo misses).
    pub emd_calls: usize,
    /// Distance lookups served from the memo table.
    pub emd_cache_hits: usize,
    /// Pairwise/cross aggregations resolved as one batch by the batched or
    /// kernel backend (each batch touches the memo once per *distinct*
    /// histogram pair instead of once per leaf pair).
    pub pairwise_batches: usize,
    /// Distinct cached histogram contents an incremental (delta) run
    /// consulted that were built by an earlier generation — the measure of
    /// how much of the previous search survived the mutation. Always 0 for
    /// from-scratch engines (generation 0).
    pub delta_reused_histograms: usize,
    /// EMD memo entries dropped by targeted invalidation (compaction of
    /// contents orphaned by space mutations). Seeded by the incremental
    /// subsystem; always 0 for from-scratch engines.
    pub delta_invalidated_emds: usize,
}

/// The winning candidate split of a node: the attribute, its `mostUnfair`
/// score, and interned handles to the children's histograms (in ascending
/// value-code order, the same order [`Partition::split`] produces). The
/// handles are how the winner cache works: the children's histograms live
/// in the engine's arena and their pairwise distances in the memo, so the
/// recursion's follow-up evaluations reuse both instead of recomputing.
#[derive(Debug, Clone)]
pub struct CandidateSplit {
    /// The winning attribute index.
    pub attr: usize,
    /// Aggregated pairwise distance among the children (the `mostUnfair`
    /// score of this split).
    pub value: f64,
    /// Interned content id of each child histogram (engine-internal memo
    /// handles).
    pub(crate) child_ids: Vec<u32>,
    /// The attribute value code behind each child, parallel to
    /// `child_ids`. Codes are stable across memo compactions (content ids
    /// are not), so they are what the incremental layer caches to
    /// reconstruct a clean node's winner without re-scoring anything.
    pub(crate) child_codes: Vec<u32>,
}

/// One attribute's recorded split summary at a trie node: the `(code,
/// rows)` pairs of the counting pass, ascending by code. Recorded by
/// [`SplitEngine::best_split`] when eval recording is on, incrementally
/// patched by membership events ([`EngineParts::apply_event`]), and read
/// back by [`SplitEngine::delta_best_split`] to reproduce the exact
/// candidate set — including the `< 2 children` and min-size skips —
/// without rescanning the node's rows.
#[derive(Debug, Clone)]
struct AttrEval {
    attr: usize,
    /// Present codes and their row counts, ascending by code. Entries may
    /// decay to zero rows (a bin emptied by churn); reconstruction skips
    /// them exactly like a fresh counting pass would.
    sizes: Vec<(u32, u32)>,
}

/// Shared evaluation context for one search run over one ranking space.
#[derive(Debug)]
pub struct SplitEngine<'a> {
    space: &'a RankingSpace,
    criterion: FairnessCriterion,
    /// `bin_codes[row]` = histogram bin of the row's score.
    bin_codes: Vec<u32>,
    /// Histogram cache: partition path → interned content id.
    paths: PathTrie,
    /// Interned histogram contents: flat counts/mass arenas plus the
    /// content → id index.
    contents: ContentTable,
    /// EMD memo keyed by the unordered (canonical) pair of content ids.
    emd_memo: EmdMemo,
    /// Per-trie-node split summaries ([`AttrEval`]), populated only when
    /// `record_evals` is on (the incremental layer's summary source).
    eval_log: Vec<Vec<AttrEval>>,
    record_evals: bool,
    /// The incremental layer's generation counter (0 for from-scratch
    /// engines): contents tagged with an older generation count as reused
    /// when consulted.
    generation: u32,
    /// Trie nodes whose partitions contain at least one row touched by a
    /// mutation since the last completed replay ([`EngineParts::apply_event`]
    /// visits exactly those). A partition whose trie node is absent from
    /// this set has a bit-unchanged subtree: histograms, summaries, and
    /// every split decision beneath it.
    dirty_paths: HashSet<u32>,
    stats: EngineStats,
    scratch: Scratch,
    /// Strided cooperative-cancellation poll; unlimited by default, so one
    /// predictable branch per distance evaluation on the hot path.
    checker: BudgetChecker,
}

impl<'a> SplitEngine<'a> {
    /// An engine for one run of a search under `criterion` on `space`.
    /// Small spaces (≤ [`SMALL_SPACE_ROWS`] rows, ≤ [`SMALL_SPACE_ATTRS`]
    /// attributes, ≤ [`SMALL_SPACE_CARDINALITY`] total distinct values)
    /// get the compact caches — identical semantics, no hashing overhead.
    pub fn new(space: &'a RankingSpace, criterion: FairnessCriterion) -> Self {
        let total_cardinality: usize = space
            .attributes()
            .iter()
            .map(|a| a.cardinality())
            .sum();
        let compact = space.num_individuals() <= SMALL_SPACE_ROWS
            && space.attributes().len() <= SMALL_SPACE_ATTRS
            && total_cardinality <= SMALL_SPACE_CARDINALITY;
        Self::new_with_layout(space, criterion, compact)
    }

    /// An engine with the cache layout chosen explicitly (`new` picks it
    /// from the space's size; tests force both to pin their equivalence).
    fn new_with_layout(space: &'a RankingSpace, criterion: FairnessCriterion, compact: bool) -> Self {
        let (index, emd_memo) = if compact {
            (
                ContentIndex::Compact,
                EmdMemo::Dense {
                    stride: 0,
                    cells: Vec::new(),
                },
            )
        } else {
            (
                ContentIndex::Hashed(EngineMap::default()),
                EmdMemo::Flat(FlatMemo::new()),
            )
        };
        SplitEngine {
            bin_codes: space.bin_codes(&criterion.hist),
            space,
            contents: ContentTable::new(criterion.hist, index),
            criterion,
            paths: PathTrie::new(),
            emd_memo,
            eval_log: Vec::new(),
            record_evals: false,
            generation: 0,
            dirty_paths: HashSet::new(),
            stats: EngineStats::default(),
            scratch: Scratch::default(),
            checker: RunBudget::unlimited().checker(),
        }
    }

    /// Attaches a cooperative cancellation budget: distance evaluations
    /// tick a strided [`BudgetChecker`], and searches poll
    /// [`Self::check_budget`] at node boundaries. A fired budget surfaces
    /// as [`CoreError::Cancelled`] carrying the engine's counters so far.
    pub fn set_run_budget(&mut self, budget: &RunBudget) {
        self.checker = budget.checker();
    }

    /// The engine's counters shaped as partial [`SearchStats`] (the
    /// search-level fields are filled in by whichever search is running).
    fn partial_stats(&self) -> SearchStats {
        SearchStats {
            histograms_built: self.stats.histograms_built,
            emd_calls: self.stats.emd_calls,
            emd_cache_hits: self.stats.emd_cache_hits,
            pairwise_batches: self.stats.pairwise_batches,
            delta_reused_histograms: self.stats.delta_reused_histograms,
            delta_invalidated_emds: self.stats.delta_invalidated_emds,
            ..SearchStats::default()
        }
    }

    fn cancelled(&self, reason: CancelReason) -> CoreError {
        CoreError::Cancelled {
            reason,
            stats: self.partial_stats(),
        }
    }

    /// Polls the budget immediately (search loops call this per node/state).
    pub fn check_budget(&self) -> Result<()> {
        self.checker
            .check_now()
            .map_err(|reason| self.cancelled(reason))
    }

    #[inline]
    fn tick(&mut self) -> Result<()> {
        match self.checker.tick() {
            Ok(()) => Ok(()),
            Err(reason) => Err(self.cancelled(reason)),
        }
    }

    #[inline]
    fn tick_n(&mut self, n: usize) -> Result<()> {
        match self.checker.tick_n(n) {
            Ok(()) => Ok(()),
            Err(reason) => Err(self.cancelled(reason)),
        }
    }

    /// Whether this engine runs on the compact small-input caches.
    pub fn uses_compact_caches(&self) -> bool {
        matches!(self.emd_memo, EmdMemo::Dense { .. })
    }

    /// The space this engine evaluates over.
    pub fn space(&self) -> &'a RankingSpace {
        self.space
    }

    /// The criterion this engine evaluates under.
    pub fn criterion(&self) -> &FairnessCriterion {
        &self.criterion
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Counts `id` as a cross-generation reuse the first time an
    /// incremental run consults it: contents tagged with an older
    /// generation are restamped current so each survivor counts once.
    /// From-scratch engines stay at generation 0, where nothing predates
    /// the run, so the counter (and this branch's work) stays zero.
    #[inline]
    fn note_reuse(&mut self, id: u32) {
        if self.contents.gen[id as usize] < self.generation {
            self.contents.gen[id as usize] = self.generation;
            self.stats.delta_reused_histograms += 1;
        }
    }

    /// The partition's histogram content id, built through the binned-score
    /// cache on a trie miss. Hits walk the trie and allocate nothing.
    fn hist_id(&mut self, partition: &Partition) -> u32 {
        let node = self.paths.node_of(&partition.path);
        if let Some(id) = self.paths.content(node) {
            self.note_reuse(id);
            return id;
        }
        let bins = self.contents.bins;
        let mut counts = std::mem::take(&mut self.scratch.counts);
        counts.clear();
        counts.resize(bins, 0);
        for &row in &partition.rows {
            counts[self.bin_codes[row as usize] as usize] += 1;
        }
        self.stats.histograms_built += 1;
        let id = self.contents.intern(&counts);
        self.scratch.counts = counts;
        self.paths.set_content(node, id);
        id
    }

    /// The partition's score histogram (materialized from the arena row).
    pub fn histogram(&mut self, partition: &Partition) -> Histogram {
        let id = self.hist_id(partition);
        self.contents.hist_owned(id)
    }

    /// A memo miss resolved for the per-pair backends: the 1-D closed form
    /// folds directly from the hoisted mass arena (bit-identical to
    /// [`crate::emd::Emd::distance`]; conventions and the fold are the
    /// backend layer's single source), the transport solver gets lazily
    /// materialized canonical `Histogram`s.
    fn compute_pair(&mut self, lo: u32, hi: u32) -> Result<f64> {
        // The cancellation tick lives on this miss path, not in
        // `distance` itself: memo hits are pure lookups (millions per
        // search, nanoseconds each), so ticking them bought no latency
        // bound worth measuring yet cost ~8% on the hot profile. Every
        // 256 *computed* distances — the operations that actually burn
        // time — poll the budget.
        self.tick()?;
        fault::panic_point(fault::EMD_PANIC);
        if self.criterion.emd.backend() == EmdBackendKind::Transport {
            let emd = self.criterion.emd;
            self.contents.ensure_hist(lo);
            self.contents.ensure_hist(hi);
            return emd.distance(self.contents.hist(lo), self.contents.hist(hi));
        }
        self.contents.ensure_mass(lo);
        self.contents.ensure_mass(hi);
        Ok(crate::emd::backend::one_d_from_parts(
            self.contents.is_empty(lo),
            self.contents.is_empty(hi),
            self.contents.mass(lo),
            self.contents.mass(hi),
            &self.criterion.hist,
        ))
    }

    /// Memoized EMD between two content-identified histograms. The distance
    /// is a pure function of the two count vectors (and the shared spec),
    /// so equal content ids always reproduce the exact bits of a fresh
    /// computation. Every backend is bitwise symmetric (the 1-D closed
    /// form because CDF differences negate exactly, the transport solver
    /// because it canonicalizes its input order), so the memo keys on the
    /// unordered pair and one computation serves both directions.
    fn distance(&mut self, id_a: u32, id_b: u32) -> Result<f64> {
        let (lo, hi) = canon(id_a, id_b);
        if let Some(d) = self.emd_memo.get(lo, hi) {
            self.stats.emd_cache_hits += 1;
            return Ok(d);
        }
        self.stats.emd_calls += 1;
        let d = self.compute_pair(lo, hi)?;
        self.emd_memo.insert(lo, hi, d);
        Ok(d)
    }

    /// Appends `id` to the distinct-id list if unseen, returning its slot.
    /// `lookup` is the dense content-id → slot table; callers reset the
    /// touched entries (one per distinct id) when the batch ends.
    fn slot_of(lookup: &mut Vec<u32>, distinct: &mut Vec<u32>, id: u32) -> u32 {
        let i = id as usize;
        if i >= lookup.len() {
            lookup.resize(i + 1, NONE32);
        }
        let slot = lookup[i];
        if slot != NONE32 {
            return slot;
        }
        let slot = distinct.len() as u32;
        distinct.push(id);
        lookup[i] = slot;
        slot
    }

    /// Clears the slot-lookup entries a batch touched.
    fn reset_slots(lookup: &mut [u32], distinct: &[u32]) {
        for &id in distinct {
            lookup[id as usize] = NONE32;
        }
    }

    /// Computes every distinct slot pair of a batch the memo could not
    /// serve, inserting each distance into the memo and mirroring it into
    /// the batch's slot table. The batched backend folds pair by pair from
    /// the hoisted mass arena; the kernel backend gathers the distinct
    /// masses into one bin-major SoA matrix and folds **all** missing
    /// pairs together, one bin level at a time. Both execute the reference
    /// per-pair operation sequence, so the memoized bits are identical.
    fn compute_missing(&mut self, distinct: &[u32], missing: &[(u32, u32)], table: &mut [f64]) {
        if missing.is_empty() {
            return;
        }
        fault::panic_point(fault::EMD_PANIC);
        self.stats.emd_calls += missing.len();
        let d = distinct.len();
        let spec = self.criterion.hist;
        if self.criterion.emd.backend() == EmdBackendKind::Kernel {
            for &id in distinct {
                self.contents.ensure_mass(id);
            }
            let bins = self.contents.bins;
            let mut soa = std::mem::take(&mut self.scratch.soa);
            soa.clear();
            soa.resize(bins * d, 0.0);
            for (slot, &id) in distinct.iter().enumerate() {
                for (bin, &m) in self.contents.mass(id).iter().enumerate() {
                    soa[bin * d + slot] = m;
                }
            }
            let mut cum = std::mem::take(&mut self.scratch.cum);
            let mut total = std::mem::take(&mut self.scratch.total);
            let mut folded = std::mem::take(&mut self.scratch.folded);
            folded.clear();
            crate::emd::kernel::fold_pairs(
                &soa,
                d,
                bins,
                missing,
                spec.bin_width(),
                &mut cum,
                &mut total,
                &mut folded,
            );
            for (p, &(i, j)) in missing.iter().enumerate() {
                let (a, b) = (distinct[i as usize], distinct[j as usize]);
                let mut v = folded[p];
                if let Some(c) = crate::emd::backend::convention(
                    self.contents.is_empty(a),
                    self.contents.is_empty(b),
                    &spec,
                ) {
                    v = c;
                }
                let (lo, hi) = canon(a, b);
                self.emd_memo.insert(lo, hi, v);
                table[i as usize * d + j as usize] = v;
                table[j as usize * d + i as usize] = v;
            }
            self.scratch.soa = soa;
            self.scratch.cum = cum;
            self.scratch.total = total;
            self.scratch.folded = folded;
        } else {
            for &(i, j) in missing {
                let (a, b) = (distinct[i as usize], distinct[j as usize]);
                self.contents.ensure_mass(a);
                self.contents.ensure_mass(b);
                let v = crate::emd::backend::one_d_from_parts(
                    self.contents.is_empty(a),
                    self.contents.is_empty(b),
                    self.contents.mass(a),
                    self.contents.mass(b),
                    &spec,
                );
                let (lo, hi) = canon(a, b);
                self.emd_memo.insert(lo, hi, v);
                table[i as usize * d + j as usize] = v;
                table[j as usize * d + i as usize] = v;
            }
        }
    }

    /// The batching backends' pairwise aggregation: resolve each *distinct*
    /// content pair once (through the memo), then aggregate the full
    /// `C(L, 2)` sequence in the reference lexicographic order, streamed
    /// straight out of the distinct×distinct table — the expanded vector
    /// (millions of entries over fine partitionings) is never stored. Fine
    /// partitionings repeat the same few score distributions constantly,
    /// so this replaces the per-pair memo walk with `C(D, 2)` resolutions
    /// for `D` distinct contents plus a streamed expansion.
    fn batch_pairwise_value(&mut self, ids: &[u32]) -> f64 {
        self.stats.pairwise_batches += 1;
        let n = ids.len();
        if n < 2 {
            return self.criterion.aggregator.apply(&[]);
        }
        let mut distinct = std::mem::take(&mut self.scratch.distinct);
        distinct.clear();
        let mut lookup = std::mem::take(&mut self.scratch.slot_lookup);
        let mut slots = std::mem::take(&mut self.scratch.slots);
        slots.clear();
        for &id in ids {
            slots.push(Self::slot_of(&mut lookup, &mut distinct, id));
        }
        Self::reset_slots(&mut lookup, &distinct);
        let d = distinct.len();
        // The diagonal stays 0.0 — exactly what a self-pair computes (the
        // mass differences are exact zeros, so the fold yields +0.0).
        let mut table = std::mem::take(&mut self.scratch.table);
        table.clear();
        table.resize(d * d, 0.0);
        let mut missing = std::mem::take(&mut self.scratch.missing);
        missing.clear();
        for i in 0..d {
            for j in (i + 1)..d {
                let (lo, hi) = canon(distinct[i], distinct[j]);
                if let Some(v) = self.emd_memo.get(lo, hi) {
                    self.stats.emd_cache_hits += 1;
                    table[i * d + j] = v;
                    table[j * d + i] = v;
                } else {
                    missing.push((i as u32, j as u32));
                }
            }
        }
        self.compute_missing(&distinct, &missing, &mut table);
        let value = self.criterion.aggregator.apply_iter(|| {
            (0..n).flat_map(|i| {
                let row = &table[slots[i] as usize * d..][..d];
                slots[i + 1..].iter().map(move |&sj| row[sj as usize])
            })
        });
        self.scratch.distinct = distinct;
        self.scratch.slot_lookup = lookup;
        self.scratch.slots = slots;
        self.scratch.table = table;
        self.scratch.missing = missing;
        value
    }

    /// The batching backends' cross aggregation (left outer, right inner),
    /// resolving each distinct content pair once and streaming the
    /// expansion into the aggregator.
    fn batch_cross_value(&mut self, left: &[u32], right: &[u32]) -> f64 {
        self.stats.pairwise_batches += 1;
        let mut distinct = std::mem::take(&mut self.scratch.distinct);
        distinct.clear();
        let mut lookup = std::mem::take(&mut self.scratch.slot_lookup);
        let mut lslots = std::mem::take(&mut self.scratch.slots);
        lslots.clear();
        let mut rslots = std::mem::take(&mut self.scratch.slots2);
        rslots.clear();
        for &id in left {
            lslots.push(Self::slot_of(&mut lookup, &mut distinct, id));
        }
        for &id in right {
            rslots.push(Self::slot_of(&mut lookup, &mut distinct, id));
        }
        Self::reset_slots(&mut lookup, &distinct);
        let d = distinct.len();
        let mut table = std::mem::take(&mut self.scratch.table);
        table.clear();
        table.resize(d * d, 0.0);
        let mut have = std::mem::take(&mut self.scratch.have);
        have.clear();
        have.resize(d * d, false);
        let mut missing = std::mem::take(&mut self.scratch.missing);
        missing.clear();
        for &ls in &lslots {
            for &rs in &rslots {
                if ls == rs {
                    continue; // self-pair: exact zero, same as a fresh fold
                }
                let (a, b) = if ls <= rs { (ls, rs) } else { (rs, ls) };
                let idx = a as usize * d + b as usize;
                if have[idx] {
                    continue;
                }
                have[idx] = true;
                let (lo, hi) = canon(distinct[a as usize], distinct[b as usize]);
                if let Some(v) = self.emd_memo.get(lo, hi) {
                    self.stats.emd_cache_hits += 1;
                    table[idx] = v;
                    table[b as usize * d + a as usize] = v;
                } else {
                    missing.push((a, b));
                }
            }
        }
        self.compute_missing(&distinct, &missing, &mut table);
        let value = self.criterion.aggregator.apply_iter(|| {
            lslots.iter().flat_map(|&ls| {
                let row = &table[ls as usize * d..][..d];
                rslots
                    .iter()
                    .map(move |&rs| if ls == rs { 0.0 } else { row[rs as usize] })
            })
        });
        self.scratch.distinct = distinct;
        self.scratch.slot_lookup = lookup;
        self.scratch.slots = lslots;
        self.scratch.slots2 = rslots;
        self.scratch.table = table;
        self.scratch.have = have;
        self.scratch.missing = missing;
        value
    }

    /// Whether the criterion's backend resolves aggregations batch-wise.
    fn batching(&self) -> bool {
        matches!(
            self.criterion.emd.backend(),
            EmdBackendKind::Batched | EmdBackendKind::Kernel
        )
    }

    /// All pairwise distances over content ids in `(0,1), (0,2), …` order,
    /// through per-pair memo lookups (the `1d`/`transport` backends; the
    /// batching backends aggregate without materializing, via
    /// [`Self::batch_pairwise_value`]).
    fn pairwise_dists_into(&mut self, ids: &[u32], out: &mut Vec<f64>) -> Result<()> {
        let n = ids.len();
        out.reserve(n.saturating_sub(1) * n / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = self.distance(ids[i], ids[j])?;
                out.push(d);
            }
        }
        Ok(())
    }

    /// All cross distances (left outer, right inner) over content ids,
    /// through per-pair memo lookups.
    fn cross_dists_into(&mut self, left: &[u32], right: &[u32], out: &mut Vec<f64>) -> Result<()> {
        out.reserve(left.len() * right.len());
        for &a in left {
            for &b in right {
                let d = self.distance(a, b)?;
                out.push(d);
            }
        }
        Ok(())
    }

    /// Aggregated pairwise distance over content-identified histograms, in
    /// the same `(0,1), (0,2), …` order as `pairwise_distances`.
    fn pairwise_value(&mut self, ids: &[u32]) -> Result<f64> {
        if self.batching() {
            let n = ids.len();
            self.tick_n(n.saturating_sub(1) * n / 2)?;
            return Ok(self.batch_pairwise_value(ids));
        }
        let mut dists = std::mem::take(&mut self.scratch.dists);
        dists.clear();
        let result = self
            .pairwise_dists_into(ids, &mut dists)
            .map(|()| self.criterion.aggregator.apply(&dists));
        self.scratch.dists = dists;
        result
    }

    /// Aggregated cross distance (left outer, right inner) over content
    /// ids, in the same order as `cross_distances`.
    fn cross_value(&mut self, left: &[u32], right: &[u32]) -> Result<f64> {
        if self.batching() {
            self.tick_n(left.len() * right.len())?;
            return Ok(self.batch_cross_value(left, right));
        }
        let mut dists = std::mem::take(&mut self.scratch.dists);
        dists.clear();
        let result = self
            .cross_dists_into(left, right, &mut dists)
            .map(|()| self.criterion.aggregator.apply(&dists));
        self.scratch.dists = dists;
        result
    }

    /// `unfairness(P, f)` with cached histograms and memoized distances —
    /// the drop-in for [`FairnessCriterion::unfairness`] used by the beam
    /// and exhaustive searches, whose states revisit the same partitions
    /// over and over.
    pub fn unfairness(&mut self, partitions: &[Partition]) -> Result<f64> {
        let mut ids = std::mem::take(&mut self.scratch.ids);
        ids.clear();
        for p in partitions {
            ids.push(self.hist_id(p));
        }
        let result = self.pairwise_value(&ids);
        self.scratch.ids = ids;
        result
    }

    /// Aggregate distance of `partition` vs. each of `others` — the memoized
    /// drop-in for [`FairnessCriterion::versus`] (same distance order).
    pub fn versus(&mut self, partition: &Partition, others: &[Partition]) -> Result<f64> {
        let id = self.hist_id(partition);
        let mut other_ids = std::mem::take(&mut self.scratch.ids);
        other_ids.clear();
        for other in others {
            other_ids.push(self.hist_id(other));
        }
        let result = self.cross_value(&[id], &other_ids);
        self.scratch.ids = other_ids;
        result
    }

    /// Aggregate of all child-vs-sibling distances (Algorithm 1 line 8),
    /// reusing the winner cache's child ids. Distance order matches
    /// `cross_distances` (children outer, siblings inner).
    pub fn children_versus_siblings(
        &mut self,
        candidate: &CandidateSplit,
        siblings: &[Partition],
    ) -> Result<f64> {
        let mut sib_ids = std::mem::take(&mut self.scratch.ids);
        sib_ids.clear();
        for s in siblings {
            sib_ids.push(self.hist_id(s));
        }
        let result = self.cross_value(&candidate.child_ids, &sib_ids);
        self.scratch.ids = sib_ids;
        result
    }

    /// The holistic split test: `unfairness(siblings ∪ {current})` vs.
    /// `unfairness(siblings ∪ children)`, with the children taken from the
    /// winner cache. List orders match the naive construction (siblings
    /// first, then current / children).
    pub fn holistic_values(
        &mut self,
        siblings: &[Partition],
        current: &Partition,
        candidate: &CandidateSplit,
    ) -> Result<(f64, f64)> {
        let mut ids = std::mem::take(&mut self.scratch.ids);
        ids.clear();
        for s in siblings {
            ids.push(self.hist_id(s));
        }
        ids.push(self.hist_id(current));
        let result = match self.pairwise_value(&ids) {
            Ok(before) => {
                ids.truncate(siblings.len());
                ids.extend(candidate.child_ids.iter().copied());
                self.pairwise_value(&ids).map(|after| (before, after))
            }
            Err(e) => Err(e),
        };
        self.scratch.ids = ids;
        result
    }

    /// [`Self::versus`] with the partitions' histogram content ids already
    /// in hand (the incremental replay threads them through the recursion
    /// instead of re-walking the trie per node). Values are pure functions
    /// of the ids, so the bits cannot differ from the partition form.
    pub(crate) fn versus_ids(&mut self, current: u32, sibling_ids: &[u32]) -> Result<f64> {
        self.note_reuse(current);
        for &id in sibling_ids {
            self.note_reuse(id);
        }
        self.cross_value(&[current], sibling_ids)
    }

    /// [`Self::children_versus_siblings`] with sibling content ids in hand.
    pub(crate) fn children_versus_siblings_ids(
        &mut self,
        candidate: &CandidateSplit,
        sibling_ids: &[u32],
    ) -> Result<f64> {
        for &id in sibling_ids {
            self.note_reuse(id);
        }
        self.cross_value(&candidate.child_ids, sibling_ids)
    }

    /// [`Self::holistic_values`] with sibling and current content ids in
    /// hand. List orders match the partition form exactly (siblings first,
    /// then current / children), so every aggregated value is bit-equal.
    pub(crate) fn holistic_values_ids(
        &mut self,
        sibling_ids: &[u32],
        current: u32,
        candidate: &CandidateSplit,
    ) -> Result<(f64, f64)> {
        let mut ids = std::mem::take(&mut self.scratch.ids);
        ids.clear();
        ids.extend_from_slice(sibling_ids);
        ids.push(current);
        for &id in &ids {
            self.note_reuse(id);
        }
        let result = match self.pairwise_value(&ids) {
            Ok(before) => {
                ids.truncate(sibling_ids.len());
                ids.extend(candidate.child_ids.iter().copied());
                self.pairwise_value(&ids).map(|after| (before, after))
            }
            Err(e) => Err(e),
        };
        self.scratch.ids = ids;
        result
    }

    /// `mostUnfair(current, f, A)` via one-pass counting splits: each
    /// candidate attribute is scored with a single scan over the node's
    /// rows accumulating `counts[value][bin]` into a reused flat grid, so
    /// no child row vector (or per-attribute table) is ever materialized
    /// here. Attributes producing fewer than two children (or any child
    /// below `min_partition_size`) are not candidates, and ties keep the
    /// earlier attribute — both exactly as the naive evaluation. Returns
    /// the winner (with its histograms and pairwise distances preserved
    /// for the recursion) and the number of candidate splits scored.
    pub fn best_split(
        &mut self,
        current: &Partition,
        avail: &[usize],
        min_partition_size: usize,
    ) -> Result<(Option<CandidateSplit>, usize)> {
        let bins = self.contents.bins;
        let space = self.space;
        let node = self.paths.node_of(&current.path);
        let mut counts = std::mem::take(&mut self.scratch.counts);
        let mut sizes = std::mem::take(&mut self.scratch.sizes);
        let mut best: Option<CandidateSplit> = None;
        let mut scored = 0usize;
        let mut failure = None;
        for &attr in avail {
            let Some(attribute) = space.attribute(attr) else {
                continue;
            };
            let card = attribute.cardinality();
            counts.clear();
            counts.resize(card * bins, 0);
            sizes.clear();
            sizes.resize(card, 0);
            for &row in &current.rows {
                let code = attribute.codes[row as usize] as usize;
                counts[code * bins + self.bin_codes[row as usize] as usize] += 1;
                sizes[code] += 1;
            }
            if self.record_evals {
                // Recorded before the skip checks, so a later delta
                // reconstruction reproduces the skips too.
                if self.eval_log.len() <= node as usize {
                    self.eval_log.resize_with(node as usize + 1, Vec::new);
                }
                let summary: Vec<(u32, u32)> = sizes
                    .iter()
                    .enumerate()
                    .filter(|&(_, &s)| s > 0)
                    .map(|(code, &s)| (code as u32, s))
                    .collect();
                let evals = &mut self.eval_log[node as usize];
                match evals.iter_mut().find(|e| e.attr == attr) {
                    Some(e) => e.sizes = summary,
                    None => evals.push(AttrEval {
                        attr,
                        sizes: summary,
                    }),
                }
            }
            let present = sizes.iter().filter(|&&s| s > 0).count();
            if present < 2 {
                continue;
            }
            if sizes
                .iter()
                .any(|&s| s > 0 && (s as usize) < min_partition_size)
            {
                continue;
            }
            scored += 1;
            let mut child_ids = Vec::with_capacity(present);
            let mut child_codes = Vec::with_capacity(present);
            for (code, &size) in sizes.iter().enumerate() {
                if size == 0 {
                    continue;
                }
                child_codes.push(code as u32);
                let child = self.paths.child_node(node, pack_step(attr, code as u32));
                let id = match self.paths.content(child) {
                    Some(id) => {
                        self.note_reuse(id);
                        id
                    }
                    None => {
                        self.stats.histograms_built += 1;
                        let id = self
                            .contents
                            .intern(&counts[code * bins..(code + 1) * bins]);
                        self.paths.set_content(child, id);
                        id
                    }
                };
                child_ids.push(id);
            }
            let value = match self.pairwise_value(&child_ids) {
                Ok(v) => v,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            };
            let better = match &best {
                None => true,
                Some(incumbent) => self.criterion.objective.is_better(value, incumbent.value),
            };
            if better {
                best = Some(CandidateSplit {
                    attr,
                    value,
                    child_ids,
                    child_codes,
                });
            }
        }
        self.scratch.counts = counts;
        self.scratch.sizes = sizes;
        match failure {
            Some(e) => Err(e),
            None => Ok((best, scored)),
        }
    }

    /// `mostUnfair` reconstructed from a previous generation's recorded
    /// split summaries instead of a fresh row scan: per candidate
    /// attribute, the [`AttrEval`] summary (incrementally patched by
    /// [`EngineParts::apply_event`]) supplies exactly the per-code row
    /// counts the counting pass would produce, so the `< 2 children` /
    /// min-size skips, the scored count, and the candidate order replay
    /// bit-for-bit; child histograms come straight from the trie's cached
    /// contents. Anything unreconstructible — an unseen path, a missing
    /// summary, a child edge or content the caches never built (e.g. a
    /// brand-new attribute value) — falls back to the real
    /// [`Self::best_split`], which re-records and thereby self-heals the
    /// log. Every pairwise value is a pure function of content rows, so
    /// the winner (and its score bits) cannot differ from a fresh run.
    pub(crate) fn delta_best_split(
        &mut self,
        current: &Partition,
        avail: &[usize],
        min_partition_size: usize,
    ) -> Result<(Option<CandidateSplit>, usize)> {
        let Some(node) = self.paths.lookup(&current.path) else {
            return self.best_split(current, avail, min_partition_size);
        };
        let summaries_ok = avail.iter().all(|&attr| {
            self.space.attribute(attr).is_none()
                || self
                    .eval_log
                    .get(node as usize)
                    .is_some_and(|evals| evals.iter().any(|e| e.attr == attr))
        });
        if !summaries_ok {
            return self.best_split(current, avail, min_partition_size);
        }
        let mut best: Option<CandidateSplit> = None;
        let mut scored = 0usize;
        for &attr in avail {
            if self.space.attribute(attr).is_none() {
                continue;
            }
            let entry = self.eval_log[node as usize]
                .iter()
                .find(|e| e.attr == attr)
                .expect("summaries_ok checked every candidate attribute");
            let mut present = 0usize;
            let mut too_small = false;
            let mut codes: Vec<u32> = Vec::with_capacity(entry.sizes.len());
            for &(code, size) in &entry.sizes {
                if size == 0 {
                    continue;
                }
                present += 1;
                if (size as usize) < min_partition_size {
                    too_small = true;
                }
                codes.push(code);
            }
            if present < 2 || too_small {
                continue;
            }
            let mut child_ids = Vec::with_capacity(present);
            let mut incomplete = false;
            for &code in &codes {
                match self.paths.child_content(node, pack_step(attr, code)) {
                    Some(id) => child_ids.push(id),
                    None => {
                        incomplete = true;
                        break;
                    }
                }
            }
            if incomplete {
                // The partial work above only probed (or warmed) pure
                // caches, so redoing the node from rows is still exact.
                return self.best_split(current, avail, min_partition_size);
            }
            for &id in &child_ids {
                self.note_reuse(id);
            }
            scored += 1;
            let value = self.pairwise_value(&child_ids)?;
            let better = match &best {
                None => true,
                Some(incumbent) => self.criterion.objective.is_better(value, incumbent.value),
            };
            if better {
                best = Some(CandidateSplit {
                    attr,
                    value,
                    child_ids,
                    child_codes: codes,
                });
            }
        }
        Ok((best, scored))
    }

    /// Reconstructs a *clean* node's winning candidate from its cached
    /// `(attr, value, child codes)` without re-scoring any attribute: the
    /// trie's cached child contents are bit-unchanged (nothing under the
    /// node was touched), so probing them by code yields exactly the ids
    /// `delta_best_split` would have produced, and the cached value is the
    /// exact bits `pairwise_value` would recompute from them. `None` when
    /// any probe misses (the caller falls back to a real evaluation).
    pub(crate) fn rebuild_candidate(
        &mut self,
        current: &Partition,
        attr: usize,
        value: f64,
        child_codes: &[u32],
    ) -> Option<CandidateSplit> {
        let node = self.paths.lookup(&current.path)?;
        let mut child_ids = Vec::with_capacity(child_codes.len());
        for &code in child_codes {
            child_ids.push(self.paths.child_content(node, pack_step(attr, code))?);
        }
        for &id in &child_ids {
            self.note_reuse(id);
        }
        Some(CandidateSplit {
            attr,
            value,
            child_ids,
            child_codes: child_codes.to_vec(),
        })
    }

    /// Turns on split-summary recording (the incremental layer's data
    /// source). Off by default, so plain searches pay nothing for it.
    pub(crate) fn record_split_evals(&mut self) {
        self.record_evals = true;
    }

    /// Seeds the invalidation counter with the EMD entries the incremental
    /// layer's compaction dropped ahead of this run.
    pub(crate) fn seed_invalidated_emds(&mut self, dropped: usize) {
        self.stats.delta_invalidated_emds = dropped;
    }

    /// Detaches the engine's caches from the space borrow so they can
    /// outlive it. Stats, scratch, and the budget checker are per-run and
    /// do not survive.
    pub(crate) fn into_parts(self) -> EngineParts {
        EngineParts {
            criterion: self.criterion,
            bin_codes: self.bin_codes,
            paths: self.paths,
            contents: self.contents,
            emd_memo: self.emd_memo,
            eval_log: self.eval_log,
            generation: self.generation,
            dirty_paths: self.dirty_paths,
        }
    }

    /// True when no mutation since the last completed replay touched any
    /// row of the partition at `path`: its entire subtree — histograms,
    /// split summaries, and every decision derived from them — is
    /// bit-unchanged. An unknown path is conservatively dirty.
    pub(crate) fn subtree_clean(&self, path: &[PathStep]) -> bool {
        match self.paths.lookup(path) {
            Some(node) => !self.dirty_paths.contains(&node),
            None => false,
        }
    }

    /// Rehydrates an engine over `space` from detached caches: no bin-code
    /// recompute, no cache warmup. `space` must be the parts' space with
    /// exactly the mutations recorded through [`EngineParts`] applied (the
    /// incremental layer guarantees this). Recording stays on — resumed
    /// engines always serve a delta lineage.
    pub(crate) fn resume(space: &'a RankingSpace, parts: EngineParts) -> Self {
        debug_assert_eq!(
            parts.bin_codes.len(),
            space.num_individuals(),
            "parts drifted from the space"
        );
        SplitEngine {
            space,
            criterion: parts.criterion,
            bin_codes: parts.bin_codes,
            paths: parts.paths,
            contents: parts.contents,
            emd_memo: parts.emd_memo,
            eval_log: parts.eval_log,
            record_evals: true,
            generation: parts.generation,
            dirty_paths: parts.dirty_paths,
            stats: EngineStats::default(),
            scratch: Scratch::default(),
            checker: RunBudget::unlimited().checker(),
        }
    }
}

/// One space mutation translated into the terms the engine's caches
/// understand: which histogram bin the touched row's score occupies and
/// how path membership changed. Attribute codes travel separately (they
/// select which trie paths are dirty).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CacheAdjust {
    /// A row arrived with its score in `bin`.
    Insert { bin: u32 },
    /// A row departed whose score occupied `bin`.
    Remove { bin: u32 },
    /// A row's score moved between bins. Same-bin rescores change no
    /// histogram and need no cache work at all.
    Rescore { old_bin: u32, new_bin: u32 },
}

/// A [`SplitEngine`]'s caches detached from the space borrow, so the
/// incremental layer can hold them while it mutates the space: dirty-path
/// patches go through [`Self::apply_event`], orphaned contents and their
/// EMD entries out through [`Self::compact`], and the whole bundle back
/// into a search via [`SplitEngine::resume`].
#[derive(Debug)]
pub(crate) struct EngineParts {
    criterion: FairnessCriterion,
    bin_codes: Vec<u32>,
    paths: PathTrie,
    contents: ContentTable,
    emd_memo: EmdMemo,
    eval_log: Vec<Vec<AttrEval>>,
    generation: u32,
    /// Trie nodes dirtied by [`Self::apply_event`] since the last completed
    /// replay — the replay's clean-subtree skip consults this through
    /// [`SplitEngine::subtree_clean`] and clears it on success.
    dirty_paths: HashSet<u32>,
}

impl EngineParts {
    /// Maps a score to its histogram bin under the lineage's fixed spec —
    /// the same clamping map [`RankingSpace::bin_codes`] applies.
    pub(crate) fn bin_of(&self, score: f64) -> u32 {
        self.criterion.hist.bin_of(score) as u32
    }

    /// Current generation (0 = the initial full build).
    pub(crate) fn generation(&self) -> u32 {
        self.generation
    }

    /// Opens a new mutation generation: subsequently interned or adjusted
    /// contents are stamped with it, so the next run can tell survivors
    /// from rebuilds.
    pub(crate) fn begin_generation(&mut self) -> u32 {
        self.generation += 1;
        self.contents.stamp = self.generation;
        self.generation
    }

    /// Appends the bin code of a row appended to the space.
    pub(crate) fn push_row_bin(&mut self, bin: u32) {
        self.bin_codes.push(bin);
    }

    /// Removes the bin code of a removed row (same index shift as
    /// [`RankingSpace::remove_row`]).
    pub(crate) fn remove_row_bin(&mut self, row: usize) -> u32 {
        self.bin_codes.remove(row)
    }

    /// The cached bin code of `row`.
    pub(crate) fn row_bin(&self, row: usize) -> u32 {
        self.bin_codes[row]
    }

    /// Replaces the cached bin code of `row` (rescore).
    pub(crate) fn set_row_bin(&mut self, row: usize, bin: u32) {
        self.bin_codes[row] = bin;
    }

    /// Dirty-path propagation for one mutation: walks every trie path
    /// consistent with the touched row's attribute `codes` (exactly the
    /// partitions that contain the row) and, at each cached node,
    /// re-derives the histogram by adjusting the old counts row at the
    /// affected bin(s) and re-interning — never mutating in place, since
    /// contents are shared across paths. Membership events also patch the
    /// recorded split summaries, so a later [`SplitEngine::delta_best_split`]
    /// sees the true child sizes. Returns the number of cached histograms
    /// rebuilt (0 for a same-bin rescore, which is a pure no-op).
    pub(crate) fn apply_event(&mut self, codes: &[u32], adjust: CacheAdjust) -> usize {
        if let CacheAdjust::Rescore { old_bin, new_bin } = adjust {
            if old_bin == new_bin {
                return 0;
            }
        }
        let membership = !matches!(adjust, CacheAdjust::Rescore { .. });
        let generation = self.generation;
        let mut touched = 0usize;
        let mut row: Vec<u64> = Vec::new();
        let mut stack: Vec<u32> = vec![0];
        while let Some(node) = stack.pop() {
            self.dirty_paths.insert(node);
            if let Some(id) = self.paths.content(node) {
                row.clear();
                row.extend_from_slice(self.contents.row(id));
                match adjust {
                    CacheAdjust::Insert { bin } => row[bin as usize] += 1,
                    CacheAdjust::Remove { bin } => {
                        debug_assert!(row[bin as usize] > 0, "removing from an empty bin");
                        row[bin as usize] = row[bin as usize].saturating_sub(1);
                    }
                    CacheAdjust::Rescore { old_bin, new_bin } => {
                        debug_assert!(row[old_bin as usize] > 0, "rescoring an empty bin");
                        row[old_bin as usize] = row[old_bin as usize].saturating_sub(1);
                        row[new_bin as usize] += 1;
                    }
                }
                // Interning may rediscover an existing content (a
                // canceling event restores the original id, keeping its
                // memoized distances warm); stamping marks it as a
                // this-generation rebuild either way.
                let new_id = self.contents.intern(&row);
                self.contents.mark_generation(new_id, generation);
                self.paths.set_content(node, new_id);
                touched += 1;
            }
            if membership {
                if let Some(evals) = self.eval_log.get_mut(node as usize) {
                    let grow = matches!(adjust, CacheAdjust::Insert { .. });
                    for e in evals.iter_mut() {
                        let Some(&code) = codes.get(e.attr) else {
                            continue;
                        };
                        match e.sizes.binary_search_by_key(&code, |&(c, _)| c) {
                            Ok(i) => {
                                if grow {
                                    e.sizes[i].1 += 1;
                                } else {
                                    debug_assert!(e.sizes[i].1 > 0, "shrinking an empty code");
                                    e.sizes[i].1 = e.sizes[i].1.saturating_sub(1);
                                }
                            }
                            Err(i) => {
                                if grow {
                                    e.sizes.insert(i, (code, 1));
                                }
                            }
                        }
                    }
                }
            }
            // Descend only into children consistent with the row's codes —
            // the node for path p ∪ {(attr, c)} contains the row iff the
            // node for p does and codes[attr] == c.
            self.paths.for_each_edge(node, |step, child| {
                let attr = (step >> 32) as usize;
                let code = step as u32;
                if codes.get(attr) == Some(&code) {
                    stack.push(child);
                }
            });
        }
        touched
    }

    /// Targeted invalidation: drops every content no longer referenced by
    /// any cached path (orphaned by [`Self::apply_event`] re-interning)
    /// together with exactly the EMD memo entries that touch one, rekeys
    /// the survivors, and returns the number of memo entries dropped.
    /// Distances between untouched distinct pairs survive across
    /// generations.
    pub(crate) fn compact(&mut self) -> usize {
        let mut live = vec![false; self.contents.len()];
        for node in 0..self.paths.num_nodes() as u32 {
            if let Some(id) = self.paths.content(node) {
                live[id as usize] = true;
            }
        }
        if live.iter().all(|&l| l) {
            return 0;
        }
        let remap = self.contents.retain_content(&live);
        let dropped = self.emd_memo.retain_rekey(&remap);
        self.paths.remap_contents(&remap);
        dropped
    }

    /// Forgets the dirty-path set — called after a completed replay has
    /// re-validated (or structurally copied) everything beneath the dirty
    /// paths. Trie node ids are stable across [`Self::compact`], so the
    /// set stays valid while mutations accumulate between replays.
    pub(crate) fn clear_dirty(&mut self) {
        self.dirty_paths.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fairness::{Aggregator, Objective};
    use crate::space::ProtectedAttribute;

    fn space() -> RankingSpace {
        let gender = ProtectedAttribute::from_values(
            "gender",
            &["F", "M", "F", "M", "F", "M", "F", "M"],
        );
        let noise = ProtectedAttribute::from_values(
            "noise",
            &["x", "x", "y", "y", "x", "y", "x", "y"],
        );
        RankingSpace::new(
            vec![gender, noise],
            vec![0.1, 0.9, 0.2, 0.8, 0.15, 0.85, 0.12, 0.88],
        )
        .unwrap()
    }

    #[test]
    fn engine_histogram_matches_criterion_histogram() {
        let s = space();
        let crit = FairnessCriterion::default();
        let mut engine = SplitEngine::new(&s, crit);
        let root = Partition::root(&s);
        for p in std::iter::once(root.clone()).chain(root.split(&s, 0)) {
            assert_eq!(engine.histogram(&p), crit.histogram(&p, s.scores()));
        }
        // Second lookups are cache hits: no new builds.
        let built = engine.stats().histograms_built;
        let _ = engine.histogram(&root);
        assert_eq!(engine.stats().histograms_built, built);
    }

    #[test]
    fn engine_unfairness_and_versus_match_criterion() {
        let s = space();
        let crit = FairnessCriterion::new(Objective::MostUnfair, Aggregator::Mean);
        let mut engine = SplitEngine::new(&s, crit);
        let parts = Partition::root(&s).split(&s, 0);
        let u_engine = engine.unfairness(&parts).unwrap();
        let u_naive = crit.unfairness(&parts, s.scores()).unwrap();
        assert_eq!(u_engine, u_naive);
        let v_engine = engine.versus(&parts[0], &parts[1..]).unwrap();
        let v_naive = crit.versus(&parts[0], &parts[1..], s.scores()).unwrap();
        assert_eq!(v_engine, v_naive);
    }

    #[test]
    fn repeated_unfairness_hits_the_memo() {
        let s = space();
        let mut engine = SplitEngine::new(&s, FairnessCriterion::default());
        let parts = Partition::root(&s).split(&s, 0);
        let first = engine.unfairness(&parts).unwrap();
        let calls_after_first = engine.stats().emd_calls;
        let second = engine.unfairness(&parts).unwrap();
        assert_eq!(first, second);
        assert_eq!(engine.stats().emd_calls, calls_after_first);
        assert!(engine.stats().emd_cache_hits > 0);
    }

    #[test]
    fn one_d_memo_serves_both_directions() {
        let s = space();
        let mut engine = SplitEngine::new(&s, FairnessCriterion::default());
        let parts = Partition::root(&s).split(&s, 0);
        // Forward direction computes, reverse direction must hit.
        let _ = engine.versus(&parts[0], &parts[1..]).unwrap();
        let calls = engine.stats().emd_calls;
        let _ = engine.versus(&parts[1], &parts[..1]).unwrap();
        assert_eq!(engine.stats().emd_calls, calls);
        assert!(engine.stats().emd_cache_hits > 0);
    }

    #[test]
    fn best_split_matches_naive_most_unfair() {
        let s = space();
        let crit = FairnessCriterion::default();
        let mut engine = SplitEngine::new(&s, crit);
        let root = Partition::root(&s);
        let (cand, scored) = engine.best_split(&root, &[0, 1], 1).unwrap();
        let cand = cand.expect("both attributes split the root");
        assert_eq!(scored, 2);
        // Gender (attribute 0) separates scores; noise does not.
        assert_eq!(cand.attr, 0);
        let children = root.split(&s, 0);
        assert_eq!(cand.child_ids.len(), children.len());
        // The one-pass counting histograms equal the per-child rebuilds —
        // and they were cached during best_split, so no new builds occur.
        let built = engine.stats().histograms_built;
        for child in &children {
            assert_eq!(
                engine.histogram(child),
                crit.histogram(child, s.scores())
            );
        }
        assert_eq!(engine.stats().histograms_built, built);
        assert_eq!(cand.value, crit.unfairness(&children, s.scores()).unwrap());
    }

    #[test]
    fn best_split_honors_min_partition_size() {
        let s = space();
        let mut engine = SplitEngine::new(&s, FairnessCriterion::default());
        let root = Partition::root(&s);
        // Both attributes give 4/4 children; a floor of 5 blocks everything.
        let (cand, scored) = engine.best_split(&root, &[0, 1], 5).unwrap();
        assert!(cand.is_none());
        assert_eq!(scored, 0);
    }

    #[test]
    fn small_spaces_select_the_compact_caches() {
        let s = space(); // 8 rows, 2 attributes
        let engine = SplitEngine::new(&s, FairnessCriterion::default());
        assert!(engine.uses_compact_caches());

        // Too many rows → hashed.
        let n = SMALL_SPACE_ROWS + 1;
        let labels: Vec<String> = (0..n).map(|i| format!("v{}", i % 2)).collect();
        let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let attr = ProtectedAttribute::from_values("g", &refs);
        let scores: Vec<f64> = (0..n).map(|i| (i % 10) as f64 / 10.0).collect();
        let big = RankingSpace::new(vec![attr], scores).unwrap();
        let engine = SplitEngine::new(&big, FairnessCriterion::default());
        assert!(!engine.uses_compact_caches());

        // Too many attributes → hashed even when rows are few.
        let attrs: Vec<ProtectedAttribute> = (0..SMALL_SPACE_ATTRS + 1)
            .map(|a| {
                ProtectedAttribute::from_values(
                    format!("a{a}"),
                    &["x", "y", "x", "y", "x", "y", "x", "y"],
                )
            })
            .collect();
        let wide = RankingSpace::new(
            attrs,
            vec![0.1, 0.9, 0.2, 0.8, 0.15, 0.85, 0.12, 0.88],
        )
        .unwrap();
        let engine = SplitEngine::new(&wide, FairnessCriterion::default());
        assert!(!engine.uses_compact_caches());

        // High total cardinality → hashed even with few rows/attributes:
        // linear scans and the dense matrix scale with distinct values.
        let n = 800;
        let ids: Vec<String> = (0..n).map(|i| format!("id{i}")).collect();
        let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let high_card = ProtectedAttribute::from_values("worker_id", &refs);
        let scores: Vec<f64> = (0..n).map(|i| (i % 7) as f64 / 7.0).collect();
        let carded = RankingSpace::new(vec![high_card], scores).unwrap();
        let engine = SplitEngine::new(&carded, FairnessCriterion::default());
        assert!(!engine.uses_compact_caches());
    }

    #[test]
    fn compact_and_hashed_caches_are_bitwise_equivalent() {
        // The same tiny space forced through both cache families must do
        // the same work and produce the same bits everywhere.
        let s = space();
        let crit = FairnessCriterion::default();
        let mut compact = SplitEngine::new(&s, crit);
        assert!(compact.uses_compact_caches());
        let mut hashed = SplitEngine::new_with_layout(&s, crit, false);
        assert!(!hashed.uses_compact_caches());

        let root = Partition::root(&s);
        let parts = root.split(&s, 0);
        for engine in [&mut compact, &mut hashed] {
            let _ = engine.best_split(&root, &[0, 1], 1).unwrap();
        }
        assert_eq!(
            compact.unfairness(&parts).unwrap(),
            hashed.unfairness(&parts).unwrap()
        );
        assert_eq!(
            compact.versus(&parts[0], &parts[1..]).unwrap(),
            hashed.versus(&parts[0], &parts[1..]).unwrap()
        );
        assert_eq!(compact.stats(), hashed.stats());
        assert!(compact.stats().emd_cache_hits > 0);
    }

    #[test]
    fn dense_memo_grows_and_keeps_entries() {
        let mut memo = EmdMemo::Dense {
            stride: 0,
            cells: Vec::new(),
        };
        assert_eq!(memo.get(0, 0), None);
        memo.insert(0, 1, 0.5);
        assert_eq!(memo.get(0, 1), Some(0.5));
        assert_eq!(memo.get(1, 0), None);
        // Growth past the stride keeps earlier cells.
        memo.insert(40, 3, 0.25);
        assert_eq!(memo.get(0, 1), Some(0.5));
        assert_eq!(memo.get(40, 3), Some(0.25));
        assert_eq!(memo.get(3, 40), None);
    }

    #[test]
    fn flat_memo_grows_and_keeps_entries() {
        let mut memo = FlatMemo::new();
        // Push well past the initial 64-slot capacity (50% load → several
        // doublings) and verify nothing is lost or corrupted.
        for a in 0..40u32 {
            for b in a..40u32 {
                memo.insert(EmdMemo::pack(a, b), (a * 100 + b) as f64);
            }
        }
        for a in 0..40u32 {
            for b in a..40u32 {
                assert_eq!(
                    memo.get(EmdMemo::pack(a, b)),
                    Some((a * 100 + b) as f64),
                    "({a},{b})"
                );
            }
        }
        assert_eq!(memo.get(EmdMemo::pack(41, 41)), None);
        // Overwrites update in place, not duplicate.
        let len = memo.len;
        memo.insert(EmdMemo::pack(0, 0), 9.0);
        assert_eq!(memo.get(EmdMemo::pack(0, 0)), Some(9.0));
        assert_eq!(memo.len, len);
    }

    #[test]
    fn path_trie_distinguishes_prefixes_and_orders() {
        let mut trie = PathTrie::new();
        let a = PathStep { attr: 0, code: 1 };
        let b = PathStep { attr: 1, code: 0 };
        let root = trie.node_of(&[]);
        let na = trie.node_of(&[a]);
        let nab = trie.node_of(&[a, b]);
        let nba = trie.node_of(&[b, a]);
        // All four paths are distinct nodes; repeated walks are stable.
        let nodes = [root, na, nab, nba];
        for (i, &x) in nodes.iter().enumerate() {
            for &y in &nodes[i + 1..] {
                assert_ne!(x, y);
            }
        }
        assert_eq!(trie.node_of(&[a, b]), nab);
        assert_eq!(trie.content(nab), None);
        trie.set_content(nab, 7);
        assert_eq!(trie.content(nab), Some(7));
        assert_eq!(trie.content(na), None);
    }

    #[test]
    fn batched_backend_matches_per_pair_engine_bitwise() {
        use crate::emd::{Emd, EmdBackendKind};
        let s = space();
        let mut per_pair = SplitEngine::new(&s, FairnessCriterion::default());
        let mut batched = SplitEngine::new(
            &s,
            FairnessCriterion::default().with_emd(Emd::new(EmdBackendKind::Batched)),
        );
        let root = Partition::root(&s);
        let parts = root.split(&s, 0);

        let u1 = per_pair.unfairness(&parts).unwrap();
        let ub = batched.unfairness(&parts).unwrap();
        assert_eq!(u1.to_bits(), ub.to_bits());
        let v1 = per_pair.versus(&parts[0], &parts[1..]).unwrap();
        let vb = batched.versus(&parts[0], &parts[1..]).unwrap();
        assert_eq!(v1.to_bits(), vb.to_bits());
        let (c1, s1) = per_pair.best_split(&root, &[0, 1], 1).unwrap();
        let (cb, sb) = batched.best_split(&root, &[0, 1], 1).unwrap();
        let (c1, cb) = (c1.unwrap(), cb.unwrap());
        assert_eq!((s1, c1.attr), (sb, cb.attr));
        assert_eq!(c1.value.to_bits(), cb.value.to_bits());

        // The batch path is live, never does more memo/EMD evaluations
        // than the per-pair walk, and only it counts batches.
        assert!(batched.stats().pairwise_batches > 0);
        assert_eq!(per_pair.stats().pairwise_batches, 0);
        assert!(
            batched.stats().emd_calls + batched.stats().emd_cache_hits
                <= per_pair.stats().emd_calls + per_pair.stats().emd_cache_hits
        );
    }

    #[test]
    fn kernel_backend_matches_batched_engine_bitwise() {
        use crate::emd::{Emd, EmdBackendKind};
        let s = space();
        let mut batched = SplitEngine::new(
            &s,
            FairnessCriterion::default().with_emd(Emd::new(EmdBackendKind::Batched)),
        );
        let mut kernel = SplitEngine::new(
            &s,
            FairnessCriterion::default().with_emd(Emd::new(EmdBackendKind::Kernel)),
        );
        let root = Partition::root(&s);
        let parts = root.split(&s, 0);
        // Same values, bit for bit — the SoA fold replays the reference
        // per-pair operation sequence — and the same work counters: the
        // kernel path only changes *how* a batch's misses are folded.
        for engine in [&mut batched, &mut kernel] {
            let _ = engine.best_split(&root, &[0, 1], 1).unwrap();
        }
        let ub = batched.unfairness(&parts).unwrap();
        let uk = kernel.unfairness(&parts).unwrap();
        assert_eq!(ub.to_bits(), uk.to_bits());
        let vb = batched.versus(&parts[0], &parts[1..]).unwrap();
        let vk = kernel.versus(&parts[0], &parts[1..]).unwrap();
        assert_eq!(vb.to_bits(), vk.to_bits());
        let (cb, _) = batched.best_split(&parts[0], &[1], 1).unwrap();
        let cb = cb.expect("noise splits the F partition");
        let hb = batched
            .holistic_values(&parts[1..], &parts[0], &cb)
            .unwrap();
        let (ck, _) = kernel.best_split(&parts[0], &[1], 1).unwrap();
        let ck = ck.expect("noise splits the F partition");
        let hk = kernel.holistic_values(&parts[1..], &parts[0], &ck).unwrap();
        assert_eq!(hb.0.to_bits(), hk.0.to_bits());
        assert_eq!(hb.1.to_bits(), hk.1.to_bits());
        assert_eq!(batched.stats(), kernel.stats());
        assert!(kernel.stats().pairwise_batches > 0);
    }

    #[test]
    fn batch_dedup_collapses_repeated_contents() {
        use crate::emd::{Emd, EmdBackendKind};
        for backend in [EmdBackendKind::Batched, EmdBackendKind::Kernel] {
            let s = space();
            let mut engine = SplitEngine::new(
                &s,
                FairnessCriterion::default().with_emd(Emd::new(backend)),
            );
            let parts = Partition::root(&s).split(&s, 0);
            // Four partitions but only two distinct contents: C(4,2) = 6 leaf
            // pairs collapse to a single distinct-pair resolution.
            let doubled: Vec<Partition> =
                parts.iter().chain(parts.iter()).cloned().collect();
            let _ = engine.unfairness(&doubled).unwrap();
            let stats = engine.stats();
            assert_eq!(stats.pairwise_batches, 1, "{backend:?}");
            assert_eq!(
                stats.emd_calls + stats.emd_cache_hits,
                1,
                "{backend:?} stats: {stats:?}"
            );
        }
    }

    #[test]
    fn memo_key_is_unordered_for_the_transport_backend() {
        use crate::emd::{Emd, EmdBackendKind};
        let s = space();
        let mut engine = SplitEngine::new(
            &s,
            FairnessCriterion::default().with_emd(Emd::new(EmdBackendKind::Transport)),
        );
        let parts = Partition::root(&s).split(&s, 0);
        let forward = engine.versus(&parts[0], &parts[1..]).unwrap();
        let calls = engine.stats().emd_calls;
        let backward = engine.versus(&parts[1], &parts[..1]).unwrap();
        // The reverse direction is a cache hit sharing the same entry.
        assert_eq!(engine.stats().emd_calls, calls);
        assert!(engine.stats().emd_cache_hits > 0);
        assert_eq!(forward.to_bits(), backward.to_bits());
    }

    #[test]
    fn best_split_skips_constant_and_invalid_attributes() {
        let constant = ProtectedAttribute::from_values("k", &["x", "x", "x"]);
        let s = RankingSpace::new(vec![constant], vec![0.1, 0.5, 0.9]).unwrap();
        let mut engine = SplitEngine::new(&s, FairnessCriterion::default());
        let root = Partition::root(&s);
        let (cand, scored) = engine.best_split(&root, &[0, 7], 1).unwrap();
        assert!(cand.is_none());
        assert_eq!(scored, 0);
    }

    #[test]
    fn content_table_retain_content_compacts_and_reindexes() {
        for index in [ContentIndex::Compact, ContentIndex::Hashed(EngineMap::default())] {
            let mut table = ContentTable::new(HistogramSpec::default(), index);
            let rows: Vec<Vec<u64>> = (0..5u64)
                .map(|i| {
                    let mut r = vec![0u64; table.bins];
                    r[0] = i + 1;
                    r[1] = 2 * i;
                    r
                })
                .collect();
            for r in &rows {
                table.intern(r);
            }
            assert_eq!(table.len(), 5);
            let live = [true, false, true, false, true];
            let remap = table.retain_content(&live);
            // Monotonic remap: survivors keep their relative order.
            assert_eq!(remap, vec![0, NONE32, 1, NONE32, 2]);
            assert_eq!(table.len(), 3);
            for (old, new) in [(0u32, 0u32), (2, 1), (4, 2)] {
                assert_eq!(table.row(new), &rows[old as usize][..]);
                // The rebuilt index still finds survivors at their new ids
                // (so re-interning dedups instead of duplicating) …
                assert_eq!(table.find(&rows[old as usize]), Some(new));
                assert_eq!(table.intern(&rows[old as usize]), new);
            }
            // … while dropped rows intern as fresh ids.
            assert_eq!(table.intern(&rows[1]), 3);
        }
    }

    #[test]
    fn content_table_generation_tags_follow_the_stamp() {
        let mut table = ContentTable::new(HistogramSpec::default(), ContentIndex::Compact);
        let row_a = vec![1u64; table.bins];
        let a = table.intern(&row_a);
        assert_eq!(table.gen[a as usize], 0);
        table.stamp = 3;
        let row_b = vec![2u64; table.bins];
        let b = table.intern(&row_b);
        assert_eq!(table.gen[b as usize], 3);
        // Hits do not restamp; explicit marking does.
        assert_eq!(table.intern(&row_a), a);
        assert_eq!(table.gen[a as usize], 0);
        table.mark_generation(a, 3);
        assert_eq!(table.gen[a as usize], 3);
        // Compaction carries tags along with the surviving rows.
        let remap = table.retain_content(&[false, true]);
        assert_eq!(remap[b as usize], 0);
        assert_eq!(table.gen[0], 3);
    }

    #[test]
    fn flat_memo_retain_rekey_drops_and_rekeys_selectively() {
        let mut memo = FlatMemo::new();
        for a in 0..10u32 {
            for b in a..10u32 {
                memo.insert(EmdMemo::pack(a, b), (a * 100 + b) as f64);
            }
        }
        // Drop ids 3 and 7; survivors compact monotonically.
        let mut remap = Vec::new();
        let mut next = 0u32;
        for id in 0..10u32 {
            if id == 3 || id == 7 {
                remap.push(NONE32);
            } else {
                remap.push(next);
                next += 1;
            }
        }
        let dropped = memo.retain_rekey(&remap);
        // Entries touching 3 or 7: 10 each, minus the shared (3,7) pair.
        assert_eq!(dropped, 19);
        assert_eq!(memo.len, 55 - 19);
        for a in 0..10u32 {
            for b in a..10u32 {
                let (ra, rb) = (remap[a as usize], remap[b as usize]);
                if ra == NONE32 || rb == NONE32 {
                    continue;
                }
                // Monotonic remap keeps ra <= rb: canonical keys survive.
                assert_eq!(memo.get(EmdMemo::pack(ra, rb)), Some((a * 100 + b) as f64));
            }
        }
        // Keys beyond the surviving id range stay absent.
        assert_eq!(memo.get(EmdMemo::pack(8, 8)), None);
    }

    #[test]
    fn dense_memo_retain_rekey_matches_flat_semantics() {
        let mut memo = EmdMemo::Dense {
            stride: 0,
            cells: Vec::new(),
        };
        for a in 0..6u32 {
            for b in a..6u32 {
                memo.insert(a, b, (a * 10 + b) as f64);
            }
        }
        let remap = [0, NONE32, 1, 2, NONE32, 3];
        let dropped = memo.retain_rekey(&remap);
        // Upper-triangle entries touching id 1 (six) or id 4 (six), with
        // the shared pair (1,4) counted once.
        assert_eq!(dropped, 11);
        for a in 0..6u32 {
            for b in a..6u32 {
                let (ra, rb) = (remap[a as usize], remap[b as usize]);
                if ra == NONE32 || rb == NONE32 {
                    continue;
                }
                assert_eq!(memo.get(ra, rb), Some((a * 10 + b) as f64), "({a},{b})");
            }
        }
        assert_eq!(memo.get(0, 4), None);
    }

    #[test]
    fn path_trie_lookup_is_non_creating_and_edges_enumerate() {
        let mut trie = PathTrie::new();
        let a = PathStep { attr: 0, code: 1 };
        let b = PathStep { attr: 1, code: 0 };
        assert_eq!(trie.lookup(&[a]), None);
        let nodes_before = trie.num_nodes();
        assert_eq!(trie.num_nodes(), nodes_before);
        let nab = trie.node_of(&[a, b]);
        assert_eq!(trie.lookup(&[a, b]), Some(nab));
        assert_eq!(trie.lookup(&[b, a]), None);
        trie.set_content(nab, 4);
        let na = trie.lookup(&[a]).unwrap();
        assert_eq!(trie.child_content(na, pack_step(b.attr, b.code)), Some(4));
        assert_eq!(trie.child_content(0, pack_step(a.attr, a.code)), None);
        let mut edges = Vec::new();
        trie.for_each_edge(0, |step, child| edges.push((step, child)));
        assert_eq!(edges, vec![(pack_step(a.attr, a.code), na)]);
        trie.remap_contents(&[9, 9, 9, 9, 2]);
        assert_eq!(trie.content(nab), Some(2));
    }

    #[test]
    fn resumed_engine_counts_cross_generation_reuse() {
        let s = space();
        let mut engine = SplitEngine::new(&s, FairnessCriterion::default());
        engine.record_split_evals();
        let root = Partition::root(&s);
        let parts_list = root.split(&s, 0);
        let _ = engine.best_split(&root, &[0, 1], 1).unwrap();
        let _ = engine.unfairness(&parts_list).unwrap();
        // Generation 0: nothing predates the run.
        assert_eq!(engine.stats().delta_reused_histograms, 0);
        let mut parts = engine.into_parts();
        parts.begin_generation();
        let mut resumed = SplitEngine::resume(&s, parts);
        let u = resumed.unfairness(&parts_list).unwrap();
        let stats = resumed.stats();
        // Every histogram came from the previous generation, counted once
        // (the gender split has two distinct contents), and nothing was
        // rebuilt or recomputed.
        assert_eq!(stats.delta_reused_histograms, 2);
        assert_eq!(stats.histograms_built, 0);
        assert_eq!(stats.emd_calls, 0);
        let again = resumed.unfairness(&parts_list).unwrap();
        assert_eq!(u.to_bits(), again.to_bits());
        assert_eq!(resumed.stats().delta_reused_histograms, 2, "counted once");
    }

    #[test]
    fn delta_best_split_replays_the_recorded_summaries() {
        let s = space();
        let crit = FairnessCriterion::default();
        let mut engine = SplitEngine::new(&s, crit);
        engine.record_split_evals();
        let root = Partition::root(&s);
        let (full, scored_full) = engine.best_split(&root, &[0, 1], 1).unwrap();
        let full = full.unwrap();
        let mut parts = engine.into_parts();
        parts.begin_generation();
        let mut resumed = SplitEngine::resume(&s, parts);
        let (delta, scored_delta) = resumed.delta_best_split(&root, &[0, 1], 1).unwrap();
        let delta = delta.unwrap();
        assert_eq!((delta.attr, scored_delta), (full.attr, scored_full));
        assert_eq!(delta.value.to_bits(), full.value.to_bits());
        assert_eq!(delta.child_ids, full.child_ids);
        assert_eq!(resumed.stats().histograms_built, 0, "all from cache");
        // The min-size skip replays from summaries too.
        let (none, zero) = resumed.delta_best_split(&root, &[0, 1], 5).unwrap();
        assert!(none.is_none());
        assert_eq!(zero, 0);
        // An unseen path falls back to the real scan (and records it).
        let child = root.split(&s, 0).remove(0);
        let (via_delta, _) = resumed.delta_best_split(&child, &[1], 1).unwrap();
        let mut fresh = SplitEngine::new(&s, crit);
        let (via_full, _) = fresh.best_split(&child, &[1], 1).unwrap();
        match (via_delta, via_full) {
            (Some(d), Some(f)) => assert_eq!(d.value.to_bits(), f.value.to_bits()),
            (d, f) => panic!("divergent fallback: {d:?} vs {f:?}"),
        }
    }

    #[test]
    fn apply_event_patches_dirty_paths_and_compact_drops_orphans() {
        let s = space();
        let crit = FairnessCriterion::default();
        let mut engine = SplitEngine::new(&s, crit);
        engine.record_split_evals();
        let root = Partition::root(&s);
        let _ = engine.best_split(&root, &[0, 1], 1).unwrap();
        let _ = engine.unfairness(&root.split(&s, 0)).unwrap();
        let mut parts = engine.into_parts();
        parts.begin_generation();

        // Insert one row: F/x with a score in some bin.
        let bin = parts.bin_of(0.3);
        parts.push_row_bin(bin);
        let touched = parts.apply_event(&[0, 0], CacheAdjust::Insert { bin });
        // Dirty paths with cached contents: the gender=F and noise=x
        // children (the root node exists but was never given a content).
        assert_eq!(touched, 2);
        let dropped = parts.compact();
        // Root and F contents were re-interned; their old ids orphaned,
        // dropping the memoized distances that touched them.
        assert!(dropped > 0, "orphaned EMD entries must be dropped");

        // The patched caches now agree with a fresh engine on the mutated
        // space, bit for bit.
        let mut mutated = s.clone();
        mutated.insert_row(&["F", "x"], 0.3).unwrap();
        let mut resumed = SplitEngine::resume(&mutated, parts);
        let mut fresh = SplitEngine::new(&mutated, crit);
        let new_root = Partition::root(&mutated);
        let (d, sd) = resumed.delta_best_split(&new_root, &[0, 1], 1).unwrap();
        let (f, sf) = fresh.best_split(&new_root, &[0, 1], 1).unwrap();
        let (d, f) = (d.unwrap(), f.unwrap());
        assert_eq!((d.attr, sd), (f.attr, sf));
        assert_eq!(d.value.to_bits(), f.value.to_bits());
        let ud = resumed.unfairness(&new_root.split(&mutated, 0)).unwrap();
        let uf = fresh.unfairness(&new_root.split(&mutated, 0)).unwrap();
        assert_eq!(ud.to_bits(), uf.to_bits());

        // A same-bin rescore is a recognized no-op.
        let mut parts = resumed.into_parts();
        parts.begin_generation();
        assert_eq!(
            parts.apply_event(
                &[0, 0],
                CacheAdjust::Rescore {
                    old_bin: bin,
                    new_bin: bin
                }
            ),
            0
        );
    }
}
