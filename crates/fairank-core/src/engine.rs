//! The split-evaluation engine shared by every partitioning search.
//!
//! Evaluating candidate splits dominates the `QUANTIFY` hot path: the naive
//! formulation re-derives `bin_of(score)` for every row of every histogram,
//! materializes a `Vec<u32>` row-set per candidate child just to histogram
//! it, recomputes the winning split that `mostUnfair` already scored, and
//! re-evaluates the same partition-pair EMDs at every recursion level.
//! [`SplitEngine`] removes all four costs while remaining *bit-identical*
//! to the naive evaluation order (asserted by the `engine_equivalence`
//! property suite):
//!
//! 1. **Binned-score cache** — [`RankingSpace::bin_codes`] is computed once
//!    per run, so building a histogram over a row subset is pure counting.
//! 2. **One-pass counting splits** — [`SplitEngine::best_split`] scores
//!    every candidate attribute of a node with a single scan over the
//!    node's rows, accumulating `counts[value][bin]` directly; candidate
//!    children get histograms without child row vectors ever materializing
//!    (rows materialize only for the winning attribute, and only once the
//!    split is accepted).
//! 3. **Winner cache** — the winning attribute and interned handles to its
//!    child histograms are handed back in a [`CandidateSplit`]; the
//!    histograms live on in the engine's arena and their pairwise
//!    distances in the memo, so the recursion's follow-up evaluations
//!    reuse what `mostUnfair` already built.
//! 4. **EMD memo table** — histogram cache entries are keyed by partition
//!    *path* (the conjunction of attribute constraints uniquely identifies
//!    a partition's rows within one space) and each distinct histogram
//!    *content* is interned to a small id; distances are memoized by id
//!    pair. Content keying subsumes path identity — a node's histogram,
//!    hence its distance to any fixed sibling, is identical across
//!    recursion levels — and additionally collapses the huge pairwise
//!    matrices over fine partitionings, whose small partitions repeat the
//!    same few score distributions constantly.
//!
//! The engine mirrors [`FairnessCriterion`]'s aggregation orders exactly
//! (pairwise `(0,1), (0,2), …` and children-outer cross products), so
//! floating-point accumulation is unchanged and search results do not move
//! by a single bit.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::emd::EmdBackendKind;
use crate::error::Result;
use crate::fairness::FairnessCriterion;
use crate::histogram::Histogram;
use crate::partition::{Partition, PathStep};
use crate::space::RankingSpace;

/// Multiply-rotate hasher for the engine's internal maps. The keys are
/// small, trusted, and hashed millions of times per search (every memoized
/// distance lookup), where SipHash's DoS resistance costs more than the
/// EMD it saves; this is the FxHash folding scheme over 8-byte chunks.
#[derive(Default)]
struct EngineHasher(u64);

impl EngineHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for EngineHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.fold(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }
}

type EngineMap<K, V> = HashMap<K, V, BuildHasherDefault<EngineHasher>>;

// ---- small-input bypass ---------------------------------------------------
//
// On small spaces the hash maps' per-lookup overhead (hashing a path
// vector, probing, allocation growth) exceeds the arithmetic it saves —
// the ROADMAP's "slightly slower than naive on ≤1k rows" soft spot. Small
// runs produce only a handful of distinct paths/contents, so the engine
// swaps each map for a compact structure with identical semantics: linear
// scans for the two interning tables, a dense id×id matrix for the EMD
// memo. Caching behavior (hence stats and results) is bit-for-bit the
// same; only the container changes.

/// Row-count ceiling for the compact (bypass) caches.
const SMALL_SPACE_ROWS: usize = 1024;
/// Attribute-count ceiling for the compact caches (more attributes mean
/// more distinct paths, where linear scans stop paying off).
const SMALL_SPACE_ATTRS: usize = 4;
/// Total-cardinality ceiling (sum over attributes of distinct values).
/// Cache entry counts — and the dense matrix's stride — grow with the
/// number of distinct partitions, which is driven by cardinality, not by
/// attribute count; a 2-attribute space with a 1000-value column would
/// turn the linear scans quadratic and the matrix huge.
const SMALL_SPACE_CARDINALITY: usize = 64;

/// Histogram path cache: partition path → interned content id.
#[derive(Debug)]
enum PathCache {
    Hashed(EngineMap<Vec<PathStep>, u32>),
    Compact(Vec<(Vec<PathStep>, u32)>),
}

impl PathCache {
    fn get(&self, path: &[PathStep]) -> Option<u32> {
        match self {
            PathCache::Hashed(map) => map.get(path).copied(),
            PathCache::Compact(entries) => entries
                .iter()
                .find(|(key, _)| key.as_slice() == path)
                .map(|&(_, id)| id),
        }
    }

    fn insert(&mut self, path: Vec<PathStep>, id: u32) {
        match self {
            PathCache::Hashed(map) => {
                map.insert(path, id);
            }
            PathCache::Compact(entries) => entries.push((path, id)),
        }
    }
}

/// Interning table: distinct histogram contents → id.
#[derive(Debug)]
enum ContentCache {
    Hashed(EngineMap<Vec<u64>, u32>),
    Compact(Vec<(Vec<u64>, u32)>),
}

impl ContentCache {
    fn get(&self, counts: &[u64]) -> Option<u32> {
        match self {
            ContentCache::Hashed(map) => map.get(counts).copied(),
            ContentCache::Compact(entries) => entries
                .iter()
                .find(|(key, _)| key.as_slice() == counts)
                .map(|&(_, id)| id),
        }
    }

    fn insert(&mut self, counts: Vec<u64>, id: u32) {
        match self {
            ContentCache::Hashed(map) => {
                map.insert(counts, id);
            }
            ContentCache::Compact(entries) => entries.push((counts, id)),
        }
    }
}

/// EMD memo keyed by the (directed) pair of content ids. The compact form
/// is a dense stride×stride matrix: content ids are small and dense, so a
/// direct index beats hashing by an order of magnitude on the memo's very
/// hot lookup path.
#[derive(Debug)]
enum EmdMemo {
    Hashed(EngineMap<(u32, u32), f64>),
    Dense { stride: usize, cells: Vec<Option<f64>> },
}

impl EmdMemo {
    fn get(&self, a: u32, b: u32) -> Option<f64> {
        match self {
            EmdMemo::Hashed(map) => map.get(&(a, b)).copied(),
            EmdMemo::Dense { stride, cells } => {
                let (a, b) = (a as usize, b as usize);
                if a < *stride && b < *stride {
                    cells[a * stride + b]
                } else {
                    None
                }
            }
        }
    }

    fn insert(&mut self, a: u32, b: u32, d: f64) {
        match self {
            EmdMemo::Hashed(map) => {
                map.insert((a, b), d);
            }
            EmdMemo::Dense { stride, cells } => {
                let needed = (a.max(b) as usize) + 1;
                if needed > *stride {
                    let new_stride = needed.next_power_of_two().max(8);
                    let mut grown = vec![None; new_stride * new_stride];
                    for row in 0..*stride {
                        for col in 0..*stride {
                            grown[row * new_stride + col] = cells[row * *stride + col];
                        }
                    }
                    *cells = grown;
                    *stride = new_stride;
                }
                cells[(a as usize) * *stride + (b as usize)] = Some(d);
            }
        }
    }
}

/// Work counters the engine maintains, surfaced through `SearchStats` and
/// the beam/exhaustive outcomes so perf regressions are assertable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Histograms actually constructed (cache misses included, cache hits
    /// not).
    pub histograms_built: usize,
    /// EMD distances actually computed (memo misses).
    pub emd_calls: usize,
    /// Distance lookups served from the memo table.
    pub emd_cache_hits: usize,
    /// Pairwise/cross aggregations resolved as one batch by the batched
    /// backend (each batch touches the memo once per *distinct* histogram
    /// pair instead of once per leaf pair).
    pub pairwise_batches: usize,
}

/// The winning candidate split of a node: the attribute, its `mostUnfair`
/// score, and interned handles to the children's histograms (in ascending
/// value-code order, the same order [`Partition::split`] produces). The
/// handles are how the winner cache works: the children's histograms live
/// in the engine's arena and their pairwise distances in the memo, so the
/// recursion's follow-up evaluations reuse both instead of recomputing.
#[derive(Debug, Clone)]
pub struct CandidateSplit {
    /// The winning attribute index.
    pub attr: usize,
    /// Aggregated pairwise distance among the children (the `mostUnfair`
    /// score of this split).
    pub value: f64,
    /// Interned content id of each child histogram (engine-internal memo
    /// handles).
    pub(crate) child_ids: Vec<u32>,
}

/// Shared evaluation context for one search run over one ranking space.
#[derive(Debug)]
pub struct SplitEngine<'a> {
    space: &'a RankingSpace,
    criterion: FairnessCriterion,
    /// `bin_codes[row]` = histogram bin of the row's score.
    bin_codes: Vec<u32>,
    /// Histogram cache: partition path → interned content id.
    hists: PathCache,
    /// Interning table: distinct histogram contents (per-bin counts) → id.
    content_ids: ContentCache,
    /// One canonical histogram per content id; every lookup borrows from
    /// here, so cache hits never allocate.
    hist_arena: Vec<Histogram>,
    /// Lazily cached normalized mass vector per content id — the hoisted
    /// per-histogram work of the batched backend (parallel to
    /// `hist_arena`).
    masses: Vec<Option<Box<[f64]>>>,
    /// EMD memo keyed by the unordered (canonical) pair of content ids.
    emd_memo: EmdMemo,
    stats: EngineStats,
}

impl<'a> SplitEngine<'a> {
    /// An engine for one run of a search under `criterion` on `space`.
    /// Small spaces (≤ [`SMALL_SPACE_ROWS`] rows, ≤ [`SMALL_SPACE_ATTRS`]
    /// attributes, ≤ [`SMALL_SPACE_CARDINALITY`] total distinct values)
    /// get the compact caches — identical semantics, no hashing overhead.
    pub fn new(space: &'a RankingSpace, criterion: FairnessCriterion) -> Self {
        let total_cardinality: usize = space
            .attributes()
            .iter()
            .map(|a| a.cardinality())
            .sum();
        let compact = space.num_individuals() <= SMALL_SPACE_ROWS
            && space.attributes().len() <= SMALL_SPACE_ATTRS
            && total_cardinality <= SMALL_SPACE_CARDINALITY;
        let (hists, content_ids, emd_memo) = if compact {
            (
                PathCache::Compact(Vec::new()),
                ContentCache::Compact(Vec::new()),
                EmdMemo::Dense {
                    stride: 0,
                    cells: Vec::new(),
                },
            )
        } else {
            (
                PathCache::Hashed(EngineMap::default()),
                ContentCache::Hashed(EngineMap::default()),
                EmdMemo::Hashed(EngineMap::default()),
            )
        };
        SplitEngine {
            bin_codes: space.bin_codes(&criterion.hist),
            space,
            criterion,
            hists,
            content_ids,
            hist_arena: Vec::new(),
            masses: Vec::new(),
            emd_memo,
            stats: EngineStats::default(),
        }
    }

    /// Whether this engine runs on the compact small-input caches.
    pub fn uses_compact_caches(&self) -> bool {
        matches!(self.hists, PathCache::Compact(_))
    }

    /// The space this engine evaluates over.
    pub fn space(&self) -> &'a RankingSpace {
        self.space
    }

    /// The criterion this engine evaluates under.
    pub fn criterion(&self) -> &FairnessCriterion {
        &self.criterion
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Interns histogram content, returning a small id such that equal
    /// per-bin counts always map to the same id. New content gets one
    /// canonical [`Histogram`] in the arena.
    fn intern(&mut self, counts: &[u64]) -> u32 {
        if let Some(id) = self.content_ids.get(counts) {
            return id;
        }
        let id = self.hist_arena.len() as u32;
        self.content_ids.insert(counts.to_vec(), id);
        self.hist_arena
            .push(Histogram::from_counts(self.criterion.hist, counts.to_vec()));
        self.masses.push(None);
        id
    }

    /// The partition's histogram content id, built through the binned-score
    /// cache on a path-cache miss. Hits allocate nothing.
    fn hist_id(&mut self, partition: &Partition) -> u32 {
        if let Some(id) = self.hists.get(&partition.path) {
            return id;
        }
        let bins = self.criterion.hist.bins();
        let mut counts = vec![0u64; bins];
        for &row in &partition.rows {
            counts[self.bin_codes[row as usize] as usize] += 1;
        }
        self.stats.histograms_built += 1;
        let id = self.intern(&counts);
        self.hists.insert(partition.path.clone(), id);
        id
    }

    /// The partition's score histogram (cloned from the arena entry).
    pub fn histogram(&mut self, partition: &Partition) -> Histogram {
        let id = self.hist_id(partition);
        self.hist_arena[id as usize].clone()
    }

    /// Memoized EMD between two content-identified histograms. The distance
    /// is a pure function of the two count vectors (and the shared spec),
    /// so equal content ids always reproduce the exact bits of a fresh
    /// computation. Every backend is bitwise symmetric (the 1-D closed
    /// form because CDF differences negate exactly, the transport solver
    /// because it canonicalizes its input order), so the memo keys on the
    /// unordered pair and one computation serves both directions.
    fn distance(&mut self, id_a: u32, id_b: u32) -> Result<f64> {
        let (lo, hi) = if id_a <= id_b { (id_a, id_b) } else { (id_b, id_a) };
        if let Some(d) = self.emd_memo.get(lo, hi) {
            self.stats.emd_cache_hits += 1;
            return Ok(d);
        }
        self.stats.emd_calls += 1;
        let d = self
            .criterion
            .emd
            .distance(&self.hist_arena[lo as usize], &self.hist_arena[hi as usize])?;
        self.emd_memo.insert(lo, hi, d);
        Ok(d)
    }

    /// The hoisted normalized-mass vector of a content id (computed once,
    /// reused by every batch the id participates in).
    fn ensure_mass(&mut self, id: u32) {
        let idx = id as usize;
        if self.masses[idx].is_none() {
            self.masses[idx] = Some(self.hist_arena[idx].mass().into_boxed_slice());
        }
    }

    /// Memoized EMD resolved through the batched 1-D closed form: on a memo
    /// miss the distance is folded directly from the hoisted mass vectors
    /// in the reference summation order — bit-identical to
    /// [`crate::emd::Emd::distance`] under the `1d`/`batched` backends,
    /// without the per-pair normalization allocations.
    fn batched_distance(&mut self, id_a: u32, id_b: u32) -> Result<f64> {
        let (lo, hi) = if id_a <= id_b { (id_a, id_b) } else { (id_b, id_a) };
        if let Some(d) = self.emd_memo.get(lo, hi) {
            self.stats.emd_cache_hits += 1;
            return Ok(d);
        }
        self.stats.emd_calls += 1;
        self.ensure_mass(lo);
        self.ensure_mass(hi);
        // Arena histograms all share the criterion's spec, so no per-pair
        // compatibility check is needed; conventions and the fold are the
        // backend layer's single source, so the bits cannot drift from
        // `Emd::distance`.
        let d = crate::emd::backend::one_d_from_parts(
            self.hist_arena[lo as usize].is_empty(),
            self.hist_arena[hi as usize].is_empty(),
            self.masses[lo as usize].as_deref().expect("cached"),
            self.masses[hi as usize].as_deref().expect("cached"),
            &self.criterion.hist,
        );
        self.emd_memo.insert(lo, hi, d);
        Ok(d)
    }

    /// Appends `id` to the distinct-id list if unseen, returning its slot.
    fn slot_of(distinct: &mut Vec<u32>, id: u32) -> usize {
        match distinct.iter().position(|&d| d == id) {
            Some(slot) => slot,
            None => {
                distinct.push(id);
                distinct.len() - 1
            }
        }
    }

    /// The batched backend's pairwise aggregation: resolve each *distinct*
    /// content pair once (through the memo), then expand to the full
    /// `C(L, 2)` vector in the reference lexicographic order. Fine
    /// partitionings repeat the same few score distributions constantly,
    /// so this replaces the per-pair memo walk with `C(D, 2)` resolutions
    /// for `D` distinct contents plus a table expansion.
    fn batch_pairwise(&mut self, ids: &[u32]) -> Result<Vec<f64>> {
        self.stats.pairwise_batches += 1;
        let n = ids.len();
        let mut out = Vec::with_capacity(n.saturating_sub(1) * n / 2);
        if n < 2 {
            return Ok(out);
        }
        let mut distinct: Vec<u32> = Vec::new();
        let mut slots: Vec<u32> = Vec::with_capacity(n);
        for &id in ids {
            slots.push(Self::slot_of(&mut distinct, id) as u32);
        }
        let d = distinct.len();
        // The diagonal stays 0.0 — exactly what a self-pair computes (the
        // mass differences are exact zeros, so the fold yields +0.0).
        let mut table = vec![0.0f64; d * d];
        for i in 0..d {
            for j in (i + 1)..d {
                let v = self.batched_distance(distinct[i], distinct[j])?;
                table[i * d + j] = v;
                table[j * d + i] = v;
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                out.push(table[slots[i] as usize * d + slots[j] as usize]);
            }
        }
        Ok(out)
    }

    /// The batched backend's cross aggregation (left outer, right inner),
    /// resolving each distinct content pair once.
    fn batch_cross(&mut self, left: &[u32], right: &[u32]) -> Result<Vec<f64>> {
        self.stats.pairwise_batches += 1;
        let mut distinct: Vec<u32> = Vec::new();
        let left_slots: Vec<u32> = left
            .iter()
            .map(|&id| Self::slot_of(&mut distinct, id) as u32)
            .collect();
        let right_slots: Vec<u32> = right
            .iter()
            .map(|&id| Self::slot_of(&mut distinct, id) as u32)
            .collect();
        let d = distinct.len();
        let mut table = vec![0.0f64; d * d];
        let mut have = vec![false; d * d];
        let mut out = Vec::with_capacity(left.len() * right.len());
        for &ls in &left_slots {
            for &rs in &right_slots {
                let v = if ls == rs {
                    0.0 // self-pair: exact zero, same as a fresh fold
                } else {
                    let (a, b) = if ls <= rs { (ls, rs) } else { (rs, ls) };
                    let idx = a as usize * d + b as usize;
                    if !have[idx] {
                        table[idx] =
                            self.batched_distance(distinct[a as usize], distinct[b as usize])?;
                        have[idx] = true;
                    }
                    table[idx]
                };
                out.push(v);
            }
        }
        Ok(out)
    }

    /// All pairwise distances over content ids in `(0,1), (0,2), …` order —
    /// per-pair memo lookups for the `1d`/`transport` backends, one batch
    /// for `batched`.
    fn pairwise_dists(&mut self, ids: &[u32]) -> Result<Vec<f64>> {
        if self.criterion.emd.backend() == EmdBackendKind::Batched {
            return self.batch_pairwise(ids);
        }
        let n = ids.len();
        let mut dists = Vec::with_capacity(n.saturating_sub(1) * n / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                dists.push(self.distance(ids[i], ids[j])?);
            }
        }
        Ok(dists)
    }

    /// All cross distances (left outer, right inner) over content ids.
    fn cross_dists(&mut self, left: &[u32], right: &[u32]) -> Result<Vec<f64>> {
        if self.criterion.emd.backend() == EmdBackendKind::Batched {
            return self.batch_cross(left, right);
        }
        let mut dists = Vec::with_capacity(left.len() * right.len());
        for &a in left {
            for &b in right {
                dists.push(self.distance(a, b)?);
            }
        }
        Ok(dists)
    }

    /// Aggregated pairwise distance over content-identified histograms, in
    /// the same `(0,1), (0,2), …` order as `pairwise_distances`.
    fn pairwise_value(&mut self, ids: &[u32]) -> Result<f64> {
        let dists = self.pairwise_dists(ids)?;
        Ok(self.criterion.aggregator.apply(&dists))
    }

    /// `unfairness(P, f)` with cached histograms and memoized distances —
    /// the drop-in for [`FairnessCriterion::unfairness`] used by the beam
    /// and exhaustive searches, whose states revisit the same partitions
    /// over and over.
    pub fn unfairness(&mut self, partitions: &[Partition]) -> Result<f64> {
        let mut ids = Vec::with_capacity(partitions.len());
        for p in partitions {
            ids.push(self.hist_id(p));
        }
        self.pairwise_value(&ids)
    }

    /// Aggregate distance of `partition` vs. each of `others` — the memoized
    /// drop-in for [`FairnessCriterion::versus`] (same distance order).
    pub fn versus(&mut self, partition: &Partition, others: &[Partition]) -> Result<f64> {
        let id = self.hist_id(partition);
        let mut other_ids = Vec::with_capacity(others.len());
        for other in others {
            other_ids.push(self.hist_id(other));
        }
        let dists = self.cross_dists(&[id], &other_ids)?;
        Ok(self.criterion.aggregator.apply(&dists))
    }

    /// Aggregate of all child-vs-sibling distances (Algorithm 1 line 8),
    /// reusing the winner cache's child ids. Distance order matches
    /// `cross_distances` (children outer, siblings inner).
    pub fn children_versus_siblings(
        &mut self,
        candidate: &CandidateSplit,
        siblings: &[Partition],
    ) -> Result<f64> {
        let mut sib_ids = Vec::with_capacity(siblings.len());
        for s in siblings {
            sib_ids.push(self.hist_id(s));
        }
        let dists = self.cross_dists(&candidate.child_ids, &sib_ids)?;
        Ok(self.criterion.aggregator.apply(&dists))
    }

    /// The holistic split test: `unfairness(siblings ∪ {current})` vs.
    /// `unfairness(siblings ∪ children)`, with the children taken from the
    /// winner cache. List orders match the naive construction (siblings
    /// first, then current / children).
    pub fn holistic_values(
        &mut self,
        siblings: &[Partition],
        current: &Partition,
        candidate: &CandidateSplit,
    ) -> Result<(f64, f64)> {
        let mut ids = Vec::with_capacity(siblings.len() + 1);
        for s in siblings {
            ids.push(self.hist_id(s));
        }
        ids.push(self.hist_id(current));
        let before = self.pairwise_value(&ids)?;
        ids.truncate(siblings.len());
        ids.extend(candidate.child_ids.iter().copied());
        let after = self.pairwise_value(&ids)?;
        Ok((before, after))
    }

    /// `mostUnfair(current, f, A)` via one-pass counting splits: each
    /// candidate attribute is scored with a single scan over the node's
    /// rows accumulating `counts[value][bin]`, so no child row vector is
    /// ever materialized here. Attributes producing fewer than two children
    /// (or any child below `min_partition_size`) are not candidates, and
    /// ties keep the earlier attribute — both exactly as the naive
    /// evaluation. Returns the winner (with its histograms and pairwise
    /// distances preserved for the recursion) and the number of candidate
    /// splits scored.
    pub fn best_split(
        &mut self,
        current: &Partition,
        avail: &[usize],
        min_partition_size: usize,
    ) -> Result<(Option<CandidateSplit>, usize)> {
        let bins = self.criterion.hist.bins();
        let mut best: Option<CandidateSplit> = None;
        let mut scored = 0usize;
        for &attr in avail {
            let Some(attribute) = self.space.attribute(attr) else {
                continue;
            };
            let card = attribute.cardinality();
            let mut counts = vec![0u64; card * bins];
            let mut sizes = vec![0usize; card];
            for &row in &current.rows {
                let code = attribute.codes[row as usize] as usize;
                counts[code * bins + self.bin_codes[row as usize] as usize] += 1;
                sizes[code] += 1;
            }
            let present: Vec<usize> = (0..card).filter(|&c| sizes[c] > 0).collect();
            if present.len() < 2 {
                continue;
            }
            if present.iter().any(|&c| sizes[c] < min_partition_size) {
                continue;
            }
            scored += 1;
            let mut child_ids = Vec::with_capacity(present.len());
            for &code in &present {
                let mut path = current.path.clone();
                path.push(PathStep {
                    attr,
                    code: code as u32,
                });
                let id = match self.hists.get(&path) {
                    Some(id) => id,
                    None => {
                        self.stats.histograms_built += 1;
                        let id = self.intern(&counts[code * bins..(code + 1) * bins]);
                        self.hists.insert(path, id);
                        id
                    }
                };
                child_ids.push(id);
            }
            let value = self.pairwise_value(&child_ids)?;
            let better = match &best {
                None => true,
                Some(incumbent) => self.criterion.objective.is_better(value, incumbent.value),
            };
            if better {
                best = Some(CandidateSplit {
                    attr,
                    value,
                    child_ids,
                });
            }
        }
        Ok((best, scored))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fairness::{Aggregator, Objective};
    use crate::space::ProtectedAttribute;

    fn space() -> RankingSpace {
        let gender = ProtectedAttribute::from_values(
            "gender",
            &["F", "M", "F", "M", "F", "M", "F", "M"],
        );
        let noise = ProtectedAttribute::from_values(
            "noise",
            &["x", "x", "y", "y", "x", "y", "x", "y"],
        );
        RankingSpace::new(
            vec![gender, noise],
            vec![0.1, 0.9, 0.2, 0.8, 0.15, 0.85, 0.12, 0.88],
        )
        .unwrap()
    }

    #[test]
    fn engine_histogram_matches_criterion_histogram() {
        let s = space();
        let crit = FairnessCriterion::default();
        let mut engine = SplitEngine::new(&s, crit);
        let root = Partition::root(&s);
        for p in std::iter::once(root.clone()).chain(root.split(&s, 0)) {
            assert_eq!(engine.histogram(&p), crit.histogram(&p, s.scores()));
        }
        // Second lookups are cache hits: no new builds.
        let built = engine.stats().histograms_built;
        let _ = engine.histogram(&root);
        assert_eq!(engine.stats().histograms_built, built);
    }

    #[test]
    fn engine_unfairness_and_versus_match_criterion() {
        let s = space();
        let crit = FairnessCriterion::new(Objective::MostUnfair, Aggregator::Mean);
        let mut engine = SplitEngine::new(&s, crit);
        let parts = Partition::root(&s).split(&s, 0);
        let u_engine = engine.unfairness(&parts).unwrap();
        let u_naive = crit.unfairness(&parts, s.scores()).unwrap();
        assert_eq!(u_engine, u_naive);
        let v_engine = engine.versus(&parts[0], &parts[1..]).unwrap();
        let v_naive = crit.versus(&parts[0], &parts[1..], s.scores()).unwrap();
        assert_eq!(v_engine, v_naive);
    }

    #[test]
    fn repeated_unfairness_hits_the_memo() {
        let s = space();
        let mut engine = SplitEngine::new(&s, FairnessCriterion::default());
        let parts = Partition::root(&s).split(&s, 0);
        let first = engine.unfairness(&parts).unwrap();
        let calls_after_first = engine.stats().emd_calls;
        let second = engine.unfairness(&parts).unwrap();
        assert_eq!(first, second);
        assert_eq!(engine.stats().emd_calls, calls_after_first);
        assert!(engine.stats().emd_cache_hits > 0);
    }

    #[test]
    fn one_d_memo_serves_both_directions() {
        let s = space();
        let mut engine = SplitEngine::new(&s, FairnessCriterion::default());
        let parts = Partition::root(&s).split(&s, 0);
        // Forward direction computes, reverse direction must hit.
        let _ = engine.versus(&parts[0], &parts[1..]).unwrap();
        let calls = engine.stats().emd_calls;
        let _ = engine.versus(&parts[1], &parts[..1]).unwrap();
        assert_eq!(engine.stats().emd_calls, calls);
        assert!(engine.stats().emd_cache_hits > 0);
    }

    #[test]
    fn best_split_matches_naive_most_unfair() {
        let s = space();
        let crit = FairnessCriterion::default();
        let mut engine = SplitEngine::new(&s, crit);
        let root = Partition::root(&s);
        let (cand, scored) = engine.best_split(&root, &[0, 1], 1).unwrap();
        let cand = cand.expect("both attributes split the root");
        assert_eq!(scored, 2);
        // Gender (attribute 0) separates scores; noise does not.
        assert_eq!(cand.attr, 0);
        let children = root.split(&s, 0);
        assert_eq!(cand.child_ids.len(), children.len());
        // The one-pass counting histograms equal the per-child rebuilds —
        // and they were cached during best_split, so no new builds occur.
        let built = engine.stats().histograms_built;
        for child in &children {
            assert_eq!(
                engine.histogram(child),
                crit.histogram(child, s.scores())
            );
        }
        assert_eq!(engine.stats().histograms_built, built);
        assert_eq!(cand.value, crit.unfairness(&children, s.scores()).unwrap());
    }

    #[test]
    fn best_split_honors_min_partition_size() {
        let s = space();
        let mut engine = SplitEngine::new(&s, FairnessCriterion::default());
        let root = Partition::root(&s);
        // Both attributes give 4/4 children; a floor of 5 blocks everything.
        let (cand, scored) = engine.best_split(&root, &[0, 1], 5).unwrap();
        assert!(cand.is_none());
        assert_eq!(scored, 0);
    }

    #[test]
    fn small_spaces_select_the_compact_caches() {
        let s = space(); // 8 rows, 2 attributes
        let engine = SplitEngine::new(&s, FairnessCriterion::default());
        assert!(engine.uses_compact_caches());

        // Too many rows → hashed.
        let n = SMALL_SPACE_ROWS + 1;
        let labels: Vec<String> = (0..n).map(|i| format!("v{}", i % 2)).collect();
        let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let attr = ProtectedAttribute::from_values("g", &refs);
        let scores: Vec<f64> = (0..n).map(|i| (i % 10) as f64 / 10.0).collect();
        let big = RankingSpace::new(vec![attr], scores).unwrap();
        let engine = SplitEngine::new(&big, FairnessCriterion::default());
        assert!(!engine.uses_compact_caches());

        // Too many attributes → hashed even when rows are few.
        let attrs: Vec<ProtectedAttribute> = (0..SMALL_SPACE_ATTRS + 1)
            .map(|a| {
                ProtectedAttribute::from_values(
                    format!("a{a}"),
                    &["x", "y", "x", "y", "x", "y", "x", "y"],
                )
            })
            .collect();
        let wide = RankingSpace::new(
            attrs,
            vec![0.1, 0.9, 0.2, 0.8, 0.15, 0.85, 0.12, 0.88],
        )
        .unwrap();
        let engine = SplitEngine::new(&wide, FairnessCriterion::default());
        assert!(!engine.uses_compact_caches());

        // High total cardinality → hashed even with few rows/attributes:
        // linear scans and the dense matrix scale with distinct values.
        let n = 800;
        let ids: Vec<String> = (0..n).map(|i| format!("id{i}")).collect();
        let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let high_card = ProtectedAttribute::from_values("worker_id", &refs);
        let scores: Vec<f64> = (0..n).map(|i| (i % 7) as f64 / 7.0).collect();
        let carded = RankingSpace::new(vec![high_card], scores).unwrap();
        let engine = SplitEngine::new(&carded, FairnessCriterion::default());
        assert!(!engine.uses_compact_caches());
    }

    #[test]
    fn compact_and_hashed_caches_are_bitwise_equivalent() {
        // The same tiny space forced through both cache families must do
        // the same work and produce the same bits everywhere.
        let s = space();
        let crit = FairnessCriterion::default();
        let mut compact = SplitEngine::new(&s, crit);
        assert!(compact.uses_compact_caches());
        let mut hashed = SplitEngine::new(&s, crit);
        hashed.hists = PathCache::Hashed(EngineMap::default());
        hashed.content_ids = ContentCache::Hashed(EngineMap::default());
        hashed.emd_memo = EmdMemo::Hashed(EngineMap::default());

        let root = Partition::root(&s);
        let parts = root.split(&s, 0);
        for engine in [&mut compact, &mut hashed] {
            let _ = engine.best_split(&root, &[0, 1], 1).unwrap();
        }
        assert_eq!(
            compact.unfairness(&parts).unwrap(),
            hashed.unfairness(&parts).unwrap()
        );
        assert_eq!(
            compact.versus(&parts[0], &parts[1..]).unwrap(),
            hashed.versus(&parts[0], &parts[1..]).unwrap()
        );
        assert_eq!(compact.stats(), hashed.stats());
        assert!(compact.stats().emd_cache_hits > 0);
    }

    #[test]
    fn dense_memo_grows_and_keeps_entries() {
        let mut memo = EmdMemo::Dense {
            stride: 0,
            cells: Vec::new(),
        };
        assert_eq!(memo.get(0, 0), None);
        memo.insert(0, 1, 0.5);
        assert_eq!(memo.get(0, 1), Some(0.5));
        assert_eq!(memo.get(1, 0), None);
        // Growth past the stride keeps earlier cells.
        memo.insert(40, 3, 0.25);
        assert_eq!(memo.get(0, 1), Some(0.5));
        assert_eq!(memo.get(40, 3), Some(0.25));
        assert_eq!(memo.get(3, 40), None);
    }

    #[test]
    fn batched_backend_matches_per_pair_engine_bitwise() {
        use crate::emd::{Emd, EmdBackendKind};
        let s = space();
        let mut per_pair = SplitEngine::new(&s, FairnessCriterion::default());
        let mut batched = SplitEngine::new(
            &s,
            FairnessCriterion::default().with_emd(Emd::new(EmdBackendKind::Batched)),
        );
        let root = Partition::root(&s);
        let parts = root.split(&s, 0);

        let u1 = per_pair.unfairness(&parts).unwrap();
        let ub = batched.unfairness(&parts).unwrap();
        assert_eq!(u1.to_bits(), ub.to_bits());
        let v1 = per_pair.versus(&parts[0], &parts[1..]).unwrap();
        let vb = batched.versus(&parts[0], &parts[1..]).unwrap();
        assert_eq!(v1.to_bits(), vb.to_bits());
        let (c1, s1) = per_pair.best_split(&root, &[0, 1], 1).unwrap();
        let (cb, sb) = batched.best_split(&root, &[0, 1], 1).unwrap();
        let (c1, cb) = (c1.unwrap(), cb.unwrap());
        assert_eq!((s1, c1.attr), (sb, cb.attr));
        assert_eq!(c1.value.to_bits(), cb.value.to_bits());

        // The batch path is live, never does more memo/EMD evaluations
        // than the per-pair walk, and only it counts batches.
        assert!(batched.stats().pairwise_batches > 0);
        assert_eq!(per_pair.stats().pairwise_batches, 0);
        assert!(
            batched.stats().emd_calls + batched.stats().emd_cache_hits
                <= per_pair.stats().emd_calls + per_pair.stats().emd_cache_hits
        );
    }

    #[test]
    fn batch_dedup_collapses_repeated_contents() {
        use crate::emd::{Emd, EmdBackendKind};
        let s = space();
        let mut engine = SplitEngine::new(
            &s,
            FairnessCriterion::default().with_emd(Emd::new(EmdBackendKind::Batched)),
        );
        let parts = Partition::root(&s).split(&s, 0);
        // Four partitions but only two distinct contents: C(4,2) = 6 leaf
        // pairs collapse to a single distinct-pair resolution.
        let doubled: Vec<Partition> =
            parts.iter().chain(parts.iter()).cloned().collect();
        let _ = engine.unfairness(&doubled).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.pairwise_batches, 1);
        assert_eq!(stats.emd_calls + stats.emd_cache_hits, 1, "stats: {stats:?}");
    }

    #[test]
    fn memo_key_is_unordered_for_the_transport_backend() {
        use crate::emd::{Emd, EmdBackendKind};
        let s = space();
        let mut engine = SplitEngine::new(
            &s,
            FairnessCriterion::default().with_emd(Emd::new(EmdBackendKind::Transport)),
        );
        let parts = Partition::root(&s).split(&s, 0);
        let forward = engine.versus(&parts[0], &parts[1..]).unwrap();
        let calls = engine.stats().emd_calls;
        let backward = engine.versus(&parts[1], &parts[..1]).unwrap();
        // The reverse direction is a cache hit sharing the same entry.
        assert_eq!(engine.stats().emd_calls, calls);
        assert!(engine.stats().emd_cache_hits > 0);
        assert_eq!(forward.to_bits(), backward.to_bits());
    }

    #[test]
    fn best_split_skips_constant_and_invalid_attributes() {
        let constant = ProtectedAttribute::from_values("k", &["x", "x", "x"]);
        let s = RankingSpace::new(vec![constant], vec![0.1, 0.5, 0.9]).unwrap();
        let mut engine = SplitEngine::new(&s, FairnessCriterion::default());
        let root = Partition::root(&s);
        let (cand, scored) = engine.best_split(&root, &[0, 7], 1).unwrap();
        assert!(cand.is_none());
        assert_eq!(scored, 0);
    }
}
