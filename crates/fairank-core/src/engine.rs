//! The split-evaluation engine shared by every partitioning search.
//!
//! Evaluating candidate splits dominates the `QUANTIFY` hot path: the naive
//! formulation re-derives `bin_of(score)` for every row of every histogram,
//! materializes a `Vec<u32>` row-set per candidate child just to histogram
//! it, recomputes the winning split that `mostUnfair` already scored, and
//! re-evaluates the same partition-pair EMDs at every recursion level.
//! [`SplitEngine`] removes all four costs while remaining *bit-identical*
//! to the naive evaluation order (asserted by the `engine_equivalence`
//! property suite):
//!
//! 1. **Binned-score cache** — [`RankingSpace::bin_codes`] is computed once
//!    per run, so building a histogram over a row subset is pure counting.
//! 2. **One-pass counting splits** — [`SplitEngine::best_split`] scores
//!    every candidate attribute of a node with a single scan over the
//!    node's rows, accumulating `counts[value][bin]` directly; candidate
//!    children get histograms without child row vectors ever materializing
//!    (rows materialize only for the winning attribute, and only once the
//!    split is accepted).
//! 3. **Winner cache** — the winning attribute and interned handles to its
//!    child histograms are handed back in a [`CandidateSplit`]; the
//!    histograms live on in the engine's arenas and their pairwise
//!    distances in the memo, so the recursion's follow-up evaluations
//!    reuse what `mostUnfair` already built.
//! 4. **EMD memo table** — histogram cache entries are keyed by partition
//!    *path* (the conjunction of attribute constraints uniquely identifies
//!    a partition's rows within one space) and each distinct histogram
//!    *content* is interned to a small id; distances are memoized by id
//!    pair. Content keying subsumes path identity — a node's histogram,
//!    hence its distance to any fixed sibling, is identical across
//!    recursion levels — and additionally collapses the huge pairwise
//!    matrices over fine partitionings, whose small partitions repeat the
//!    same few score distributions constantly.
//!
//! The core is *data-oriented*: every cache is a flat, preallocated arena
//! indexed by dense `u32` ids rather than a pointer-heavy map of owned
//! keys.
//!
//! * Partition paths live in a [`PathTrie`] — parallel `Vec`s of nodes and
//!   intrusive edge lists — so a path lookup is a walk over packed
//!   `(attr, code)` words instead of hashing (and, on insert, cloning) a
//!   `Vec<PathStep>` key.
//! * Histogram contents live in a [`ContentTable`]: one flat `counts` row
//!   per content id (stride = bins) plus a lazily-filled, equally flat
//!   normalized-mass arena. No per-id `Histogram` or boxed mass vector is
//!   allocated on the hot path; `Histogram` values materialize only for
//!   the transport backend and the public [`SplitEngine::histogram`].
//! * The EMD memo packs the unordered content-id pair into one `u64` key
//!   over an open-addressed, linear-probing [`FlatMemo`] (Fibonacci
//!   hashing) — the single hottest table of a search, probed once per
//!   partition pair per recursion level.
//! * All transient buffers (distance vectors, batch dedup tables, split
//!   counting grids, SoA fold scratch) persist in a [`Scratch`] pool and
//!   are reused across calls, so steady-state evaluation does not allocate.
//!
//! The engine mirrors [`FairnessCriterion`]'s aggregation orders exactly
//! (pairwise `(0,1), (0,2), …` and children-outer cross products), so
//! floating-point accumulation is unchanged and search results do not move
//! by a single bit.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::cancel::{BudgetChecker, CancelReason, RunBudget};
use crate::emd::EmdBackendKind;
use crate::error::{CoreError, Result};
use crate::fairness::FairnessCriterion;
use crate::fault;
use crate::histogram::{Histogram, HistogramSpec};
use crate::partition::{Partition, PathStep};
use crate::quantify::SearchStats;
use crate::space::RankingSpace;

/// Multiply-rotate hasher for the engine's internal maps. The keys are
/// small, trusted, and hashed millions of times per search, where SipHash's
/// DoS resistance costs more than the EMD it saves; this is the FxHash
/// folding scheme over 8-byte chunks.
#[derive(Default)]
struct EngineHasher(u64);

impl EngineHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for EngineHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.fold(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }
}

type EngineMap<K, V> = HashMap<K, V, BuildHasherDefault<EngineHasher>>;

// ---- small-input bypass ---------------------------------------------------
//
// On small spaces even the flat tables' per-lookup overhead (hashing a
// counts row, probing the open-addressed memo) exceeds the arithmetic it
// saves — the ROADMAP's "slightly slower than naive on ≤1k rows" soft
// spot. Small runs produce only a handful of distinct contents, so the
// engine swaps the content index for a linear scan and the memo for a
// dense id×id matrix. Caching behavior (hence stats and results) is
// bit-for-bit the same; only the container changes.

/// Row-count ceiling for the compact (bypass) caches.
const SMALL_SPACE_ROWS: usize = 1024;
/// Attribute-count ceiling for the compact caches (more attributes mean
/// more distinct paths, where linear scans stop paying off).
const SMALL_SPACE_ATTRS: usize = 4;
/// Total-cardinality ceiling (sum over attributes of distinct values).
/// Cache entry counts — and the dense matrix's stride — grow with the
/// number of distinct partitions, which is driven by cardinality, not by
/// attribute count; a 2-attribute space with a 1000-value column would
/// turn the linear scans quadratic and the matrix huge.
const SMALL_SPACE_CARDINALITY: usize = 64;

/// "No entry" marker for the trie's `u32` indices.
const NONE32: u32 = u32::MAX;

/// Packs one path constraint into a single trie-edge word.
#[inline]
fn pack_step(attr: usize, code: u32) -> u64 {
    ((attr as u64) << 32) | code as u64
}

/// Path → content-id cache as a trie over packed `(attr, code)` edges,
/// stored as parallel arrays: per node a head into an intrusive edge list
/// and the interned content id (or [`NONE32`]); per edge the packed step,
/// the child node, and the next edge of the same parent. Node 0 is the
/// root (the empty path). Lookups walk words instead of hashing a
/// `Vec<PathStep>`, and inserting a child never clones the parent path.
#[derive(Debug)]
struct PathTrie {
    first_edge: Vec<u32>,
    content: Vec<u32>,
    edge_step: Vec<u64>,
    edge_child: Vec<u32>,
    edge_next: Vec<u32>,
}

impl PathTrie {
    fn new() -> Self {
        PathTrie {
            first_edge: vec![NONE32],
            content: vec![NONE32],
            edge_step: Vec::new(),
            edge_child: Vec::new(),
            edge_next: Vec::new(),
        }
    }

    /// The node for `path`, creating any missing suffix.
    fn node_of(&mut self, path: &[PathStep]) -> u32 {
        let mut node = 0u32;
        for step in path {
            node = self.child_node(node, pack_step(step.attr, step.code));
        }
        node
    }

    /// The child of `node` along `step`, created on first use.
    fn child_node(&mut self, node: u32, step: u64) -> u32 {
        let mut e = self.first_edge[node as usize];
        while e != NONE32 {
            let ei = e as usize;
            if self.edge_step[ei] == step {
                return self.edge_child[ei];
            }
            e = self.edge_next[ei];
        }
        let child = self.first_edge.len() as u32;
        self.first_edge.push(NONE32);
        self.content.push(NONE32);
        let edge = self.edge_step.len() as u32;
        self.edge_step.push(step);
        self.edge_child.push(child);
        self.edge_next.push(self.first_edge[node as usize]);
        self.first_edge[node as usize] = edge;
        child
    }

    #[inline]
    fn content(&self, node: u32) -> Option<u32> {
        let id = self.content[node as usize];
        (id != NONE32).then_some(id)
    }

    #[inline]
    fn set_content(&mut self, node: u32, id: u32) {
        self.content[node as usize] = id;
    }
}

/// How the [`ContentTable`] finds an existing id for a counts row.
#[derive(Debug)]
enum ContentIndex {
    /// FxHash of the row → candidate ids (collisions resolved by comparing
    /// the actual rows in the arena).
    Hashed(EngineMap<u64, Vec<u32>>),
    /// Linear scan over all rows — faster when only a handful of distinct
    /// contents exist.
    Compact,
}

/// The interned-histogram arena: one flat `counts` row per content id
/// (stride = bins), a parallel total, and a lazily-filled flat
/// normalized-mass arena — the hoisted per-histogram work of the batched
/// and kernel backends. `Histogram` values are materialized only on demand
/// (transport backend, public histogram lookups); the hot path works on
/// the raw rows.
#[derive(Debug)]
struct ContentTable {
    spec: HistogramSpec,
    bins: usize,
    /// `counts[id * bins .. (id + 1) * bins]` is content `id`'s row.
    counts: Vec<u64>,
    /// Total count per content id.
    totals: Vec<u64>,
    /// `masses[id * bins ..]`, valid once `mass_ready[id]`.
    masses: Vec<f64>,
    mass_ready: Vec<bool>,
    /// Lazily materialized canonical `Histogram` per id.
    hists: Vec<Option<Histogram>>,
    index: ContentIndex,
}

impl ContentTable {
    fn new(spec: HistogramSpec, index: ContentIndex) -> Self {
        ContentTable {
            bins: spec.bins(),
            spec,
            counts: Vec::new(),
            totals: Vec::new(),
            masses: Vec::new(),
            mass_ready: Vec::new(),
            hists: Vec::new(),
            index,
        }
    }

    fn hash_row(row: &[u64]) -> u64 {
        let mut h = EngineHasher::default();
        for &w in row {
            h.write_u64(w);
        }
        h.finish()
    }

    fn row(&self, id: u32) -> &[u64] {
        let base = id as usize * self.bins;
        &self.counts[base..base + self.bins]
    }

    fn find(&self, row: &[u64]) -> Option<u32> {
        match &self.index {
            ContentIndex::Compact => (0..self.totals.len() as u32).find(|&id| self.row(id) == row),
            ContentIndex::Hashed(map) => map
                .get(&Self::hash_row(row))?
                .iter()
                .copied()
                .find(|&id| self.row(id) == row),
        }
    }

    /// Interns a counts row, returning a dense id such that equal rows
    /// always map to the same id. Hits allocate nothing; a miss appends
    /// one row to each arena.
    fn intern(&mut self, row: &[u64]) -> u32 {
        debug_assert_eq!(row.len(), self.bins, "one slot per bin");
        if let Some(id) = self.find(row) {
            return id;
        }
        let id = self.totals.len() as u32;
        self.counts.extend_from_slice(row);
        self.totals.push(row.iter().sum());
        self.masses.resize(self.masses.len() + self.bins, 0.0);
        self.mass_ready.push(false);
        self.hists.push(None);
        if let ContentIndex::Hashed(map) = &mut self.index {
            let h = Self::hash_row(row);
            map.entry(h).or_default().push(id);
        }
        id
    }

    #[inline]
    fn is_empty(&self, id: u32) -> bool {
        self.totals[id as usize] == 0
    }

    /// Fills the id's normalized-mass row on first use (bit-identical to
    /// [`Histogram::mass`]: `count / total` per bin).
    fn ensure_mass(&mut self, id: u32) {
        let i = id as usize;
        if self.mass_ready[i] {
            return;
        }
        let total = self.totals[i];
        let base = i * self.bins;
        if total != 0 {
            let t = total as f64;
            for bin in 0..self.bins {
                self.masses[base + bin] = self.counts[base + bin] as f64 / t;
            }
        }
        self.mass_ready[i] = true;
    }

    #[inline]
    fn mass(&self, id: u32) -> &[f64] {
        debug_assert!(self.mass_ready[id as usize], "ensure_mass first");
        let base = id as usize * self.bins;
        &self.masses[base..base + self.bins]
    }

    /// Materializes the id's canonical `Histogram` on first use.
    fn ensure_hist(&mut self, id: u32) {
        let i = id as usize;
        if self.hists[i].is_none() {
            let row = self.counts[i * self.bins..(i + 1) * self.bins].to_vec();
            self.hists[i] = Some(Histogram::from_counts(self.spec, row));
        }
    }

    #[inline]
    fn hist(&self, id: u32) -> &Histogram {
        self.hists[id as usize].as_ref().expect("ensure_hist first")
    }

    /// An owned `Histogram` of the id's content.
    fn hist_owned(&self, id: u32) -> Histogram {
        Histogram::from_counts(self.spec, self.row(id).to_vec())
    }
}

/// Open-addressed, linear-probing memo from a packed unordered id pair to
/// a distance. Fibonacci hashing over a power-of-two table, grown at 50%
/// load — the hottest table of a search, where even an FxHash `HashMap`'s
/// control-byte probing and tuple hashing are measurable.
#[derive(Debug)]
struct FlatMemo {
    /// Slot keys; [`u64::MAX`] marks an empty slot (never a real key:
    /// content ids stay far below `u32::MAX`).
    keys: Vec<u64>,
    vals: Vec<f64>,
    len: usize,
}

impl FlatMemo {
    const EMPTY: u64 = u64::MAX;

    fn new() -> Self {
        FlatMemo {
            keys: vec![Self::EMPTY; 64],
            vals: vec![0.0; 64],
            len: 0,
        }
    }

    #[inline]
    fn start(&self, key: u64) -> usize {
        // Fibonacci hashing: multiply by 2^64/φ, keep the top log2(cap) bits.
        let shift = 64 - self.keys.len().trailing_zeros();
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> shift) as usize
    }

    fn get(&self, key: u64) -> Option<f64> {
        let mask = self.keys.len() - 1;
        let mut i = self.start(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.vals[i]);
            }
            if k == Self::EMPTY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    fn insert(&mut self, key: u64, val: f64) {
        debug_assert_ne!(key, Self::EMPTY, "key reserved for empty slots");
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = self.start(key);
        loop {
            let k = self.keys[i];
            if k == Self::EMPTY {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return;
            }
            if k == key {
                self.vals[i] = val;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![Self::EMPTY; cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0.0; cap]);
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != Self::EMPTY {
                self.insert(k, v);
            }
        }
    }
}

/// EMD memo keyed by the (canonical) pair of content ids. The compact form
/// is a dense stride×stride matrix: content ids are small and dense, so a
/// direct index beats any probing on the memo's very hot lookup path. The
/// general form is the open-addressed [`FlatMemo`]. Empty dense cells hold
/// NaN — a value no (validated) distance ever takes.
#[derive(Debug)]
enum EmdMemo {
    Flat(FlatMemo),
    Dense { stride: usize, cells: Vec<f64> },
}

impl EmdMemo {
    #[inline]
    fn pack(a: u32, b: u32) -> u64 {
        ((a as u64) << 32) | b as u64
    }

    fn get(&self, a: u32, b: u32) -> Option<f64> {
        match self {
            EmdMemo::Flat(memo) => memo.get(Self::pack(a, b)),
            EmdMemo::Dense { stride, cells } => {
                let (a, b) = (a as usize, b as usize);
                if a < *stride && b < *stride {
                    let v = cells[a * stride + b];
                    (!v.is_nan()).then_some(v)
                } else {
                    None
                }
            }
        }
    }

    fn insert(&mut self, a: u32, b: u32, d: f64) {
        match self {
            EmdMemo::Flat(memo) => memo.insert(Self::pack(a, b), d),
            EmdMemo::Dense { stride, cells } => {
                let needed = (a.max(b) as usize) + 1;
                if needed > *stride {
                    let new_stride = needed.next_power_of_two().max(8);
                    let mut grown = vec![f64::NAN; new_stride * new_stride];
                    for row in 0..*stride {
                        for col in 0..*stride {
                            grown[row * new_stride + col] = cells[row * *stride + col];
                        }
                    }
                    *cells = grown;
                    *stride = new_stride;
                }
                cells[(a as usize) * *stride + (b as usize)] = d;
            }
        }
    }
}

/// Canonical (unordered) orientation of a content-id pair.
#[inline]
fn canon(a: u32, b: u32) -> (u32, u32) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Reusable buffers for the engine's transient per-call state. Taken with
/// `mem::take` for the duration of a call and put back afterwards, so
/// nested calls use disjoint fields and steady-state evaluation never
/// allocates.
#[derive(Debug, Default)]
struct Scratch {
    /// Distance vectors handed to the aggregator.
    dists: Vec<f64>,
    /// Content-id lists of the partitions under evaluation.
    ids: Vec<u32>,
    /// Distinct content ids of one batch.
    distinct: Vec<u32>,
    /// content id → slot in `distinct` ([`NONE32`] = unseen), reset after
    /// every batch by walking `distinct`, so dedup is O(L + D) instead of
    /// a per-id linear scan.
    slot_lookup: Vec<u32>,
    /// Slot (index into `distinct`) per batch element.
    slots: Vec<u32>,
    /// Second slot list for cross batches.
    slots2: Vec<u32>,
    /// Dense distinct×distinct distance table of one batch.
    table: Vec<f64>,
    /// Which cross-batch table cells have been encountered.
    have: Vec<bool>,
    /// Distinct slot pairs not served by the memo.
    missing: Vec<(u32, u32)>,
    /// Bin-major SoA mass matrix for the kernel fold.
    soa: Vec<f64>,
    /// Kernel fold accumulators.
    cum: Vec<f64>,
    total: Vec<f64>,
    folded: Vec<f64>,
    /// `counts[value * bins + bin]` grid of `best_split`'s one-pass scan.
    counts: Vec<u64>,
    /// Rows per value code in `best_split`.
    sizes: Vec<u32>,
}

/// Work counters the engine maintains, surfaced through `SearchStats` and
/// the beam/exhaustive outcomes so perf regressions are assertable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Histograms actually constructed (cache misses included, cache hits
    /// not).
    pub histograms_built: usize,
    /// EMD distances actually computed (memo misses).
    pub emd_calls: usize,
    /// Distance lookups served from the memo table.
    pub emd_cache_hits: usize,
    /// Pairwise/cross aggregations resolved as one batch by the batched or
    /// kernel backend (each batch touches the memo once per *distinct*
    /// histogram pair instead of once per leaf pair).
    pub pairwise_batches: usize,
}

/// The winning candidate split of a node: the attribute, its `mostUnfair`
/// score, and interned handles to the children's histograms (in ascending
/// value-code order, the same order [`Partition::split`] produces). The
/// handles are how the winner cache works: the children's histograms live
/// in the engine's arena and their pairwise distances in the memo, so the
/// recursion's follow-up evaluations reuse both instead of recomputing.
#[derive(Debug, Clone)]
pub struct CandidateSplit {
    /// The winning attribute index.
    pub attr: usize,
    /// Aggregated pairwise distance among the children (the `mostUnfair`
    /// score of this split).
    pub value: f64,
    /// Interned content id of each child histogram (engine-internal memo
    /// handles).
    pub(crate) child_ids: Vec<u32>,
}

/// Shared evaluation context for one search run over one ranking space.
#[derive(Debug)]
pub struct SplitEngine<'a> {
    space: &'a RankingSpace,
    criterion: FairnessCriterion,
    /// `bin_codes[row]` = histogram bin of the row's score.
    bin_codes: Vec<u32>,
    /// Histogram cache: partition path → interned content id.
    paths: PathTrie,
    /// Interned histogram contents: flat counts/mass arenas plus the
    /// content → id index.
    contents: ContentTable,
    /// EMD memo keyed by the unordered (canonical) pair of content ids.
    emd_memo: EmdMemo,
    stats: EngineStats,
    scratch: Scratch,
    /// Strided cooperative-cancellation poll; unlimited by default, so one
    /// predictable branch per distance evaluation on the hot path.
    checker: BudgetChecker,
}

impl<'a> SplitEngine<'a> {
    /// An engine for one run of a search under `criterion` on `space`.
    /// Small spaces (≤ [`SMALL_SPACE_ROWS`] rows, ≤ [`SMALL_SPACE_ATTRS`]
    /// attributes, ≤ [`SMALL_SPACE_CARDINALITY`] total distinct values)
    /// get the compact caches — identical semantics, no hashing overhead.
    pub fn new(space: &'a RankingSpace, criterion: FairnessCriterion) -> Self {
        let total_cardinality: usize = space
            .attributes()
            .iter()
            .map(|a| a.cardinality())
            .sum();
        let compact = space.num_individuals() <= SMALL_SPACE_ROWS
            && space.attributes().len() <= SMALL_SPACE_ATTRS
            && total_cardinality <= SMALL_SPACE_CARDINALITY;
        Self::new_with_layout(space, criterion, compact)
    }

    /// An engine with the cache layout chosen explicitly (`new` picks it
    /// from the space's size; tests force both to pin their equivalence).
    fn new_with_layout(space: &'a RankingSpace, criterion: FairnessCriterion, compact: bool) -> Self {
        let (index, emd_memo) = if compact {
            (
                ContentIndex::Compact,
                EmdMemo::Dense {
                    stride: 0,
                    cells: Vec::new(),
                },
            )
        } else {
            (
                ContentIndex::Hashed(EngineMap::default()),
                EmdMemo::Flat(FlatMemo::new()),
            )
        };
        SplitEngine {
            bin_codes: space.bin_codes(&criterion.hist),
            space,
            contents: ContentTable::new(criterion.hist, index),
            criterion,
            paths: PathTrie::new(),
            emd_memo,
            stats: EngineStats::default(),
            scratch: Scratch::default(),
            checker: RunBudget::unlimited().checker(),
        }
    }

    /// Attaches a cooperative cancellation budget: distance evaluations
    /// tick a strided [`BudgetChecker`], and searches poll
    /// [`Self::check_budget`] at node boundaries. A fired budget surfaces
    /// as [`CoreError::Cancelled`] carrying the engine's counters so far.
    pub fn set_run_budget(&mut self, budget: &RunBudget) {
        self.checker = budget.checker();
    }

    /// The engine's counters shaped as partial [`SearchStats`] (the
    /// search-level fields are filled in by whichever search is running).
    fn partial_stats(&self) -> SearchStats {
        SearchStats {
            histograms_built: self.stats.histograms_built,
            emd_calls: self.stats.emd_calls,
            emd_cache_hits: self.stats.emd_cache_hits,
            pairwise_batches: self.stats.pairwise_batches,
            ..SearchStats::default()
        }
    }

    fn cancelled(&self, reason: CancelReason) -> CoreError {
        CoreError::Cancelled {
            reason,
            stats: self.partial_stats(),
        }
    }

    /// Polls the budget immediately (search loops call this per node/state).
    pub fn check_budget(&self) -> Result<()> {
        self.checker
            .check_now()
            .map_err(|reason| self.cancelled(reason))
    }

    #[inline]
    fn tick(&mut self) -> Result<()> {
        match self.checker.tick() {
            Ok(()) => Ok(()),
            Err(reason) => Err(self.cancelled(reason)),
        }
    }

    #[inline]
    fn tick_n(&mut self, n: usize) -> Result<()> {
        match self.checker.tick_n(n) {
            Ok(()) => Ok(()),
            Err(reason) => Err(self.cancelled(reason)),
        }
    }

    /// Whether this engine runs on the compact small-input caches.
    pub fn uses_compact_caches(&self) -> bool {
        matches!(self.emd_memo, EmdMemo::Dense { .. })
    }

    /// The space this engine evaluates over.
    pub fn space(&self) -> &'a RankingSpace {
        self.space
    }

    /// The criterion this engine evaluates under.
    pub fn criterion(&self) -> &FairnessCriterion {
        &self.criterion
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The partition's histogram content id, built through the binned-score
    /// cache on a trie miss. Hits walk the trie and allocate nothing.
    fn hist_id(&mut self, partition: &Partition) -> u32 {
        let node = self.paths.node_of(&partition.path);
        if let Some(id) = self.paths.content(node) {
            return id;
        }
        let bins = self.contents.bins;
        let mut counts = std::mem::take(&mut self.scratch.counts);
        counts.clear();
        counts.resize(bins, 0);
        for &row in &partition.rows {
            counts[self.bin_codes[row as usize] as usize] += 1;
        }
        self.stats.histograms_built += 1;
        let id = self.contents.intern(&counts);
        self.scratch.counts = counts;
        self.paths.set_content(node, id);
        id
    }

    /// The partition's score histogram (materialized from the arena row).
    pub fn histogram(&mut self, partition: &Partition) -> Histogram {
        let id = self.hist_id(partition);
        self.contents.hist_owned(id)
    }

    /// A memo miss resolved for the per-pair backends: the 1-D closed form
    /// folds directly from the hoisted mass arena (bit-identical to
    /// [`crate::emd::Emd::distance`]; conventions and the fold are the
    /// backend layer's single source), the transport solver gets lazily
    /// materialized canonical `Histogram`s.
    fn compute_pair(&mut self, lo: u32, hi: u32) -> Result<f64> {
        // The cancellation tick lives on this miss path, not in
        // `distance` itself: memo hits are pure lookups (millions per
        // search, nanoseconds each), so ticking them bought no latency
        // bound worth measuring yet cost ~8% on the hot profile. Every
        // 256 *computed* distances — the operations that actually burn
        // time — poll the budget.
        self.tick()?;
        fault::panic_point(fault::EMD_PANIC);
        if self.criterion.emd.backend() == EmdBackendKind::Transport {
            let emd = self.criterion.emd;
            self.contents.ensure_hist(lo);
            self.contents.ensure_hist(hi);
            return emd.distance(self.contents.hist(lo), self.contents.hist(hi));
        }
        self.contents.ensure_mass(lo);
        self.contents.ensure_mass(hi);
        Ok(crate::emd::backend::one_d_from_parts(
            self.contents.is_empty(lo),
            self.contents.is_empty(hi),
            self.contents.mass(lo),
            self.contents.mass(hi),
            &self.criterion.hist,
        ))
    }

    /// Memoized EMD between two content-identified histograms. The distance
    /// is a pure function of the two count vectors (and the shared spec),
    /// so equal content ids always reproduce the exact bits of a fresh
    /// computation. Every backend is bitwise symmetric (the 1-D closed
    /// form because CDF differences negate exactly, the transport solver
    /// because it canonicalizes its input order), so the memo keys on the
    /// unordered pair and one computation serves both directions.
    fn distance(&mut self, id_a: u32, id_b: u32) -> Result<f64> {
        let (lo, hi) = canon(id_a, id_b);
        if let Some(d) = self.emd_memo.get(lo, hi) {
            self.stats.emd_cache_hits += 1;
            return Ok(d);
        }
        self.stats.emd_calls += 1;
        let d = self.compute_pair(lo, hi)?;
        self.emd_memo.insert(lo, hi, d);
        Ok(d)
    }

    /// Appends `id` to the distinct-id list if unseen, returning its slot.
    /// `lookup` is the dense content-id → slot table; callers reset the
    /// touched entries (one per distinct id) when the batch ends.
    fn slot_of(lookup: &mut Vec<u32>, distinct: &mut Vec<u32>, id: u32) -> u32 {
        let i = id as usize;
        if i >= lookup.len() {
            lookup.resize(i + 1, NONE32);
        }
        let slot = lookup[i];
        if slot != NONE32 {
            return slot;
        }
        let slot = distinct.len() as u32;
        distinct.push(id);
        lookup[i] = slot;
        slot
    }

    /// Clears the slot-lookup entries a batch touched.
    fn reset_slots(lookup: &mut [u32], distinct: &[u32]) {
        for &id in distinct {
            lookup[id as usize] = NONE32;
        }
    }

    /// Computes every distinct slot pair of a batch the memo could not
    /// serve, inserting each distance into the memo and mirroring it into
    /// the batch's slot table. The batched backend folds pair by pair from
    /// the hoisted mass arena; the kernel backend gathers the distinct
    /// masses into one bin-major SoA matrix and folds **all** missing
    /// pairs together, one bin level at a time. Both execute the reference
    /// per-pair operation sequence, so the memoized bits are identical.
    fn compute_missing(&mut self, distinct: &[u32], missing: &[(u32, u32)], table: &mut [f64]) {
        if missing.is_empty() {
            return;
        }
        fault::panic_point(fault::EMD_PANIC);
        self.stats.emd_calls += missing.len();
        let d = distinct.len();
        let spec = self.criterion.hist;
        if self.criterion.emd.backend() == EmdBackendKind::Kernel {
            for &id in distinct {
                self.contents.ensure_mass(id);
            }
            let bins = self.contents.bins;
            let mut soa = std::mem::take(&mut self.scratch.soa);
            soa.clear();
            soa.resize(bins * d, 0.0);
            for (slot, &id) in distinct.iter().enumerate() {
                for (bin, &m) in self.contents.mass(id).iter().enumerate() {
                    soa[bin * d + slot] = m;
                }
            }
            let mut cum = std::mem::take(&mut self.scratch.cum);
            let mut total = std::mem::take(&mut self.scratch.total);
            let mut folded = std::mem::take(&mut self.scratch.folded);
            folded.clear();
            crate::emd::kernel::fold_pairs(
                &soa,
                d,
                bins,
                missing,
                spec.bin_width(),
                &mut cum,
                &mut total,
                &mut folded,
            );
            for (p, &(i, j)) in missing.iter().enumerate() {
                let (a, b) = (distinct[i as usize], distinct[j as usize]);
                let mut v = folded[p];
                if let Some(c) = crate::emd::backend::convention(
                    self.contents.is_empty(a),
                    self.contents.is_empty(b),
                    &spec,
                ) {
                    v = c;
                }
                let (lo, hi) = canon(a, b);
                self.emd_memo.insert(lo, hi, v);
                table[i as usize * d + j as usize] = v;
                table[j as usize * d + i as usize] = v;
            }
            self.scratch.soa = soa;
            self.scratch.cum = cum;
            self.scratch.total = total;
            self.scratch.folded = folded;
        } else {
            for &(i, j) in missing {
                let (a, b) = (distinct[i as usize], distinct[j as usize]);
                self.contents.ensure_mass(a);
                self.contents.ensure_mass(b);
                let v = crate::emd::backend::one_d_from_parts(
                    self.contents.is_empty(a),
                    self.contents.is_empty(b),
                    self.contents.mass(a),
                    self.contents.mass(b),
                    &spec,
                );
                let (lo, hi) = canon(a, b);
                self.emd_memo.insert(lo, hi, v);
                table[i as usize * d + j as usize] = v;
                table[j as usize * d + i as usize] = v;
            }
        }
    }

    /// The batching backends' pairwise aggregation: resolve each *distinct*
    /// content pair once (through the memo), then aggregate the full
    /// `C(L, 2)` sequence in the reference lexicographic order, streamed
    /// straight out of the distinct×distinct table — the expanded vector
    /// (millions of entries over fine partitionings) is never stored. Fine
    /// partitionings repeat the same few score distributions constantly,
    /// so this replaces the per-pair memo walk with `C(D, 2)` resolutions
    /// for `D` distinct contents plus a streamed expansion.
    fn batch_pairwise_value(&mut self, ids: &[u32]) -> f64 {
        self.stats.pairwise_batches += 1;
        let n = ids.len();
        if n < 2 {
            return self.criterion.aggregator.apply(&[]);
        }
        let mut distinct = std::mem::take(&mut self.scratch.distinct);
        distinct.clear();
        let mut lookup = std::mem::take(&mut self.scratch.slot_lookup);
        let mut slots = std::mem::take(&mut self.scratch.slots);
        slots.clear();
        for &id in ids {
            slots.push(Self::slot_of(&mut lookup, &mut distinct, id));
        }
        Self::reset_slots(&mut lookup, &distinct);
        let d = distinct.len();
        // The diagonal stays 0.0 — exactly what a self-pair computes (the
        // mass differences are exact zeros, so the fold yields +0.0).
        let mut table = std::mem::take(&mut self.scratch.table);
        table.clear();
        table.resize(d * d, 0.0);
        let mut missing = std::mem::take(&mut self.scratch.missing);
        missing.clear();
        for i in 0..d {
            for j in (i + 1)..d {
                let (lo, hi) = canon(distinct[i], distinct[j]);
                if let Some(v) = self.emd_memo.get(lo, hi) {
                    self.stats.emd_cache_hits += 1;
                    table[i * d + j] = v;
                    table[j * d + i] = v;
                } else {
                    missing.push((i as u32, j as u32));
                }
            }
        }
        self.compute_missing(&distinct, &missing, &mut table);
        let value = self.criterion.aggregator.apply_iter(|| {
            (0..n).flat_map(|i| {
                let row = &table[slots[i] as usize * d..][..d];
                slots[i + 1..].iter().map(move |&sj| row[sj as usize])
            })
        });
        self.scratch.distinct = distinct;
        self.scratch.slot_lookup = lookup;
        self.scratch.slots = slots;
        self.scratch.table = table;
        self.scratch.missing = missing;
        value
    }

    /// The batching backends' cross aggregation (left outer, right inner),
    /// resolving each distinct content pair once and streaming the
    /// expansion into the aggregator.
    fn batch_cross_value(&mut self, left: &[u32], right: &[u32]) -> f64 {
        self.stats.pairwise_batches += 1;
        let mut distinct = std::mem::take(&mut self.scratch.distinct);
        distinct.clear();
        let mut lookup = std::mem::take(&mut self.scratch.slot_lookup);
        let mut lslots = std::mem::take(&mut self.scratch.slots);
        lslots.clear();
        let mut rslots = std::mem::take(&mut self.scratch.slots2);
        rslots.clear();
        for &id in left {
            lslots.push(Self::slot_of(&mut lookup, &mut distinct, id));
        }
        for &id in right {
            rslots.push(Self::slot_of(&mut lookup, &mut distinct, id));
        }
        Self::reset_slots(&mut lookup, &distinct);
        let d = distinct.len();
        let mut table = std::mem::take(&mut self.scratch.table);
        table.clear();
        table.resize(d * d, 0.0);
        let mut have = std::mem::take(&mut self.scratch.have);
        have.clear();
        have.resize(d * d, false);
        let mut missing = std::mem::take(&mut self.scratch.missing);
        missing.clear();
        for &ls in &lslots {
            for &rs in &rslots {
                if ls == rs {
                    continue; // self-pair: exact zero, same as a fresh fold
                }
                let (a, b) = if ls <= rs { (ls, rs) } else { (rs, ls) };
                let idx = a as usize * d + b as usize;
                if have[idx] {
                    continue;
                }
                have[idx] = true;
                let (lo, hi) = canon(distinct[a as usize], distinct[b as usize]);
                if let Some(v) = self.emd_memo.get(lo, hi) {
                    self.stats.emd_cache_hits += 1;
                    table[idx] = v;
                    table[b as usize * d + a as usize] = v;
                } else {
                    missing.push((a, b));
                }
            }
        }
        self.compute_missing(&distinct, &missing, &mut table);
        let value = self.criterion.aggregator.apply_iter(|| {
            lslots.iter().flat_map(|&ls| {
                let row = &table[ls as usize * d..][..d];
                rslots
                    .iter()
                    .map(move |&rs| if ls == rs { 0.0 } else { row[rs as usize] })
            })
        });
        self.scratch.distinct = distinct;
        self.scratch.slot_lookup = lookup;
        self.scratch.slots = lslots;
        self.scratch.slots2 = rslots;
        self.scratch.table = table;
        self.scratch.have = have;
        self.scratch.missing = missing;
        value
    }

    /// Whether the criterion's backend resolves aggregations batch-wise.
    fn batching(&self) -> bool {
        matches!(
            self.criterion.emd.backend(),
            EmdBackendKind::Batched | EmdBackendKind::Kernel
        )
    }

    /// All pairwise distances over content ids in `(0,1), (0,2), …` order,
    /// through per-pair memo lookups (the `1d`/`transport` backends; the
    /// batching backends aggregate without materializing, via
    /// [`Self::batch_pairwise_value`]).
    fn pairwise_dists_into(&mut self, ids: &[u32], out: &mut Vec<f64>) -> Result<()> {
        let n = ids.len();
        out.reserve(n.saturating_sub(1) * n / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = self.distance(ids[i], ids[j])?;
                out.push(d);
            }
        }
        Ok(())
    }

    /// All cross distances (left outer, right inner) over content ids,
    /// through per-pair memo lookups.
    fn cross_dists_into(&mut self, left: &[u32], right: &[u32], out: &mut Vec<f64>) -> Result<()> {
        out.reserve(left.len() * right.len());
        for &a in left {
            for &b in right {
                let d = self.distance(a, b)?;
                out.push(d);
            }
        }
        Ok(())
    }

    /// Aggregated pairwise distance over content-identified histograms, in
    /// the same `(0,1), (0,2), …` order as `pairwise_distances`.
    fn pairwise_value(&mut self, ids: &[u32]) -> Result<f64> {
        if self.batching() {
            let n = ids.len();
            self.tick_n(n.saturating_sub(1) * n / 2)?;
            return Ok(self.batch_pairwise_value(ids));
        }
        let mut dists = std::mem::take(&mut self.scratch.dists);
        dists.clear();
        let result = self
            .pairwise_dists_into(ids, &mut dists)
            .map(|()| self.criterion.aggregator.apply(&dists));
        self.scratch.dists = dists;
        result
    }

    /// Aggregated cross distance (left outer, right inner) over content
    /// ids, in the same order as `cross_distances`.
    fn cross_value(&mut self, left: &[u32], right: &[u32]) -> Result<f64> {
        if self.batching() {
            self.tick_n(left.len() * right.len())?;
            return Ok(self.batch_cross_value(left, right));
        }
        let mut dists = std::mem::take(&mut self.scratch.dists);
        dists.clear();
        let result = self
            .cross_dists_into(left, right, &mut dists)
            .map(|()| self.criterion.aggregator.apply(&dists));
        self.scratch.dists = dists;
        result
    }

    /// `unfairness(P, f)` with cached histograms and memoized distances —
    /// the drop-in for [`FairnessCriterion::unfairness`] used by the beam
    /// and exhaustive searches, whose states revisit the same partitions
    /// over and over.
    pub fn unfairness(&mut self, partitions: &[Partition]) -> Result<f64> {
        let mut ids = std::mem::take(&mut self.scratch.ids);
        ids.clear();
        for p in partitions {
            ids.push(self.hist_id(p));
        }
        let result = self.pairwise_value(&ids);
        self.scratch.ids = ids;
        result
    }

    /// Aggregate distance of `partition` vs. each of `others` — the memoized
    /// drop-in for [`FairnessCriterion::versus`] (same distance order).
    pub fn versus(&mut self, partition: &Partition, others: &[Partition]) -> Result<f64> {
        let id = self.hist_id(partition);
        let mut other_ids = std::mem::take(&mut self.scratch.ids);
        other_ids.clear();
        for other in others {
            other_ids.push(self.hist_id(other));
        }
        let result = self.cross_value(&[id], &other_ids);
        self.scratch.ids = other_ids;
        result
    }

    /// Aggregate of all child-vs-sibling distances (Algorithm 1 line 8),
    /// reusing the winner cache's child ids. Distance order matches
    /// `cross_distances` (children outer, siblings inner).
    pub fn children_versus_siblings(
        &mut self,
        candidate: &CandidateSplit,
        siblings: &[Partition],
    ) -> Result<f64> {
        let mut sib_ids = std::mem::take(&mut self.scratch.ids);
        sib_ids.clear();
        for s in siblings {
            sib_ids.push(self.hist_id(s));
        }
        let result = self.cross_value(&candidate.child_ids, &sib_ids);
        self.scratch.ids = sib_ids;
        result
    }

    /// The holistic split test: `unfairness(siblings ∪ {current})` vs.
    /// `unfairness(siblings ∪ children)`, with the children taken from the
    /// winner cache. List orders match the naive construction (siblings
    /// first, then current / children).
    pub fn holistic_values(
        &mut self,
        siblings: &[Partition],
        current: &Partition,
        candidate: &CandidateSplit,
    ) -> Result<(f64, f64)> {
        let mut ids = std::mem::take(&mut self.scratch.ids);
        ids.clear();
        for s in siblings {
            ids.push(self.hist_id(s));
        }
        ids.push(self.hist_id(current));
        let result = match self.pairwise_value(&ids) {
            Ok(before) => {
                ids.truncate(siblings.len());
                ids.extend(candidate.child_ids.iter().copied());
                self.pairwise_value(&ids).map(|after| (before, after))
            }
            Err(e) => Err(e),
        };
        self.scratch.ids = ids;
        result
    }

    /// `mostUnfair(current, f, A)` via one-pass counting splits: each
    /// candidate attribute is scored with a single scan over the node's
    /// rows accumulating `counts[value][bin]` into a reused flat grid, so
    /// no child row vector (or per-attribute table) is ever materialized
    /// here. Attributes producing fewer than two children (or any child
    /// below `min_partition_size`) are not candidates, and ties keep the
    /// earlier attribute — both exactly as the naive evaluation. Returns
    /// the winner (with its histograms and pairwise distances preserved
    /// for the recursion) and the number of candidate splits scored.
    pub fn best_split(
        &mut self,
        current: &Partition,
        avail: &[usize],
        min_partition_size: usize,
    ) -> Result<(Option<CandidateSplit>, usize)> {
        let bins = self.contents.bins;
        let space = self.space;
        let node = self.paths.node_of(&current.path);
        let mut counts = std::mem::take(&mut self.scratch.counts);
        let mut sizes = std::mem::take(&mut self.scratch.sizes);
        let mut best: Option<CandidateSplit> = None;
        let mut scored = 0usize;
        let mut failure = None;
        for &attr in avail {
            let Some(attribute) = space.attribute(attr) else {
                continue;
            };
            let card = attribute.cardinality();
            counts.clear();
            counts.resize(card * bins, 0);
            sizes.clear();
            sizes.resize(card, 0);
            for &row in &current.rows {
                let code = attribute.codes[row as usize] as usize;
                counts[code * bins + self.bin_codes[row as usize] as usize] += 1;
                sizes[code] += 1;
            }
            let present = sizes.iter().filter(|&&s| s > 0).count();
            if present < 2 {
                continue;
            }
            if sizes
                .iter()
                .any(|&s| s > 0 && (s as usize) < min_partition_size)
            {
                continue;
            }
            scored += 1;
            let mut child_ids = Vec::with_capacity(present);
            for (code, &size) in sizes.iter().enumerate() {
                if size == 0 {
                    continue;
                }
                let child = self.paths.child_node(node, pack_step(attr, code as u32));
                let id = match self.paths.content(child) {
                    Some(id) => id,
                    None => {
                        self.stats.histograms_built += 1;
                        let id = self
                            .contents
                            .intern(&counts[code * bins..(code + 1) * bins]);
                        self.paths.set_content(child, id);
                        id
                    }
                };
                child_ids.push(id);
            }
            let value = match self.pairwise_value(&child_ids) {
                Ok(v) => v,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            };
            let better = match &best {
                None => true,
                Some(incumbent) => self.criterion.objective.is_better(value, incumbent.value),
            };
            if better {
                best = Some(CandidateSplit {
                    attr,
                    value,
                    child_ids,
                });
            }
        }
        self.scratch.counts = counts;
        self.scratch.sizes = sizes;
        match failure {
            Some(e) => Err(e),
            None => Ok((best, scored)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fairness::{Aggregator, Objective};
    use crate::space::ProtectedAttribute;

    fn space() -> RankingSpace {
        let gender = ProtectedAttribute::from_values(
            "gender",
            &["F", "M", "F", "M", "F", "M", "F", "M"],
        );
        let noise = ProtectedAttribute::from_values(
            "noise",
            &["x", "x", "y", "y", "x", "y", "x", "y"],
        );
        RankingSpace::new(
            vec![gender, noise],
            vec![0.1, 0.9, 0.2, 0.8, 0.15, 0.85, 0.12, 0.88],
        )
        .unwrap()
    }

    #[test]
    fn engine_histogram_matches_criterion_histogram() {
        let s = space();
        let crit = FairnessCriterion::default();
        let mut engine = SplitEngine::new(&s, crit);
        let root = Partition::root(&s);
        for p in std::iter::once(root.clone()).chain(root.split(&s, 0)) {
            assert_eq!(engine.histogram(&p), crit.histogram(&p, s.scores()));
        }
        // Second lookups are cache hits: no new builds.
        let built = engine.stats().histograms_built;
        let _ = engine.histogram(&root);
        assert_eq!(engine.stats().histograms_built, built);
    }

    #[test]
    fn engine_unfairness_and_versus_match_criterion() {
        let s = space();
        let crit = FairnessCriterion::new(Objective::MostUnfair, Aggregator::Mean);
        let mut engine = SplitEngine::new(&s, crit);
        let parts = Partition::root(&s).split(&s, 0);
        let u_engine = engine.unfairness(&parts).unwrap();
        let u_naive = crit.unfairness(&parts, s.scores()).unwrap();
        assert_eq!(u_engine, u_naive);
        let v_engine = engine.versus(&parts[0], &parts[1..]).unwrap();
        let v_naive = crit.versus(&parts[0], &parts[1..], s.scores()).unwrap();
        assert_eq!(v_engine, v_naive);
    }

    #[test]
    fn repeated_unfairness_hits_the_memo() {
        let s = space();
        let mut engine = SplitEngine::new(&s, FairnessCriterion::default());
        let parts = Partition::root(&s).split(&s, 0);
        let first = engine.unfairness(&parts).unwrap();
        let calls_after_first = engine.stats().emd_calls;
        let second = engine.unfairness(&parts).unwrap();
        assert_eq!(first, second);
        assert_eq!(engine.stats().emd_calls, calls_after_first);
        assert!(engine.stats().emd_cache_hits > 0);
    }

    #[test]
    fn one_d_memo_serves_both_directions() {
        let s = space();
        let mut engine = SplitEngine::new(&s, FairnessCriterion::default());
        let parts = Partition::root(&s).split(&s, 0);
        // Forward direction computes, reverse direction must hit.
        let _ = engine.versus(&parts[0], &parts[1..]).unwrap();
        let calls = engine.stats().emd_calls;
        let _ = engine.versus(&parts[1], &parts[..1]).unwrap();
        assert_eq!(engine.stats().emd_calls, calls);
        assert!(engine.stats().emd_cache_hits > 0);
    }

    #[test]
    fn best_split_matches_naive_most_unfair() {
        let s = space();
        let crit = FairnessCriterion::default();
        let mut engine = SplitEngine::new(&s, crit);
        let root = Partition::root(&s);
        let (cand, scored) = engine.best_split(&root, &[0, 1], 1).unwrap();
        let cand = cand.expect("both attributes split the root");
        assert_eq!(scored, 2);
        // Gender (attribute 0) separates scores; noise does not.
        assert_eq!(cand.attr, 0);
        let children = root.split(&s, 0);
        assert_eq!(cand.child_ids.len(), children.len());
        // The one-pass counting histograms equal the per-child rebuilds —
        // and they were cached during best_split, so no new builds occur.
        let built = engine.stats().histograms_built;
        for child in &children {
            assert_eq!(
                engine.histogram(child),
                crit.histogram(child, s.scores())
            );
        }
        assert_eq!(engine.stats().histograms_built, built);
        assert_eq!(cand.value, crit.unfairness(&children, s.scores()).unwrap());
    }

    #[test]
    fn best_split_honors_min_partition_size() {
        let s = space();
        let mut engine = SplitEngine::new(&s, FairnessCriterion::default());
        let root = Partition::root(&s);
        // Both attributes give 4/4 children; a floor of 5 blocks everything.
        let (cand, scored) = engine.best_split(&root, &[0, 1], 5).unwrap();
        assert!(cand.is_none());
        assert_eq!(scored, 0);
    }

    #[test]
    fn small_spaces_select_the_compact_caches() {
        let s = space(); // 8 rows, 2 attributes
        let engine = SplitEngine::new(&s, FairnessCriterion::default());
        assert!(engine.uses_compact_caches());

        // Too many rows → hashed.
        let n = SMALL_SPACE_ROWS + 1;
        let labels: Vec<String> = (0..n).map(|i| format!("v{}", i % 2)).collect();
        let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let attr = ProtectedAttribute::from_values("g", &refs);
        let scores: Vec<f64> = (0..n).map(|i| (i % 10) as f64 / 10.0).collect();
        let big = RankingSpace::new(vec![attr], scores).unwrap();
        let engine = SplitEngine::new(&big, FairnessCriterion::default());
        assert!(!engine.uses_compact_caches());

        // Too many attributes → hashed even when rows are few.
        let attrs: Vec<ProtectedAttribute> = (0..SMALL_SPACE_ATTRS + 1)
            .map(|a| {
                ProtectedAttribute::from_values(
                    format!("a{a}"),
                    &["x", "y", "x", "y", "x", "y", "x", "y"],
                )
            })
            .collect();
        let wide = RankingSpace::new(
            attrs,
            vec![0.1, 0.9, 0.2, 0.8, 0.15, 0.85, 0.12, 0.88],
        )
        .unwrap();
        let engine = SplitEngine::new(&wide, FairnessCriterion::default());
        assert!(!engine.uses_compact_caches());

        // High total cardinality → hashed even with few rows/attributes:
        // linear scans and the dense matrix scale with distinct values.
        let n = 800;
        let ids: Vec<String> = (0..n).map(|i| format!("id{i}")).collect();
        let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let high_card = ProtectedAttribute::from_values("worker_id", &refs);
        let scores: Vec<f64> = (0..n).map(|i| (i % 7) as f64 / 7.0).collect();
        let carded = RankingSpace::new(vec![high_card], scores).unwrap();
        let engine = SplitEngine::new(&carded, FairnessCriterion::default());
        assert!(!engine.uses_compact_caches());
    }

    #[test]
    fn compact_and_hashed_caches_are_bitwise_equivalent() {
        // The same tiny space forced through both cache families must do
        // the same work and produce the same bits everywhere.
        let s = space();
        let crit = FairnessCriterion::default();
        let mut compact = SplitEngine::new(&s, crit);
        assert!(compact.uses_compact_caches());
        let mut hashed = SplitEngine::new_with_layout(&s, crit, false);
        assert!(!hashed.uses_compact_caches());

        let root = Partition::root(&s);
        let parts = root.split(&s, 0);
        for engine in [&mut compact, &mut hashed] {
            let _ = engine.best_split(&root, &[0, 1], 1).unwrap();
        }
        assert_eq!(
            compact.unfairness(&parts).unwrap(),
            hashed.unfairness(&parts).unwrap()
        );
        assert_eq!(
            compact.versus(&parts[0], &parts[1..]).unwrap(),
            hashed.versus(&parts[0], &parts[1..]).unwrap()
        );
        assert_eq!(compact.stats(), hashed.stats());
        assert!(compact.stats().emd_cache_hits > 0);
    }

    #[test]
    fn dense_memo_grows_and_keeps_entries() {
        let mut memo = EmdMemo::Dense {
            stride: 0,
            cells: Vec::new(),
        };
        assert_eq!(memo.get(0, 0), None);
        memo.insert(0, 1, 0.5);
        assert_eq!(memo.get(0, 1), Some(0.5));
        assert_eq!(memo.get(1, 0), None);
        // Growth past the stride keeps earlier cells.
        memo.insert(40, 3, 0.25);
        assert_eq!(memo.get(0, 1), Some(0.5));
        assert_eq!(memo.get(40, 3), Some(0.25));
        assert_eq!(memo.get(3, 40), None);
    }

    #[test]
    fn flat_memo_grows_and_keeps_entries() {
        let mut memo = FlatMemo::new();
        // Push well past the initial 64-slot capacity (50% load → several
        // doublings) and verify nothing is lost or corrupted.
        for a in 0..40u32 {
            for b in a..40u32 {
                memo.insert(EmdMemo::pack(a, b), (a * 100 + b) as f64);
            }
        }
        for a in 0..40u32 {
            for b in a..40u32 {
                assert_eq!(
                    memo.get(EmdMemo::pack(a, b)),
                    Some((a * 100 + b) as f64),
                    "({a},{b})"
                );
            }
        }
        assert_eq!(memo.get(EmdMemo::pack(41, 41)), None);
        // Overwrites update in place, not duplicate.
        let len = memo.len;
        memo.insert(EmdMemo::pack(0, 0), 9.0);
        assert_eq!(memo.get(EmdMemo::pack(0, 0)), Some(9.0));
        assert_eq!(memo.len, len);
    }

    #[test]
    fn path_trie_distinguishes_prefixes_and_orders() {
        let mut trie = PathTrie::new();
        let a = PathStep { attr: 0, code: 1 };
        let b = PathStep { attr: 1, code: 0 };
        let root = trie.node_of(&[]);
        let na = trie.node_of(&[a]);
        let nab = trie.node_of(&[a, b]);
        let nba = trie.node_of(&[b, a]);
        // All four paths are distinct nodes; repeated walks are stable.
        let nodes = [root, na, nab, nba];
        for (i, &x) in nodes.iter().enumerate() {
            for &y in &nodes[i + 1..] {
                assert_ne!(x, y);
            }
        }
        assert_eq!(trie.node_of(&[a, b]), nab);
        assert_eq!(trie.content(nab), None);
        trie.set_content(nab, 7);
        assert_eq!(trie.content(nab), Some(7));
        assert_eq!(trie.content(na), None);
    }

    #[test]
    fn batched_backend_matches_per_pair_engine_bitwise() {
        use crate::emd::{Emd, EmdBackendKind};
        let s = space();
        let mut per_pair = SplitEngine::new(&s, FairnessCriterion::default());
        let mut batched = SplitEngine::new(
            &s,
            FairnessCriterion::default().with_emd(Emd::new(EmdBackendKind::Batched)),
        );
        let root = Partition::root(&s);
        let parts = root.split(&s, 0);

        let u1 = per_pair.unfairness(&parts).unwrap();
        let ub = batched.unfairness(&parts).unwrap();
        assert_eq!(u1.to_bits(), ub.to_bits());
        let v1 = per_pair.versus(&parts[0], &parts[1..]).unwrap();
        let vb = batched.versus(&parts[0], &parts[1..]).unwrap();
        assert_eq!(v1.to_bits(), vb.to_bits());
        let (c1, s1) = per_pair.best_split(&root, &[0, 1], 1).unwrap();
        let (cb, sb) = batched.best_split(&root, &[0, 1], 1).unwrap();
        let (c1, cb) = (c1.unwrap(), cb.unwrap());
        assert_eq!((s1, c1.attr), (sb, cb.attr));
        assert_eq!(c1.value.to_bits(), cb.value.to_bits());

        // The batch path is live, never does more memo/EMD evaluations
        // than the per-pair walk, and only it counts batches.
        assert!(batched.stats().pairwise_batches > 0);
        assert_eq!(per_pair.stats().pairwise_batches, 0);
        assert!(
            batched.stats().emd_calls + batched.stats().emd_cache_hits
                <= per_pair.stats().emd_calls + per_pair.stats().emd_cache_hits
        );
    }

    #[test]
    fn kernel_backend_matches_batched_engine_bitwise() {
        use crate::emd::{Emd, EmdBackendKind};
        let s = space();
        let mut batched = SplitEngine::new(
            &s,
            FairnessCriterion::default().with_emd(Emd::new(EmdBackendKind::Batched)),
        );
        let mut kernel = SplitEngine::new(
            &s,
            FairnessCriterion::default().with_emd(Emd::new(EmdBackendKind::Kernel)),
        );
        let root = Partition::root(&s);
        let parts = root.split(&s, 0);
        // Same values, bit for bit — the SoA fold replays the reference
        // per-pair operation sequence — and the same work counters: the
        // kernel path only changes *how* a batch's misses are folded.
        for engine in [&mut batched, &mut kernel] {
            let _ = engine.best_split(&root, &[0, 1], 1).unwrap();
        }
        let ub = batched.unfairness(&parts).unwrap();
        let uk = kernel.unfairness(&parts).unwrap();
        assert_eq!(ub.to_bits(), uk.to_bits());
        let vb = batched.versus(&parts[0], &parts[1..]).unwrap();
        let vk = kernel.versus(&parts[0], &parts[1..]).unwrap();
        assert_eq!(vb.to_bits(), vk.to_bits());
        let (cb, _) = batched.best_split(&parts[0], &[1], 1).unwrap();
        let cb = cb.expect("noise splits the F partition");
        let hb = batched
            .holistic_values(&parts[1..], &parts[0], &cb)
            .unwrap();
        let (ck, _) = kernel.best_split(&parts[0], &[1], 1).unwrap();
        let ck = ck.expect("noise splits the F partition");
        let hk = kernel.holistic_values(&parts[1..], &parts[0], &ck).unwrap();
        assert_eq!(hb.0.to_bits(), hk.0.to_bits());
        assert_eq!(hb.1.to_bits(), hk.1.to_bits());
        assert_eq!(batched.stats(), kernel.stats());
        assert!(kernel.stats().pairwise_batches > 0);
    }

    #[test]
    fn batch_dedup_collapses_repeated_contents() {
        use crate::emd::{Emd, EmdBackendKind};
        for backend in [EmdBackendKind::Batched, EmdBackendKind::Kernel] {
            let s = space();
            let mut engine = SplitEngine::new(
                &s,
                FairnessCriterion::default().with_emd(Emd::new(backend)),
            );
            let parts = Partition::root(&s).split(&s, 0);
            // Four partitions but only two distinct contents: C(4,2) = 6 leaf
            // pairs collapse to a single distinct-pair resolution.
            let doubled: Vec<Partition> =
                parts.iter().chain(parts.iter()).cloned().collect();
            let _ = engine.unfairness(&doubled).unwrap();
            let stats = engine.stats();
            assert_eq!(stats.pairwise_batches, 1, "{backend:?}");
            assert_eq!(
                stats.emd_calls + stats.emd_cache_hits,
                1,
                "{backend:?} stats: {stats:?}"
            );
        }
    }

    #[test]
    fn memo_key_is_unordered_for_the_transport_backend() {
        use crate::emd::{Emd, EmdBackendKind};
        let s = space();
        let mut engine = SplitEngine::new(
            &s,
            FairnessCriterion::default().with_emd(Emd::new(EmdBackendKind::Transport)),
        );
        let parts = Partition::root(&s).split(&s, 0);
        let forward = engine.versus(&parts[0], &parts[1..]).unwrap();
        let calls = engine.stats().emd_calls;
        let backward = engine.versus(&parts[1], &parts[..1]).unwrap();
        // The reverse direction is a cache hit sharing the same entry.
        assert_eq!(engine.stats().emd_calls, calls);
        assert!(engine.stats().emd_cache_hits > 0);
        assert_eq!(forward.to_bits(), backward.to_bits());
    }

    #[test]
    fn best_split_skips_constant_and_invalid_attributes() {
        let constant = ProtectedAttribute::from_values("k", &["x", "x", "x"]);
        let s = RankingSpace::new(vec![constant], vec![0.1, 0.5, 0.9]).unwrap();
        let mut engine = SplitEngine::new(&s, FairnessCriterion::default());
        let root = Partition::root(&s);
        let (cand, scored) = engine.best_split(&root, &[0, 7], 1).unwrap();
        assert!(cand.is_none());
        assert_eq!(scored, 0);
    }
}
