//! Subgroup lattice utilities.
//!
//! FaiRank "extends prior work to examine groups of people defined by any
//! combination of protected attributes (the so-called subgroup fairness)"
//! (§1, citing Kearns et al.). This module enumerates the subgroups — all
//! conjunctions of `attribute = value` constraints — and scores how each is
//! treated relative to the rest of the population. The auditor report uses
//! it to name the most/least favored demographics for a job.

use serde::{Deserialize, Serialize};

use crate::emd::Emd;
use crate::error::Result;
use crate::fairness::FairnessCriterion;
use crate::histogram::Histogram;
use crate::partition::{Partition, PathStep};
use crate::space::RankingSpace;

/// A subgroup with its divergence statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubgroupStats {
    /// The constraints defining this subgroup.
    pub steps: Vec<PathStep>,
    /// Human-readable label (e.g. `gender=F ∧ language=en`).
    pub label: String,
    /// Number of members.
    pub size: usize,
    /// Mean score of the subgroup.
    pub mean_score: f64,
    /// Mean score of everyone else (the complement).
    pub complement_mean: f64,
    /// EMD between the subgroup's histogram and its complement's.
    pub divergence: f64,
    /// `mean_score − complement_mean`: positive means favored.
    pub advantage: f64,
}

/// Enumerates all non-empty subgroups of `space` defined by conjunctions of
/// at most `max_depth` protected-attribute constraints (attributes in
/// ascending index order, so each subgroup is produced exactly once).
pub fn enumerate_subgroups(space: &RankingSpace, max_depth: usize) -> Vec<Partition> {
    let mut out = Vec::new();
    let root = Partition::root(space);
    let n_attrs = space.attributes().len();
    let mut stack: Vec<(Partition, usize)> = vec![(root, 0)];
    while let Some((part, next_attr)) = stack.pop() {
        if part.path.len() >= max_depth {
            continue;
        }
        for attr in next_attr..n_attrs {
            for child in part.split(space, attr) {
                stack.push((child.clone(), attr + 1));
                out.push(child);
            }
        }
    }
    out
}

/// Computes divergence statistics for every subgroup up to `max_depth`
/// constraints. Subgroups smaller than `min_size` (or with an empty
/// complement) are skipped.
pub fn subgroup_stats(
    space: &RankingSpace,
    criterion: &FairnessCriterion,
    max_depth: usize,
    min_size: usize,
) -> Result<Vec<SubgroupStats>> {
    let scores = space.scores();
    let n = space.num_individuals();
    let global_sum: f64 = scores.iter().sum();
    let mut out = Vec::new();
    for part in enumerate_subgroups(space, max_depth) {
        if part.len() < min_size.max(1) || part.len() == n {
            continue;
        }
        let in_group = &part.rows;
        let mut member = vec![false; n];
        for &r in in_group {
            member[r as usize] = true;
        }
        let comp_rows: Vec<u32> =
            (0..n as u32).filter(|&r| !member[r as usize]).collect();
        let group_sum: f64 = part.scores(scores).sum();
        let mean_score = group_sum / part.len() as f64;
        let complement_mean = (global_sum - group_sum) / comp_rows.len() as f64;
        let h_group = criterion.histogram(&part, scores);
        let h_comp = Histogram::from_rows(criterion.hist, scores, &comp_rows);
        let divergence = divergence_emd(&criterion.emd, &h_group, &h_comp)?;
        out.push(SubgroupStats {
            label: part.label(space),
            steps: part.path.clone(),
            size: part.len(),
            mean_score,
            complement_mean,
            divergence,
            advantage: mean_score - complement_mean,
        });
    }
    Ok(out)
}

fn divergence_emd(emd: &Emd, a: &Histogram, b: &Histogram) -> Result<f64> {
    emd.distance(a, b)
}

/// The `k` most favored subgroups (largest positive advantage first).
pub fn most_favored(stats: &[SubgroupStats], k: usize) -> Vec<&SubgroupStats> {
    let mut sorted: Vec<&SubgroupStats> = stats.iter().collect();
    sorted.sort_by(|a, b| {
        b.advantage
            .partial_cmp(&a.advantage)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    sorted.into_iter().take(k).collect()
}

/// The `k` least favored subgroups (most negative advantage first).
pub fn least_favored(stats: &[SubgroupStats], k: usize) -> Vec<&SubgroupStats> {
    let mut sorted: Vec<&SubgroupStats> = stats.iter().collect();
    sorted.sort_by(|a, b| {
        a.advantage
            .partial_cmp(&b.advantage)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    sorted.into_iter().take(k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ProtectedAttribute;

    fn space() -> RankingSpace {
        let gender = ProtectedAttribute::from_values("g", &["F", "M", "F", "M"]);
        let lang = ProtectedAttribute::from_values("l", &["en", "en", "fr", "fr"]);
        RankingSpace::new(vec![gender, lang], vec![0.1, 0.9, 0.2, 0.8]).unwrap()
    }

    #[test]
    fn enumeration_counts_match_lattice() {
        let s = space();
        // Depth 1: g∈{F,M}, l∈{en,fr} → 4 subgroups.
        let d1 = enumerate_subgroups(&s, 1);
        assert_eq!(d1.len(), 4);
        // Depth 2 adds g×l combos: F-en, F-fr, M-en, M-fr → 8 total.
        let d2 = enumerate_subgroups(&s, 2);
        assert_eq!(d2.len(), 8);
        // No duplicates.
        let mut labels: Vec<String> = d2.iter().map(|p| p.label(&s)).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn depth_zero_enumerates_nothing() {
        assert!(enumerate_subgroups(&space(), 0).is_empty());
    }

    #[test]
    fn stats_identify_disadvantaged_group() {
        let s = space();
        let stats = subgroup_stats(&s, &FairnessCriterion::default(), 2, 1).unwrap();
        let worst = least_favored(&stats, 1)[0];
        // Females score 0.1/0.2 vs males 0.9/0.8 — a female subgroup must be
        // least favored.
        assert!(worst.label.contains("g=F"), "got {}", worst.label);
        assert!(worst.advantage < 0.0);
        let best = most_favored(&stats, 1)[0];
        assert!(best.label.contains("g=M"));
        assert!(best.advantage > 0.0);
    }

    #[test]
    fn min_size_filters_small_subgroups() {
        let s = space();
        let stats = subgroup_stats(&s, &FairnessCriterion::default(), 2, 2).unwrap();
        assert!(stats.iter().all(|st| st.size >= 2));
        // Depth-2 subgroups are singletons here, so only depth-1 survive.
        assert_eq!(stats.len(), 4);
    }

    #[test]
    fn divergence_is_positive_for_separated_groups() {
        let s = space();
        let stats = subgroup_stats(&s, &FairnessCriterion::default(), 1, 1).unwrap();
        let f = stats.iter().find(|st| st.label == "g=F").unwrap();
        assert!(f.divergence > 0.5);
    }

    #[test]
    fn advantage_and_means_are_consistent() {
        let s = space();
        let stats = subgroup_stats(&s, &FairnessCriterion::default(), 1, 1).unwrap();
        for st in &stats {
            assert!((st.advantage - (st.mean_score - st.complement_mean)).abs() < 1e-12);
        }
    }
}
