//! Scoring functions and score sources.
//!
//! Definition 1 of the paper: a scoring function `f : W → [0, 1]` is a
//! user-weighted linear combination of observed attributes,
//! `f(w) = Σ αᵢ · bᵢ(w)`; a weight of zero drops an attribute. When the
//! function is *not* transparent (the paper's "process transparency"
//! setting), FaiRank instead consumes a ranking and "builds histograms
//! using ranks of individuals rather than actual function scores" — here,
//! ranks are normalized into `[0, 1]` pseudo-scores.

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};

/// A tabular source of *observed* (skill / performance) attributes.
///
/// Implemented by `fairank_data::Dataset`; kept as a trait so the core
/// algorithm does not depend on any storage layer.
pub trait ObservedTable {
    /// Number of individuals (rows).
    fn num_rows(&self) -> usize;
    /// Contiguous numeric column for the observed attribute `name`, if it
    /// exists and is observed.
    fn observed_column(&self, name: &str) -> Option<&[f64]>;
    /// Names of all observed attributes.
    fn observed_names(&self) -> Vec<&str>;
}

/// A trivial [`ObservedTable`] over named `f64` columns; useful in tests and
/// for standalone use of the core crate without the data substrate.
#[derive(Debug, Clone, Default)]
pub struct ColumnsTable {
    columns: Vec<(String, Vec<f64>)>,
}

impl ColumnsTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named column. All columns must have equal length (checked by
    /// `ObservedTable::num_rows` consumers; the first column sets the size).
    pub fn with_column(mut self, name: impl Into<String>, values: Vec<f64>) -> Self {
        self.columns.push((name.into(), values));
        self
    }
}

impl ObservedTable for ColumnsTable {
    fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, |(_, v)| v.len())
    }
    fn observed_column(&self, name: &str) -> Option<&[f64]> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }
    fn observed_names(&self) -> Vec<&str> {
        self.columns.iter().map(|(n, _)| n.as_str()).collect()
    }
}

/// A linear scoring function `f(w) = Σ αᵢ · bᵢ(w)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearScoring {
    terms: Vec<(String, f64)>,
    clamp_to_unit: bool,
}

impl LinearScoring {
    /// Starts building a linear scoring function.
    pub fn builder() -> LinearScoringBuilder {
        LinearScoringBuilder {
            terms: Vec::new(),
            clamp_to_unit: false,
        }
    }

    /// The `(attribute, weight)` terms with non-zero weight.
    pub fn terms(&self) -> &[(String, f64)] {
        &self.terms
    }

    /// Returns a copy with one weight replaced (or added). The job-owner
    /// scenario explores such variants interactively.
    pub fn with_weight(&self, name: &str, weight: f64) -> Result<LinearScoring> {
        let mut b = LinearScoring::builder();
        let mut replaced = false;
        for (n, w) in &self.terms {
            if n == name {
                b = b.weight(n.clone(), weight);
                replaced = true;
            } else {
                b = b.weight(n.clone(), *w);
            }
        }
        if !replaced {
            b = b.weight(name, weight);
        }
        if self.clamp_to_unit {
            b = b.clamp_to_unit();
        }
        b.build_unchecked()
    }

    /// Scores every row of `table`. Fails if a referenced attribute is
    /// missing or a produced score is non-finite.
    pub fn score_all<T: ObservedTable + ?Sized>(&self, table: &T) -> Result<Vec<f64>> {
        let n = table.num_rows();
        let mut columns = Vec::with_capacity(self.terms.len());
        for (name, w) in &self.terms {
            let col = table
                .observed_column(name)
                .ok_or_else(|| CoreError::UnknownObservedAttribute(name.clone()))?;
            if col.len() != n {
                return Err(CoreError::InvalidScoring(format!(
                    "column {:?} has {} rows, table reports {}",
                    name,
                    col.len(),
                    n
                )));
            }
            columns.push((col, *w));
        }
        let mut scores = vec![0.0f64; n];
        for (col, w) in &columns {
            for (s, &v) in scores.iter_mut().zip(col.iter()) {
                *s += w * v;
            }
        }
        if self.clamp_to_unit {
            for s in scores.iter_mut() {
                *s = s.clamp(0.0, 1.0);
            }
        }
        if let Some((row, &value)) = scores.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(CoreError::NonFiniteScore { row, value });
        }
        Ok(scores)
    }
}

/// Builder for [`LinearScoring`].
#[derive(Debug, Clone)]
pub struct LinearScoringBuilder {
    terms: Vec<(String, f64)>,
    clamp_to_unit: bool,
}

impl LinearScoringBuilder {
    /// Adds a weighted attribute. "A weight of zero indicates that the
    /// corresponding attribute is not relevant" (Def. 1) — zero-weight terms
    /// are dropped.
    pub fn weight(mut self, name: impl Into<String>, weight: f64) -> Self {
        let name = name.into();
        self.terms.retain(|(n, _)| *n != name);
        if weight != 0.0 {
            self.terms.push((name, weight));
        }
        self
    }

    /// Clamp produced scores into `[0, 1]` (Definition 1's codomain) in case
    /// weights overshoot the unit interval.
    pub fn clamp_to_unit(mut self) -> Self {
        self.clamp_to_unit = true;
        self
    }

    /// Builds, validating the referenced attributes against `table`.
    pub fn build<T: ObservedTable + ?Sized>(self, table: &T) -> Result<LinearScoring> {
        for (name, w) in &self.terms {
            if !w.is_finite() {
                return Err(CoreError::InvalidScoring(format!(
                    "weight for {name:?} is not finite"
                )));
            }
            if table.observed_column(name).is_none() {
                return Err(CoreError::UnknownObservedAttribute(name.clone()));
            }
        }
        self.build_unchecked()
    }

    /// Builds without checking attribute names against a table.
    pub fn build_unchecked(self) -> Result<LinearScoring> {
        if self.terms.is_empty() {
            return Err(CoreError::InvalidScoring(
                "a scoring function needs at least one non-zero weight".into(),
            ));
        }
        if let Some((name, _)) = self.terms.iter().find(|(_, w)| !w.is_finite()) {
            return Err(CoreError::InvalidScoring(format!(
                "weight for {name:?} is not finite"
            )));
        }
        Ok(LinearScoring {
            terms: self.terms,
            clamp_to_unit: self.clamp_to_unit,
        })
    }
}

/// Where the per-individual scores come from — the paper's process
/// transparency settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScoreSource {
    /// Transparent scoring function (Definition 1).
    Function(LinearScoring),
    /// Raw scores provided directly (e.g. replayed from a platform).
    Scores(Vec<f64>),
    /// Function-opaque setting: only a ranking is available.
    /// `ranking[k]` is the row index of the individual at rank `k`
    /// (rank 0 = best). Converted to pseudo-scores `1 − rank/(n−1)`.
    Ranking(Vec<u32>),
}

impl From<LinearScoring> for ScoreSource {
    fn from(f: LinearScoring) -> Self {
        ScoreSource::Function(f)
    }
}

impl ScoreSource {
    /// True when the actual scoring function is visible (affects which
    /// histogram range is meaningful).
    pub fn is_transparent(&self) -> bool {
        matches!(self, ScoreSource::Function(_) | ScoreSource::Scores(_))
    }

    /// Resolves to one finite score per row of `table`.
    pub fn resolve<T: ObservedTable + ?Sized>(&self, table: &T) -> Result<Vec<f64>> {
        match self {
            ScoreSource::Function(f) => f.score_all(table),
            ScoreSource::Scores(scores) => {
                if scores.len() != table.num_rows() {
                    return Err(CoreError::InvalidScoring(format!(
                        "{} provided scores for {} rows",
                        scores.len(),
                        table.num_rows()
                    )));
                }
                if let Some((row, &value)) =
                    scores.iter().enumerate().find(|(_, v)| !v.is_finite())
                {
                    return Err(CoreError::NonFiniteScore { row, value });
                }
                Ok(scores.clone())
            }
            ScoreSource::Ranking(ranking) => {
                ranking_to_scores(ranking, table.num_rows())
            }
        }
    }
}

/// Converts a ranking (permutation of row indices, best first) into
/// normalized pseudo-scores in `[0, 1]`: the top-ranked individual scores 1,
/// the bottom-ranked scores 0, with equal spacing in between.
pub fn ranking_to_scores(ranking: &[u32], num_rows: usize) -> Result<Vec<f64>> {
    if ranking.len() != num_rows {
        return Err(CoreError::InvalidScoring(format!(
            "ranking has {} entries for {} rows",
            ranking.len(),
            num_rows
        )));
    }
    if num_rows == 0 {
        return Err(CoreError::EmptyInput);
    }
    let mut seen = vec![false; num_rows];
    for &r in ranking {
        let idx = r as usize;
        if idx >= num_rows {
            return Err(CoreError::InvalidScoring(format!(
                "ranking references row {idx} but there are only {num_rows} rows"
            )));
        }
        if seen[idx] {
            return Err(CoreError::InvalidScoring(format!(
                "ranking mentions row {idx} twice"
            )));
        }
        seen[idx] = true;
    }
    let mut scores = vec![0.0f64; num_rows];
    if num_rows == 1 {
        scores[ranking[0] as usize] = 1.0;
        return Ok(scores);
    }
    let denom = (num_rows - 1) as f64;
    for (rank, &row) in ranking.iter().enumerate() {
        scores[row as usize] = 1.0 - rank as f64 / denom;
    }
    Ok(scores)
}

/// Converts scores into a ranking (best = highest score first). Ties break
/// by row index so the ranking is deterministic.
pub fn scores_to_ranking(scores: &[f64]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..scores.len() as u32).collect();
    order.sort_by(|&a, &b| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ColumnsTable {
        ColumnsTable::new()
            .with_column("language_test", vec![0.50, 0.89, 0.65])
            .with_column("rating", vec![0.20, 0.92, 0.65])
    }

    #[test]
    fn linear_scoring_matches_paper_table1_rows() {
        // f = 0.3 * language_test + 0.7 * rating reproduces the published
        // f(w) column of Table 1 (rows w1, w2, w3 here).
        let f = LinearScoring::builder()
            .weight("language_test", 0.3)
            .weight("rating", 0.7)
            .build(&table())
            .unwrap();
        let scores = f.score_all(&table()).unwrap();
        let expect = [0.29, 0.911, 0.65];
        for (s, e) in scores.iter().zip(expect) {
            assert!((s - e).abs() < 1e-9, "{s} vs {e}");
        }
    }

    #[test]
    fn zero_weights_are_dropped() {
        let f = LinearScoring::builder()
            .weight("language_test", 0.0)
            .weight("rating", 1.0)
            .build(&table())
            .unwrap();
        assert_eq!(f.terms().len(), 1);
        assert_eq!(f.terms()[0].0, "rating");
    }

    #[test]
    fn repeated_weight_replaces_previous() {
        let f = LinearScoring::builder()
            .weight("rating", 0.2)
            .weight("rating", 0.9)
            .build(&table())
            .unwrap();
        assert_eq!(f.terms(), &[("rating".to_string(), 0.9)]);
    }

    #[test]
    fn builder_rejects_unknown_attribute_and_empty() {
        let err = LinearScoring::builder()
            .weight("charisma", 1.0)
            .build(&table())
            .unwrap_err();
        assert_eq!(err, CoreError::UnknownObservedAttribute("charisma".into()));
        assert!(LinearScoring::builder().build(&table()).is_err());
        assert!(LinearScoring::builder()
            .weight("rating", f64::NAN)
            .build_unchecked()
            .is_err());
    }

    #[test]
    fn clamping_keeps_unit_codomain() {
        let f = LinearScoring::builder()
            .weight("rating", 5.0)
            .clamp_to_unit()
            .build(&table())
            .unwrap();
        let scores = f.score_all(&table()).unwrap();
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
        assert_eq!(scores[1], 1.0);
    }

    #[test]
    fn with_weight_creates_variant() {
        let f = LinearScoring::builder()
            .weight("language_test", 0.3)
            .weight("rating", 0.7)
            .build(&table())
            .unwrap();
        let g = f.with_weight("rating", 0.1).unwrap();
        assert_eq!(
            g.terms(),
            &[
                ("language_test".to_string(), 0.3),
                ("rating".to_string(), 0.1)
            ]
        );
        // Setting a new attribute appends it.
        let h = f.with_weight("experience", 0.5).unwrap();
        assert_eq!(h.terms().len(), 3);
        // Original is untouched.
        assert_eq!(f.terms().len(), 2);
    }

    #[test]
    fn score_source_scores_validates_length_and_finiteness() {
        let t = table();
        assert!(ScoreSource::Scores(vec![0.1, 0.2, 0.3]).resolve(&t).is_ok());
        assert!(ScoreSource::Scores(vec![0.1]).resolve(&t).is_err());
        assert!(ScoreSource::Scores(vec![0.1, f64::INFINITY, 0.3])
            .resolve(&t)
            .is_err());
    }

    #[test]
    fn ranking_resolves_to_normalized_pseudo_scores() {
        let t = table();
        // Row 1 best, row 0 middle, row 2 worst.
        let scores = ScoreSource::Ranking(vec![1, 0, 2]).resolve(&t).unwrap();
        assert_eq!(scores, vec![0.5, 1.0, 0.0]);
    }

    #[test]
    fn ranking_validation() {
        assert!(ranking_to_scores(&[0, 0], 2).is_err()); // duplicate
        assert!(ranking_to_scores(&[0, 5], 2).is_err()); // out of range
        assert!(ranking_to_scores(&[0], 2).is_err()); // wrong length
        assert_eq!(ranking_to_scores(&[0], 1).unwrap(), vec![1.0]);
    }

    #[test]
    fn scores_to_ranking_round_trips() {
        let scores = [0.3, 0.9, 0.1, 0.5];
        let ranking = scores_to_ranking(&scores);
        assert_eq!(ranking, vec![1, 3, 0, 2]);
        let pseudo = ranking_to_scores(&ranking, 4).unwrap();
        // Pseudo-scores preserve the order of the original scores.
        let reranked = scores_to_ranking(&pseudo);
        assert_eq!(reranked, ranking);
    }

    #[test]
    fn scores_to_ranking_breaks_ties_by_row() {
        let ranking = scores_to_ranking(&[0.5, 0.5, 0.5]);
        assert_eq!(ranking, vec![0, 1, 2]);
    }

    #[test]
    fn is_transparent_flags() {
        assert!(ScoreSource::Scores(vec![]).is_transparent());
        assert!(!ScoreSource::Ranking(vec![]).is_transparent());
    }
}
