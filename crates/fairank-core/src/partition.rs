//! Partitions and partitioning trees.
//!
//! A *partition* is a group of individuals reached by a conjunction of
//! protected-attribute constraints (its *path*), e.g. `Gender=Male ∧
//! Language=English`. A *partitioning tree* records how `QUANTIFY` split the
//! population; its leaves form the full disjoint partitioning `P` that
//! Definition 1 optimizes over, and it is the object the FaiRank interface
//! displays in its panels (Figure 3).

use serde::{Deserialize, Serialize};

use crate::space::RankingSpace;

/// One step on a partition's path: `attribute == value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathStep {
    /// Index of the protected attribute in the [`RankingSpace`].
    pub attr: usize,
    /// Dictionary code of the value within that attribute.
    pub code: u32,
}

/// A group of individuals defined by protected-attribute values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// Row indices (into the ranking space) of the members.
    pub rows: Vec<u32>,
    /// The conjunction of constraints that defines this partition, in split
    /// order. Empty for the root (everyone).
    pub path: Vec<PathStep>,
}

impl Partition {
    /// The root partition containing every individual.
    pub fn root(space: &RankingSpace) -> Self {
        Partition {
            rows: space.all_rows(),
            path: Vec::new(),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the partition has no members.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Human-readable label like `Gender=Male ∧ Language=English`, or
    /// `ALL` for the root.
    pub fn label(&self, space: &RankingSpace) -> String {
        if self.path.is_empty() {
            return "ALL".to_string();
        }
        let parts: Vec<String> = self
            .path
            .iter()
            .map(|step| {
                let attr = space.attribute(step.attr);
                match attr {
                    Some(a) => format!(
                        "{}={}",
                        a.name,
                        a.label(step.code).unwrap_or("<invalid>")
                    ),
                    None => "<invalid attr>".to_string(),
                }
            })
            .collect();
        parts.join(" ∧ ")
    }

    /// Member scores, selected from the space's score column.
    pub fn scores<'a>(&'a self, scores: &'a [f64]) -> impl Iterator<Item = f64> + 'a {
        self.rows.iter().map(move |&r| scores[r as usize])
    }

    /// Splits this partition on `attr`, returning one child per distinct
    /// value present (empty children never materialize).
    pub fn split(&self, space: &RankingSpace, attr: usize) -> Vec<Partition> {
        let attribute = match space.attribute(attr) {
            Some(a) => a,
            None => return Vec::new(),
        };
        // Two passes: count each bucket first so every child allocates
        // exactly once (splits are the hot path of delta replays).
        let mut sizes = vec![0usize; attribute.cardinality()];
        for &row in &self.rows {
            sizes[attribute.codes[row as usize] as usize] += 1;
        }
        let mut buckets: Vec<Vec<u32>> =
            sizes.iter().map(|&s| Vec::with_capacity(s)).collect();
        for &row in &self.rows {
            buckets[attribute.codes[row as usize] as usize].push(row);
        }
        buckets
            .into_iter()
            .enumerate()
            .filter(|(_, rows)| !rows.is_empty())
            .map(|(code, rows)| {
                let mut path = self.path.clone();
                path.push(PathStep {
                    attr,
                    code: code as u32,
                });
                Partition { rows, path }
            })
            .collect()
    }
}

/// Index of a node within a [`PartitioningTree`].
pub type NodeId = usize;

/// One node of a partitioning tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeNode {
    /// The partition this node represents.
    pub partition: Partition,
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
    /// The attribute this node was split on, if it was split.
    pub split_attr: Option<usize>,
    /// Children produced by the split (empty for leaves).
    pub children: Vec<NodeId>,
}

/// The tree of splits produced by a partitioning search. Leaves form the
/// final full disjoint partitioning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitioningTree {
    nodes: Vec<TreeNode>,
}

impl PartitioningTree {
    /// A tree containing only the root partition.
    pub fn new(root: Partition) -> Self {
        PartitioningTree {
            nodes: vec![TreeNode {
                partition: root,
                parent: None,
                split_attr: None,
                children: Vec::new(),
            }],
        }
    }

    /// The root node id (always 0).
    pub fn root(&self) -> NodeId {
        0
    }

    /// All nodes, root first, in insertion order.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> &TreeNode {
        &self.nodes[id]
    }

    /// Number of nodes in the tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True only for a default tree with nothing in it (never happens via
    /// `new`, which always inserts a root).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Records a split of `id` on `attr` into `children` partitions,
    /// returning the new node ids.
    pub fn split_node(
        &mut self,
        id: NodeId,
        attr: usize,
        children: Vec<Partition>,
    ) -> Vec<NodeId> {
        let mut ids = Vec::with_capacity(children.len());
        for child in children {
            let child_id = self.nodes.len();
            self.nodes.push(TreeNode {
                partition: child,
                parent: Some(id),
                split_attr: None,
                children: Vec::new(),
            });
            ids.push(child_id);
        }
        let node = &mut self.nodes[id];
        node.split_attr = Some(attr);
        node.children = ids.clone();
        ids
    }

    /// Ids of all leaves, in depth-first order.
    pub fn leaf_ids(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            if node.children.is_empty() {
                out.push(id);
            } else {
                // Push in reverse so leaves come out left-to-right.
                for &c in node.children.iter().rev() {
                    stack.push(c);
                }
            }
        }
        out
    }

    /// The final partitioning: the leaf partitions, cloned.
    pub fn leaf_partitions(&self) -> Vec<Partition> {
        self.leaf_ids()
            .into_iter()
            .map(|id| self.nodes[id].partition.clone())
            .collect()
    }

    /// Depth of node `id` (root = 0).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.nodes[cur].parent {
            d += 1;
            cur = p;
        }
        d
    }

    /// Maximum leaf depth.
    pub fn max_depth(&self) -> usize {
        self.leaf_ids()
            .into_iter()
            .map(|id| self.depth(id))
            .max()
            .unwrap_or(0)
    }
}

/// Checks that `partitions` is a full disjoint partitioning of `n` rows:
/// every row appears in exactly one partition.
pub fn is_full_disjoint(partitions: &[Partition], n: usize) -> bool {
    let mut seen = vec![false; n];
    for p in partitions {
        for &r in &p.rows {
            let idx = r as usize;
            if idx >= n || seen[idx] {
                return false;
            }
            seen[idx] = true;
        }
    }
    seen.iter().all(|&s| s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{ProtectedAttribute, RankingSpace};

    fn space() -> RankingSpace {
        let gender = ProtectedAttribute::from_values(
            "gender",
            &["F", "M", "M", "M", "F", "M", "F", "M", "M", "F"],
        );
        let lang = ProtectedAttribute::from_values(
            "language",
            &["en", "en", "in", "ot", "in", "en", "en", "en", "en", "en"],
        );
        RankingSpace::new(
            vec![gender, lang],
            vec![0.29, 0.911, 0.65, 0.724, 0.885, 0.266, 0.971, 0.195, 0.271, 0.62],
        )
        .unwrap()
    }

    #[test]
    fn root_contains_everyone() {
        let s = space();
        let root = Partition::root(&s);
        assert_eq!(root.len(), 10);
        assert_eq!(root.label(&s), "ALL");
        assert!(!root.is_empty());
    }

    #[test]
    fn split_produces_disjoint_children() {
        let s = space();
        let root = Partition::root(&s);
        let children = root.split(&s, 0);
        assert_eq!(children.len(), 2);
        let all: usize = children.iter().map(Partition::len).sum();
        assert_eq!(all, 10);
        assert!(is_full_disjoint(&children, 10));
        assert_eq!(children[0].label(&s), "gender=F");
        assert_eq!(children[1].label(&s), "gender=M");
    }

    #[test]
    fn split_drops_absent_values() {
        let s = space();
        let root = Partition::root(&s);
        let females = &root.split(&s, 0)[0];
        // Within females only "en" and "in" languages occur.
        let langs = females.split(&s, 1);
        assert_eq!(langs.len(), 2);
        assert!(!is_full_disjoint(&langs, 10)); // not all 10 rows
        let members: usize = langs.iter().map(Partition::len).sum();
        assert_eq!(members, females.len());
    }

    #[test]
    fn nested_path_labels() {
        let s = space();
        let root = Partition::root(&s);
        let males = root.split(&s, 0)[1].clone();
        let male_en = males.split(&s, 1)[0].clone();
        assert_eq!(male_en.label(&s), "gender=M ∧ language=en");
        assert_eq!(male_en.path.len(), 2);
    }

    #[test]
    fn split_on_invalid_attribute_is_empty() {
        let s = space();
        assert!(Partition::root(&s).split(&s, 99).is_empty());
    }

    #[test]
    fn tree_split_and_leaves() {
        let s = space();
        let mut tree = PartitioningTree::new(Partition::root(&s));
        let children = tree.node(tree.root()).partition.split(&s, 0);
        let ids = tree.split_node(tree.root(), 0, children);
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(tree.leaf_ids(), vec![1, 2]);
        assert_eq!(tree.len(), 3);
        assert_eq!(tree.max_depth(), 1);

        // Split the male node further by language.
        let male = tree.node(2).partition.clone();
        let male_children = male.split(&s, 1);
        tree.split_node(2, 1, male_children);
        let leaves = tree.leaf_partitions();
        assert!(leaves.len() >= 3);
        assert!(is_full_disjoint(&leaves, 10));
        assert_eq!(tree.depth(tree.leaf_ids()[1]), 2);
    }

    #[test]
    fn full_disjoint_detects_violations() {
        let p1 = Partition {
            rows: vec![0, 1],
            path: vec![],
        };
        let p2 = Partition {
            rows: vec![1, 2],
            path: vec![],
        };
        assert!(!is_full_disjoint(&[p1.clone(), p2], 3)); // overlap
        assert!(!is_full_disjoint(&[p1], 3)); // missing row 2
        let q1 = Partition {
            rows: vec![0, 2],
            path: vec![],
        };
        let q2 = Partition {
            rows: vec![1],
            path: vec![],
        };
        assert!(is_full_disjoint(&[q1, q2], 3));
    }

    #[test]
    fn partition_scores_iterate_members() {
        let s = space();
        let root = Partition::root(&s);
        let females = &root.split(&s, 0)[0];
        let vals: Vec<f64> = females.scores(s.scores()).collect();
        assert_eq!(vals, vec![0.29, 0.885, 0.971, 0.62]);
    }
}
