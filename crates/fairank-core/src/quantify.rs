//! Algorithm 1 of the paper: `QUANTIFY`, the greedy recursive partitioning
//! search.
//!
//! The partitioning space is exponential in the number of protected
//! attribute values, so FaiRank grows a partitioning tree greedily: at each
//! node it selects the *most unfair attribute* (a decision-tree-style local
//! gain), and splits only if the children are, in aggregate, farther from
//! the node's siblings than the node itself is — i.e. if replacing the node
//! by its children moves the objective in the right direction. Otherwise
//! the node becomes a final partition.
//!
//! ```text
//! QUANTIFY(current, siblings, f, A):
//!   if A = ∅:            output current
//!   else:
//!     currentAvg  = avg(EMD(current, siblings, f))
//!     a           = mostUnfair(current, f, A);  A = A − a
//!     children    = split(current, a)
//!     childrenAvg = avg(EMD(children, siblings, f))
//!     if currentAvg ≥ childrenAvg: output current
//!     else: for p in children: QUANTIFY({p}, children − {p}, f, A)
//! ```
//!
//! Both comparisons generalize from `avg` to the criterion's aggregator and
//! flip under the Least-Unfair objective ("other formulations require to
//! change this test only", §3.2).

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::cancel::RunBudget;
use crate::engine::SplitEngine;
use crate::error::{CoreError, Result};
use crate::fairness::FairnessCriterion;
use crate::partition::{Partition, PartitioningTree};
use crate::scoring::{ObservedTable, ScoreSource};
use crate::space::{ProtectedTable, RankingSpace};

/// How a candidate split is evaluated against the status quo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitEvaluation {
    /// Paper-faithful (Algorithm 1): compare the aggregate of
    /// `EMD(current, sibling)` distances against the aggregate of
    /// `EMD(child, sibling)` distances.
    #[default]
    PaperSiblings,
    /// Holistic variant (ablation): compare `unfairness(siblings ∪
    /// {current})` against `unfairness(siblings ∪ children)`, i.e. include
    /// child–child distances in the decision.
    Holistic,
}

/// Counters describing the work a search performed. Serializable so a
/// cancelled request can report its partial progress on the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Nodes on which a split decision was evaluated.
    pub nodes_evaluated: usize,
    /// Splits actually performed.
    pub splits_performed: usize,
    /// Candidate (node, attribute) splits scored by `mostUnfair`.
    pub candidate_splits: usize,
    /// Histograms actually constructed during evaluation.
    pub histograms_built: usize,
    /// EMD distances actually computed.
    pub emd_calls: usize,
    /// Distance lookups served from the engine's memo table (always 0 for
    /// the naive evaluation, which has no cache).
    pub emd_cache_hits: usize,
    /// Pairwise/cross aggregations the batched EMD backend resolved as one
    /// batch (always 0 under the per-pair `1d`/`transport` backends and
    /// the naive evaluation).
    pub pairwise_batches: usize,
    /// Histograms served from a previous generation's caches by an
    /// incremental (delta) re-evaluation — distinct cached contents the
    /// run consulted that predate its own generation. Always 0 for
    /// from-scratch searches.
    pub delta_reused_histograms: usize,
    /// EMD memo entries dropped by targeted invalidation (cache compaction
    /// after space mutations) ahead of this run. Always 0 for from-scratch
    /// searches.
    pub delta_invalidated_emds: usize,
}

/// The result of a `QUANTIFY` run.
#[derive(Debug, Clone)]
pub struct QuantifyOutcome {
    /// The partitioning tree, for display in panels.
    pub tree: PartitioningTree,
    /// The final full disjoint partitioning (the tree's leaves).
    pub partitions: Vec<Partition>,
    /// `unfairness(P, f)` of the final partitioning under the criterion.
    pub unfairness: f64,
    /// Work counters.
    pub stats: SearchStats,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
}

/// Configured `QUANTIFY` search.
#[derive(Debug, Clone, Default)]
pub struct Quantify {
    criterion: FairnessCriterion,
    split_eval: SplitEvaluation,
    min_partition_size: usize,
    max_depth: Option<usize>,
    naive: bool,
    budget: RunBudget,
}

impl Quantify {
    /// A search under `criterion` with the paper's split evaluation.
    pub fn new(criterion: FairnessCriterion) -> Self {
        Quantify {
            criterion,
            split_eval: SplitEvaluation::default(),
            min_partition_size: 1,
            max_depth: None,
            naive: false,
            budget: RunBudget::unlimited(),
        }
    }

    /// The criterion this search optimizes.
    pub fn criterion(&self) -> &FairnessCriterion {
        &self.criterion
    }

    /// The configured split-evaluation strategy (read by the incremental
    /// delta search, which must replicate the decision sequence exactly).
    pub(crate) fn split_eval(&self) -> SplitEvaluation {
        self.split_eval
    }

    /// The configured minimum partition size.
    pub(crate) fn min_partition_size(&self) -> usize {
        self.min_partition_size
    }

    /// The configured depth cap.
    pub(crate) fn max_depth(&self) -> Option<usize> {
        self.max_depth
    }

    /// The configured cancellation budget.
    pub(crate) fn run_budget(&self) -> &RunBudget {
        &self.budget
    }

    /// Selects the split-evaluation strategy (ablation hook).
    pub fn with_split_evaluation(mut self, eval: SplitEvaluation) -> Self {
        self.split_eval = eval;
        self
    }

    /// Refuses splits that would create a partition smaller than `size`
    /// (statistical-significance guard for interactive use; the paper's
    /// algorithm corresponds to `size = 1`).
    pub fn with_min_partition_size(mut self, size: usize) -> Self {
        self.min_partition_size = size.max(1);
        self
    }

    /// Caps the tree depth (i.e. the number of attributes any one partition
    /// may be refined on). A depth of 0 yields the trivial single-partition
    /// outcome without performing any split.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = Some(depth);
        self
    }

    /// Disables the shared [`SplitEngine`] and evaluates every split the
    /// way the original implementation did (per-candidate row
    /// materialization, no caches). Produces bit-identical results; exists
    /// as the baseline for equivalence tests and perf benchmarks.
    pub fn with_naive_evaluation(mut self) -> Self {
        self.naive = true;
        self
    }

    /// Attaches a cooperative cancellation budget (deadline and/or cancel
    /// tokens). A fired budget aborts the search with
    /// [`CoreError::Cancelled`] carrying the partial [`SearchStats`].
    pub fn with_run_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Runs on a table that exposes both protected and observed attributes,
    /// resolving `source` into scores first.
    pub fn run<T>(&self, table: &T, source: &ScoreSource) -> Result<QuantifyOutcome>
    where
        T: ObservedTable + ProtectedTable + ?Sized,
    {
        let scores = source.resolve(table)?;
        let space = RankingSpace::new(table.protected_attributes(), scores)?;
        self.run_space(&space)
    }

    /// Runs directly on a prepared ranking space.
    pub fn run_space(&self, space: &RankingSpace) -> Result<QuantifyOutcome> {
        if space.num_individuals() == 0 {
            return Err(CoreError::EmptyInput);
        }
        let start = Instant::now();
        if self.max_depth == Some(0) {
            // Depth 0 forbids any refinement: the trivial single-partition
            // outcome, without performing the initial split.
            let root = Partition::root(space);
            let tree = PartitioningTree::new(root.clone());
            let partitions = vec![root];
            let unfairness = self.criterion.unfairness(&partitions, space.scores())?;
            return Ok(QuantifyOutcome {
                tree,
                partitions,
                unfairness,
                stats: SearchStats {
                    histograms_built: 1,
                    ..SearchStats::default()
                },
                elapsed: start.elapsed(),
            });
        }
        if self.naive {
            self.run_space_naive(space, start)
        } else {
            self.run_space_engine(space, start)
        }
    }

    // ---- engine-backed evaluation (default) -----------------------------

    fn run_space_engine(&self, space: &RankingSpace, start: Instant) -> Result<QuantifyOutcome> {
        let mut stats = SearchStats::default();
        let mut engine = SplitEngine::new(space, self.criterion);
        engine.set_run_budget(&self.budget);
        match self.engine_search(&mut engine, &mut stats, space, start) {
            Err(CoreError::Cancelled { reason, .. }) => {
                // The engine reports its own counters at the moment the
                // budget fired; graft on the search-level counters so the
                // caller sees the full partial progress.
                Self::merge_engine_stats(&mut stats, &engine);
                Err(CoreError::Cancelled { reason, stats })
            }
            other => other,
        }
    }

    fn engine_search(
        &self,
        engine: &mut SplitEngine<'_>,
        stats: &mut SearchStats,
        space: &RankingSpace,
        start: Instant,
    ) -> Result<QuantifyOutcome> {
        let root = Partition::root(space);
        let mut tree = PartitioningTree::new(root.clone());

        let all_attrs: Vec<usize> = (0..space.attributes().len()).collect();

        // Initial invocation (§3.2): split the whole population on the most
        // unfair attribute, then run QUANTIFY once per resulting partition.
        let (candidate, scored) =
            engine.best_split(&root, &all_attrs, self.min_partition_size)?;
        stats.candidate_splits += scored;
        let Some(candidate) = candidate else {
            // Nothing splits the population: the trivial partitioning.
            let partitions = vec![root];
            let unfairness = engine.unfairness(&partitions)?;
            Self::merge_engine_stats(stats, engine);
            return Ok(QuantifyOutcome {
                tree,
                partitions,
                unfairness,
                stats: *stats,
                elapsed: start.elapsed(),
            });
        };

        let first_attr = candidate.attr;
        let children = root.split(space, first_attr);
        let remaining: Vec<usize> =
            all_attrs.iter().copied().filter(|&a| a != first_attr).collect();
        let ids = tree.split_node(tree.root(), first_attr, children.clone());
        stats.splits_performed += 1;

        for (i, id) in ids.iter().enumerate() {
            let siblings: Vec<Partition> = children
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, p)| p.clone())
                .collect();
            self.quantify_rec_engine(
                engine,
                &mut tree,
                *id,
                &siblings,
                &remaining,
                1,
                stats,
            )?;
        }

        let partitions = tree.leaf_partitions();
        let unfairness = engine.unfairness(&partitions)?;
        Self::merge_engine_stats(stats, engine);
        Ok(QuantifyOutcome {
            tree,
            partitions,
            unfairness,
            stats: *stats,
            elapsed: start.elapsed(),
        })
    }

    pub(crate) fn merge_engine_stats(stats: &mut SearchStats, engine: &SplitEngine<'_>) {
        let e = engine.stats();
        stats.histograms_built = e.histograms_built;
        stats.emd_calls = e.emd_calls;
        stats.emd_cache_hits = e.emd_cache_hits;
        stats.pairwise_batches = e.pairwise_batches;
        stats.delta_reused_histograms = e.delta_reused_histograms;
        stats.delta_invalidated_emds = e.delta_invalidated_emds;
    }

    /// The recursive body of Algorithm 1, evaluated through the engine.
    /// Candidate children never materialize row vectors; the winning
    /// attribute's rows materialize only once the split is accepted.
    #[allow(clippy::too_many_arguments)]
    fn quantify_rec_engine(
        &self,
        engine: &mut SplitEngine<'_>,
        tree: &mut PartitioningTree,
        node_id: usize,
        siblings: &[Partition],
        avail: &[usize],
        depth: usize,
        stats: &mut SearchStats,
    ) -> Result<()> {
        // Line 1: no attributes left — the node is a final partition.
        if avail.is_empty() {
            return Ok(());
        }
        if self.max_depth.is_some_and(|d| depth >= d) {
            return Ok(());
        }
        // Node boundary: poll the budget even when the node's distance
        // work is served entirely from the memo (no ticks).
        engine.check_budget()?;
        stats.nodes_evaluated += 1;
        let current = tree.node(node_id).partition.clone();

        // Line 5: the most unfair attribute — one counting pass per
        // candidate, winner cache handed back.
        let (candidate, scored) =
            engine.best_split(&current, avail, self.min_partition_size)?;
        stats.candidate_splits += scored;
        let Some(candidate) = candidate else {
            return Ok(()); // no attribute splits this node
        };

        // Lines 4 & 8: aggregate distances of current-vs-siblings and
        // children-vs-siblings, reusing the winner cache's histograms.
        let (current_val, children_val) = match self.split_eval {
            SplitEvaluation::PaperSiblings => {
                let cur = engine.versus(&current, siblings)?;
                let ch = engine.children_versus_siblings(&candidate, siblings)?;
                (cur, ch)
            }
            SplitEvaluation::Holistic => {
                engine.holistic_values(siblings, &current, &candidate)?
            }
        };

        // Line 9, generalized: keep the node unless replacing it by its
        // children strictly improves the objective.
        if !self.criterion.objective.is_better(children_val, current_val) {
            return Ok(());
        }

        // Lines 12–14: split (materializing rows for the winner only) and
        // recurse with the new sibling sets.
        let attr = candidate.attr;
        let children = current.split(engine.space(), attr);
        debug_assert!(children.len() >= 2);
        let remaining: Vec<usize> = avail.iter().copied().filter(|&a| a != attr).collect();
        let ids = tree.split_node(node_id, attr, children.clone());
        stats.splits_performed += 1;
        for (i, id) in ids.iter().enumerate() {
            let new_siblings: Vec<Partition> = children
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, p)| p.clone())
                .collect();
            self.quantify_rec_engine(
                engine,
                tree,
                *id,
                &new_siblings,
                &remaining,
                depth + 1,
                stats,
            )?;
        }
        Ok(())
    }

    // ---- naive evaluation (seed behavior, instrumented) -----------------

    /// Budget poll for the naive path, which has no engine to tick: the
    /// current counters ride along in the cancellation error.
    fn check_budget_naive(&self, stats: &SearchStats) -> Result<()> {
        self.budget
            .check()
            .map_err(|reason| CoreError::Cancelled {
                reason,
                stats: *stats,
            })
    }

    fn run_space_naive(&self, space: &RankingSpace, start: Instant) -> Result<QuantifyOutcome> {
        let mut stats = SearchStats::default();
        let root = Partition::root(space);
        let mut tree = PartitioningTree::new(root.clone());

        let all_attrs: Vec<usize> = (0..space.attributes().len()).collect();

        // Initial invocation (§3.2): split the whole population on the most
        // unfair attribute, then run QUANTIFY once per resulting partition.
        let initial = self.most_unfair_attr(space, &root, &all_attrs, &mut stats)?;
        let Some(first_attr) = initial else {
            // Nothing splits the population: the trivial partitioning.
            let partitions = vec![root];
            let unfairness = self.criterion.unfairness(&partitions, space.scores())?;
            stats.histograms_built += 1;
            return Ok(QuantifyOutcome {
                tree,
                partitions,
                unfairness,
                stats,
                elapsed: start.elapsed(),
            });
        };

        let children = root.split(space, first_attr);
        let remaining: Vec<usize> =
            all_attrs.iter().copied().filter(|&a| a != first_attr).collect();
        let ids = tree.split_node(tree.root(), first_attr, children.clone());
        stats.splits_performed += 1;

        for (i, id) in ids.iter().enumerate() {
            let siblings: Vec<Partition> = children
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, p)| p.clone())
                .collect();
            self.quantify_rec(space, &mut tree, *id, &siblings, &remaining, 1, &mut stats)?;
        }

        let partitions = tree.leaf_partitions();
        let unfairness = self.criterion.unfairness(&partitions, space.scores())?;
        stats.histograms_built += partitions.len();
        stats.emd_calls += partitions.len() * partitions.len().saturating_sub(1) / 2;
        Ok(QuantifyOutcome {
            tree,
            partitions,
            unfairness,
            stats,
            elapsed: start.elapsed(),
        })
    }

    /// The recursive body of Algorithm 1.
    #[allow(clippy::too_many_arguments)]
    fn quantify_rec(
        &self,
        space: &RankingSpace,
        tree: &mut PartitioningTree,
        node_id: usize,
        siblings: &[Partition],
        avail: &[usize],
        depth: usize,
        stats: &mut SearchStats,
    ) -> Result<()> {
        // Line 1: no attributes left — the node is a final partition.
        if avail.is_empty() {
            return Ok(());
        }
        if self.max_depth.is_some_and(|d| depth >= d) {
            return Ok(());
        }
        self.check_budget_naive(stats)?;
        stats.nodes_evaluated += 1;
        let current = tree.node(node_id).partition.clone();

        // Line 5: the most unfair attribute.
        let Some(attr) = self.most_unfair_attr(space, &current, avail, stats)? else {
            return Ok(()); // no attribute splits this node
        };
        let children = current.split(space, attr);
        debug_assert!(children.len() >= 2);

        // Lines 4 & 8: aggregate distances of current-vs-siblings and
        // children-vs-siblings.
        let scores = space.scores();
        let (current_val, children_val) = match self.split_eval {
            SplitEvaluation::PaperSiblings => {
                let cur = self.criterion.versus(&current, siblings, scores)?;
                stats.histograms_built += 1 + siblings.len();
                stats.emd_calls += siblings.len();
                let hists_children: Vec<_> = children
                    .iter()
                    .map(|p| self.criterion.histogram(p, scores))
                    .collect();
                let hists_sib: Vec<_> = siblings
                    .iter()
                    .map(|p| self.criterion.histogram(p, scores))
                    .collect();
                let cross = crate::pairwise::cross_distances(
                    &hists_children,
                    &hists_sib,
                    &self.criterion.emd,
                )?;
                stats.histograms_built += children.len() + siblings.len();
                stats.emd_calls += children.len() * siblings.len();
                (cur, self.criterion.aggregator.apply(&cross))
            }
            SplitEvaluation::Holistic => {
                let mut before: Vec<Partition> = siblings.to_vec();
                before.push(current.clone());
                let mut after: Vec<Partition> = siblings.to_vec();
                after.extend(children.iter().cloned());
                stats.histograms_built += before.len() + after.len();
                stats.emd_calls += before.len() * (before.len() - 1) / 2
                    + after.len() * (after.len() - 1) / 2;
                (
                    self.criterion.unfairness(&before, scores)?,
                    self.criterion.unfairness(&after, scores)?,
                )
            }
        };

        // Line 9, generalized: keep the node unless replacing it by its
        // children strictly improves the objective.
        if !self.criterion.objective.is_better(children_val, current_val) {
            return Ok(());
        }

        // Lines 12–14: split and recurse with the new sibling sets.
        let remaining: Vec<usize> = avail.iter().copied().filter(|&a| a != attr).collect();
        let ids = tree.split_node(node_id, attr, children.clone());
        stats.splits_performed += 1;
        for (i, id) in ids.iter().enumerate() {
            let new_siblings: Vec<Partition> = children
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, p)| p.clone())
                .collect();
            self.quantify_rec(space, tree, *id, &new_siblings, &remaining, depth + 1, stats)?;
        }
        Ok(())
    }

    /// `mostUnfair(current, f, A)`: the attribute whose split of `current`
    /// optimizes the aggregated pairwise EMD among the resulting children.
    /// Attributes producing fewer than two children (or any child below the
    /// minimum size) are not candidates.
    fn most_unfair_attr(
        &self,
        space: &RankingSpace,
        current: &Partition,
        avail: &[usize],
        stats: &mut SearchStats,
    ) -> Result<Option<usize>> {
        let mut best: Option<(usize, f64)> = None;
        for &attr in avail {
            self.check_budget_naive(stats)?;
            let children = current.split(space, attr);
            if children.len() < 2 {
                continue;
            }
            if children.iter().any(|c| c.len() < self.min_partition_size) {
                continue;
            }
            stats.candidate_splits += 1;
            let value = self.criterion.unfairness(&children, space.scores())?;
            stats.histograms_built += children.len();
            stats.emd_calls += children.len() * (children.len() - 1) / 2;
            let better = match best {
                None => true,
                Some((_, incumbent)) => self.criterion.objective.is_better(value, incumbent),
            };
            if better {
                best = Some((attr, value));
            }
        }
        Ok(best.map(|(a, _)| a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fairness::{Aggregator, Objective};
    use crate::partition::is_full_disjoint;
    use crate::space::ProtectedAttribute;

    /// A space where gender cleanly separates scores and a second attribute
    /// (shirt color) is pure noise.
    fn biased_space() -> RankingSpace {
        let n = 40;
        let mut genders = Vec::new();
        let mut colors = Vec::new();
        let mut scores = Vec::new();
        for i in 0..n {
            let female = i % 2 == 0;
            genders.push(if female { "F" } else { "M" });
            colors.push(if i % 3 == 0 { "red" } else { "blue" });
            // Females systematically score ~0.3 lower.
            let base = 0.2 + (i % 5) as f64 * 0.02;
            scores.push(if female { base } else { base + 0.55 });
        }
        RankingSpace::new(
            vec![
                ProtectedAttribute::from_values("gender", &genders),
                ProtectedAttribute::from_values("color", &colors),
            ],
            scores,
        )
        .unwrap()
    }

    #[test]
    fn finds_the_biased_attribute_first() {
        let space = biased_space();
        let outcome = Quantify::default().run_space(&space).unwrap();
        // The first split must be on gender (attribute 0).
        let root = outcome.tree.node(outcome.tree.root());
        assert_eq!(root.split_attr, Some(0));
        // The mean pairwise EMD stays well above the noise floor even after
        // further (color) refinements dilute the cross-gender pairs.
        assert!(outcome.unfairness > 0.3, "u = {}", outcome.unfairness);
        assert!(is_full_disjoint(
            &outcome.partitions,
            space.num_individuals()
        ));
    }

    #[test]
    fn partitions_are_always_full_and_disjoint() {
        let space = biased_space();
        for objective in [Objective::MostUnfair, Objective::LeastUnfair] {
            for aggregator in Aggregator::all() {
                let crit = FairnessCriterion::new(objective, aggregator);
                let outcome = Quantify::new(crit).run_space(&space).unwrap();
                assert!(
                    is_full_disjoint(&outcome.partitions, space.num_individuals()),
                    "{objective:?}/{aggregator:?}"
                );
            }
        }
    }

    #[test]
    fn no_protected_attributes_yields_single_partition() {
        let space = RankingSpace::new(vec![], vec![0.1, 0.9, 0.5]).unwrap();
        let outcome = Quantify::default().run_space(&space).unwrap();
        assert_eq!(outcome.partitions.len(), 1);
        assert_eq!(outcome.unfairness, 0.0);
        assert_eq!(outcome.stats.splits_performed, 0);
    }

    #[test]
    fn constant_attribute_cannot_split() {
        let attr = ProtectedAttribute::from_values("k", &["x", "x", "x"]);
        let space = RankingSpace::new(vec![attr], vec![0.1, 0.5, 0.9]).unwrap();
        let outcome = Quantify::default().run_space(&space).unwrap();
        assert_eq!(outcome.partitions.len(), 1);
    }

    #[test]
    fn uniform_scores_yield_zero_unfairness() {
        let attr = ProtectedAttribute::from_values("g", &["a", "b", "a", "b"]);
        let space = RankingSpace::new(vec![attr], vec![0.5, 0.5, 0.5, 0.5]).unwrap();
        let outcome = Quantify::default().run_space(&space).unwrap();
        assert!(outcome.unfairness.abs() < 1e-12);
    }

    #[test]
    fn min_partition_size_blocks_fine_splits() {
        let space = biased_space();
        // Gender split gives 20/20; color splits inside gender give smaller
        // groups. A floor of 15 allows gender but may block color.
        let outcome = Quantify::default()
            .with_min_partition_size(15)
            .run_space(&space)
            .unwrap();
        for p in &outcome.partitions {
            assert!(p.len() >= 15);
        }
    }

    #[test]
    fn max_depth_caps_tree() {
        let space = biased_space();
        let outcome = Quantify::default()
            .with_max_depth(1)
            .run_space(&space)
            .unwrap();
        assert!(outcome.tree.max_depth() <= 1);
        assert_eq!(outcome.partitions.len(), 2); // just the gender split
    }

    #[test]
    fn max_depth_zero_yields_trivial_partitioning() {
        let space = biased_space();
        let outcome = Quantify::default()
            .with_max_depth(0)
            .run_space(&space)
            .unwrap();
        assert_eq!(outcome.partitions.len(), 1);
        assert_eq!(outcome.unfairness, 0.0);
        assert_eq!(outcome.stats.splits_performed, 0);
        assert_eq!(outcome.tree.len(), 1);
    }

    #[test]
    fn engine_and_naive_evaluations_agree_bitwise() {
        let space = biased_space();
        for objective in [Objective::MostUnfair, Objective::LeastUnfair] {
            for eval in [SplitEvaluation::PaperSiblings, SplitEvaluation::Holistic] {
                let crit = FairnessCriterion::new(objective, Aggregator::Mean);
                let engine = Quantify::new(crit)
                    .with_split_evaluation(eval)
                    .run_space(&space)
                    .unwrap();
                let naive = Quantify::new(crit)
                    .with_split_evaluation(eval)
                    .with_naive_evaluation()
                    .run_space(&space)
                    .unwrap();
                assert_eq!(engine.unfairness, naive.unfairness, "{objective:?}/{eval:?}");
                assert_eq!(engine.partitions, naive.partitions);
                assert_eq!(engine.tree, naive.tree);
                assert_eq!(engine.stats.candidate_splits, naive.stats.candidate_splits);
                assert_eq!(engine.stats.splits_performed, naive.stats.splits_performed);
                assert_eq!(engine.stats.nodes_evaluated, naive.stats.nodes_evaluated);
            }
        }
    }

    #[test]
    fn engine_does_strictly_less_work_than_naive() {
        let space = biased_space();
        let engine = Quantify::default().run_space(&space).unwrap();
        let naive = Quantify::default()
            .with_naive_evaluation()
            .run_space(&space)
            .unwrap();
        assert!(
            engine.stats.histograms_built < naive.stats.histograms_built,
            "engine {} vs naive {}",
            engine.stats.histograms_built,
            naive.stats.histograms_built
        );
        assert!(engine.stats.emd_calls < naive.stats.emd_calls);
        assert!(engine.stats.emd_cache_hits > 0);
        assert_eq!(naive.stats.emd_cache_hits, 0);
    }

    #[test]
    fn holistic_evaluation_also_produces_valid_partitionings() {
        let space = biased_space();
        let outcome = Quantify::default()
            .with_split_evaluation(SplitEvaluation::Holistic)
            .run_space(&space)
            .unwrap();
        assert!(is_full_disjoint(
            &outcome.partitions,
            space.num_individuals()
        ));
    }

    #[test]
    fn least_unfair_objective_prefers_coarse_partitionings_on_biased_data() {
        let space = biased_space();
        let most = Quantify::new(FairnessCriterion::new(
            Objective::MostUnfair,
            Aggregator::Mean,
        ))
        .run_space(&space)
        .unwrap();
        let least = Quantify::new(FairnessCriterion::new(
            Objective::LeastUnfair,
            Aggregator::Mean,
        ))
        .run_space(&space)
        .unwrap();
        assert!(least.unfairness <= most.unfairness);
    }

    #[test]
    fn stats_are_recorded() {
        let space = biased_space();
        let outcome = Quantify::default().run_space(&space).unwrap();
        assert!(outcome.stats.candidate_splits >= 2);
        assert!(outcome.stats.splits_performed >= 1);
        assert!(outcome.elapsed.as_nanos() > 0);
    }

    #[test]
    fn cancelled_token_aborts_engine_search_with_reason() {
        use crate::cancel::{CancelReason, CancelToken, RunBudget};
        let space = biased_space();
        let token = CancelToken::new();
        token.cancel(CancelReason::Shutdown);
        let err = Quantify::default()
            .with_run_budget(RunBudget::unlimited().with_token(token))
            .run_space(&space)
            .unwrap_err();
        match err {
            CoreError::Cancelled { reason, .. } => {
                assert_eq!(reason, CancelReason::Shutdown);
            }
            other => panic!("expected cancellation, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_aborts_both_evaluations_with_partial_stats() {
        use crate::cancel::{CancelReason, RunBudget};
        use std::time::{Duration, Instant};
        let space = biased_space();
        let expired =
            RunBudget::unlimited().with_deadline(Instant::now() - Duration::from_millis(1));
        for search in [
            Quantify::default().with_run_budget(expired.clone()),
            Quantify::default()
                .with_naive_evaluation()
                .with_run_budget(expired),
        ] {
            match search.run_space(&space).unwrap_err() {
                CoreError::Cancelled { reason, stats } => {
                    assert_eq!(reason, CancelReason::Deadline);
                    // Partial progress: strictly less work than a full run.
                    let full = Quantify::default().run_space(&space).unwrap();
                    assert!(stats.splits_performed <= full.stats.splits_performed);
                }
                other => panic!("expected deadline cancellation, got {other:?}"),
            }
        }
    }

    #[test]
    fn run_via_tables_matches_run_space() {
        use crate::scoring::{ColumnsTable, LinearScoring};

        struct Table {
            obs: ColumnsTable,
            genders: Vec<&'static str>,
        }
        impl ObservedTable for Table {
            fn num_rows(&self) -> usize {
                self.obs.num_rows()
            }
            fn observed_column(&self, name: &str) -> Option<&[f64]> {
                self.obs.observed_column(name)
            }
            fn observed_names(&self) -> Vec<&str> {
                self.obs.observed_names()
            }
        }
        impl ProtectedTable for Table {
            fn protected_attributes(&self) -> Vec<ProtectedAttribute> {
                vec![ProtectedAttribute::from_values("gender", &self.genders)]
            }
        }

        let table = Table {
            obs: ColumnsTable::new().with_column("skill", vec![0.1, 0.9, 0.2, 0.8]),
            genders: vec!["F", "M", "F", "M"],
        };
        let f = LinearScoring::builder()
            .weight("skill", 1.0)
            .build(&table.obs)
            .unwrap();
        let outcome = Quantify::default()
            .run(&table, &ScoreSource::Function(f))
            .unwrap();
        assert_eq!(outcome.partitions.len(), 2);
        assert!(outcome.unfairness > 0.5);
    }
}
