//! Cell-level execution for scenario plans.
//!
//! A *cell* is one independent unit of analysis work: a search strategy
//! applied to one prepared [`RankingSpace`] under one fairness criterion.
//! Scenario plans (the session layer's `plan` module) compile grids of
//! configurations into many such cells and fan them out — sequentially,
//! over scoped threads, or across a server worker pool. This module owns
//! the part that is pure `fairank-core`: naming the strategy, running it
//! on the [`SplitEngine`]-backed searches, and normalizing the outcome so
//! every strategy reports through the same shape.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::beam::BeamSearch;
use crate::cancel::RunBudget;
use crate::error::Result;
use crate::exhaustive::ExhaustiveSearch;
use crate::fairness::FairnessCriterion;
use crate::fault;
use crate::fingerprint::{ContentHasher, Fingerprint};
use crate::quantify::{Quantify, QuantifyOutcome, SearchStats};
use crate::space::RankingSpace;

/// Which partitioning search a plan cell runs.
///
/// All three strategies evaluate through the shared
/// [`SplitEngine`](crate::engine::SplitEngine); the strategy only decides
/// how the partitioning space is explored.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SearchStrategy {
    /// Algorithm 1 (`QUANTIFY`): the greedy recursive partitioning search.
    Quantify {
        /// Cap on the tree depth (`None` = unbounded).
        max_depth: Option<usize>,
        /// Refuse splits creating partitions smaller than this (≥ 1).
        min_partition: usize,
    },
    /// Beam search over partial partitionings.
    Beam {
        /// Beam width (states kept per expansion).
        width: usize,
    },
    /// Budgeted exhaustive enumeration of the tree-partitioning space.
    Exhaustive {
        /// Cap on the number of partitionings enumerated.
        budget: u64,
    },
}

impl Default for SearchStrategy {
    fn default() -> Self {
        SearchStrategy::Quantify {
            max_depth: None,
            min_partition: 1,
        }
    }
}

impl SearchStrategy {
    /// Short strategy name (`quantify` / `beam` / `exhaustive`).
    pub fn name(&self) -> &'static str {
        match self {
            SearchStrategy::Quantify { .. } => "quantify",
            SearchStrategy::Beam { .. } => "beam",
            SearchStrategy::Exhaustive { .. } => "exhaustive",
        }
    }

    /// One-line description including the strategy's parameters.
    pub fn describe(&self) -> String {
        match self {
            SearchStrategy::Quantify {
                max_depth: None,
                min_partition: 1,
            } => "quantify".to_string(),
            SearchStrategy::Quantify {
                max_depth,
                min_partition,
            } => {
                let depth = max_depth
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "∞".into());
                format!("quantify(depth={depth}, min={min_partition})")
            }
            SearchStrategy::Beam { width } => format!("beam(width={width})"),
            SearchStrategy::Exhaustive { budget } => {
                format!("exhaustive(budget={budget})")
            }
        }
    }

    /// Runs the strategy on a prepared space under `criterion`.
    pub fn run(
        &self,
        criterion: FairnessCriterion,
        space: &RankingSpace,
    ) -> Result<CellOutcome> {
        self.run_budgeted(criterion, space, &RunBudget::unlimited())
    }

    /// Runs the strategy under a cooperative cancellation budget: a fired
    /// deadline or token aborts the search with
    /// [`crate::CoreError::Cancelled`] carrying partial [`SearchStats`].
    pub fn run_budgeted(
        &self,
        criterion: FairnessCriterion,
        space: &RankingSpace,
        budget: &RunBudget,
    ) -> Result<CellOutcome> {
        fault::sleep_point(fault::SLOW_CELL);
        match *self {
            SearchStrategy::Quantify {
                max_depth,
                min_partition,
            } => {
                let mut search = Quantify::new(criterion)
                    .with_min_partition_size(min_partition)
                    .with_run_budget(budget.clone());
                if let Some(depth) = max_depth {
                    search = search.with_max_depth(depth);
                }
                let outcome = search.run_space(space)?;
                Ok(CellOutcome {
                    unfairness: outcome.unfairness,
                    num_partitions: outcome.partitions.len(),
                    stats: outcome.stats,
                    elapsed: outcome.elapsed,
                    quantify: Some(outcome),
                })
            }
            SearchStrategy::Beam { width } => {
                let outcome = BeamSearch::new(criterion, width)
                    .with_run_budget(budget.clone())
                    .run_space(space)?;
                Ok(CellOutcome {
                    unfairness: outcome.unfairness,
                    num_partitions: outcome.partitions.len(),
                    stats: SearchStats {
                        nodes_evaluated: outcome.states_expanded,
                        splits_performed: 0,
                        candidate_splits: 0,
                        histograms_built: outcome.engine_stats.histograms_built,
                        emd_calls: outcome.engine_stats.emd_calls,
                        emd_cache_hits: outcome.engine_stats.emd_cache_hits,
                        pairwise_batches: outcome.engine_stats.pairwise_batches,
                        delta_reused_histograms: outcome.engine_stats.delta_reused_histograms,
                        delta_invalidated_emds: outcome.engine_stats.delta_invalidated_emds,
                    },
                    elapsed: outcome.elapsed,
                    quantify: None,
                })
            }
            SearchStrategy::Exhaustive { budget: cap } => {
                let outcome = ExhaustiveSearch::new(criterion)
                    .with_budget(cap)
                    .with_run_budget(budget.clone())
                    .run_space(space)?;
                Ok(CellOutcome {
                    unfairness: outcome.best_value,
                    num_partitions: outcome.best_partitions.len(),
                    stats: SearchStats {
                        nodes_evaluated: usize::try_from(outcome.trees_enumerated)
                            .unwrap_or(usize::MAX),
                        splits_performed: 0,
                        candidate_splits: 0,
                        histograms_built: outcome.engine_stats.histograms_built,
                        emd_calls: outcome.engine_stats.emd_calls,
                        emd_cache_hits: outcome.engine_stats.emd_cache_hits,
                        pairwise_batches: outcome.engine_stats.pairwise_batches,
                        delta_reused_histograms: outcome.engine_stats.delta_reused_histograms,
                        delta_invalidated_emds: outcome.engine_stats.delta_invalidated_emds,
                    },
                    elapsed: outcome.elapsed,
                    quantify: None,
                })
            }
        }
    }
}

/// Content-addressed identity of a memoizable plan cell.
///
/// Two cells with equal keys are guaranteed (by construction, not by
/// trust) to compute the identical [`CellOutcome`]: the `dataset` half
/// fingerprints the source dataset's columnar content and schema, and
/// the `spec` half fingerprints the canonicalized, fully *resolved* cell
/// spec — the concrete score source (named functions are resolved to
/// their weights first, so two sessions using the same name for
/// different functions never collide), the filter, the range-fitted
/// criterion (objective, aggregator, bins, histogram range, EMD
/// backend), and the search strategy. Since plan cells are deterministic
/// functions of those inputs (pinned since the plan layer landed), a
/// cache keyed on `CellKey` serves results bitwise-identical to a fresh
/// compute.
///
/// Mutable inputs (the streaming re-audit's evolving spaces) have no
/// stable content identity and therefore never get a key — they bypass
/// any cell cache and run through the incremental `DeltaEngine` instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellKey {
    /// Fingerprint of the source dataset (columnar content + schema).
    pub dataset: Fingerprint,
    /// Fingerprint of the canonicalized resolved cell spec.
    pub spec: Fingerprint,
}

impl CellKey {
    /// Derives a key from a dataset fingerprint and the canonical byte
    /// serialization of the resolved cell spec.
    pub fn new(dataset: Fingerprint, spec_bytes: &[u8]) -> CellKey {
        let mut h = ContentHasher::new();
        h.update_str("fairank.cellkey.v1");
        h.update_u64(dataset.hi);
        h.update_u64(dataset.lo);
        h.update_len(spec_bytes.len());
        h.update(spec_bytes);
        CellKey {
            dataset,
            spec: h.finish(),
        }
    }
}

/// The normalized result of one plan cell, regardless of strategy.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Unfairness of the best/final partitioning under the criterion.
    pub unfairness: f64,
    /// Number of partitions in that partitioning.
    pub num_partitions: usize,
    /// Engine work counters (per-strategy fields normalized into
    /// [`SearchStats`]; beam/exhaustive report expansions/enumerations via
    /// `nodes_evaluated`).
    pub stats: SearchStats,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
    /// The full `QUANTIFY` outcome when the strategy was
    /// [`SearchStrategy::Quantify`] — this is what panels are made of.
    pub quantify: Option<QuantifyOutcome>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ProtectedAttribute;

    fn space() -> RankingSpace {
        let g = ProtectedAttribute::from_values(
            "g",
            &["a", "a", "b", "b", "a", "b", "a", "b"],
        );
        let h = ProtectedAttribute::from_values(
            "h",
            &["x", "y", "x", "y", "y", "x", "x", "y"],
        );
        RankingSpace::new(
            vec![g, h],
            vec![0.1, 0.2, 0.8, 0.9, 0.15, 0.85, 0.12, 0.88],
        )
        .unwrap()
    }

    #[test]
    fn default_strategy_matches_plain_quantify() {
        let space = space();
        let criterion = FairnessCriterion::default().fit_range(&space);
        let direct = Quantify::new(criterion).run_space(&space).unwrap();
        let cell = SearchStrategy::default().run(criterion, &space).unwrap();
        assert_eq!(cell.unfairness, direct.unfairness);
        assert_eq!(cell.num_partitions, direct.partitions.len());
        assert_eq!(cell.stats, direct.stats);
        let quantify = cell.quantify.expect("quantify strategy keeps the outcome");
        assert_eq!(quantify.tree.len(), direct.tree.len());
    }

    #[test]
    fn beam_and_exhaustive_report_through_the_same_shape() {
        let space = space();
        let criterion = FairnessCriterion::default().fit_range(&space);
        let beam = SearchStrategy::Beam { width: 3 }
            .run(criterion, &space)
            .unwrap();
        assert!(beam.quantify.is_none());
        assert!(beam.num_partitions >= 1);
        assert!(beam.stats.nodes_evaluated >= 1);

        let exhaustive = SearchStrategy::Exhaustive { budget: 10_000 }
            .run(criterion, &space)
            .unwrap();
        assert!(exhaustive.quantify.is_none());
        // The exhaustive optimum is at least as unfair as any heuristic
        // under the default most-unfair objective.
        assert!(exhaustive.unfairness >= beam.unfairness - 1e-12);
    }

    #[test]
    fn names_and_descriptions() {
        assert_eq!(SearchStrategy::default().name(), "quantify");
        assert_eq!(SearchStrategy::default().describe(), "quantify");
        assert_eq!(
            SearchStrategy::Quantify {
                max_depth: Some(2),
                min_partition: 5
            }
            .describe(),
            "quantify(depth=2, min=5)"
        );
        assert_eq!(SearchStrategy::Beam { width: 4 }.describe(), "beam(width=4)");
        assert_eq!(
            SearchStrategy::Exhaustive { budget: 99 }.describe(),
            "exhaustive(budget=99)"
        );
    }

    #[test]
    fn strategy_serde_round_trip() {
        for strategy in [
            SearchStrategy::default(),
            SearchStrategy::Quantify {
                max_depth: Some(3),
                min_partition: 2,
            },
            SearchStrategy::Beam { width: 8 },
            SearchStrategy::Exhaustive { budget: 1234 },
        ] {
            let json = serde_json::to_string(&strategy).unwrap();
            let back: SearchStrategy = serde_json::from_str(&json).unwrap();
            assert_eq!(strategy, back);
        }
    }
}
