//! Pairwise EMD computations over sets of histograms.
//!
//! The quantification objective repeatedly needs (a) all unordered pairwise
//! distances within a partitioning and (b) cross distances between a
//! candidate family and a set of siblings (Algorithm 1 lines 4 and 8).
//! Distances are symmetric, so the full matrix stores only the upper
//! triangle. Both aggregations hand the whole histogram set to the
//! configured backend in one call ([`Emd::pairwise`] / [`Emd::cross`]), so
//! batching backends can hoist per-histogram work out of the pair loop.

use crate::emd::Emd;
use crate::error::Result;
use crate::histogram::Histogram;

/// All unordered pairwise distances between `hists`, in lexicographic pair
/// order `(0,1), (0,2), …, (n-2, n-1)`. Fewer than two histograms yield an
/// empty vector.
pub fn pairwise_distances(hists: &[Histogram], emd: &Emd) -> Result<Vec<f64>> {
    if hists.len() < 2 {
        return Ok(Vec::new());
    }
    emd.pairwise(hists)
}

/// All distances between each histogram in `left` and each in `right`
/// (the `EMD(children, siblings, f)` set of Algorithm 1 line 8).
pub fn cross_distances(left: &[Histogram], right: &[Histogram], emd: &Emd) -> Result<Vec<f64>> {
    emd.cross(left, right)
}

/// A symmetric distance matrix with zero diagonal, stored as the upper
/// triangle. Used by reports to show which pair of groups diverges most.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    upper: Vec<f64>,
}

impl DistanceMatrix {
    /// Computes the full matrix for `hists`.
    pub fn compute(hists: &[Histogram], emd: &Emd) -> Result<Self> {
        let upper = pairwise_distances(hists, emd)?;
        Ok(DistanceMatrix {
            n: hists.len(),
            upper,
        })
    }

    /// Matrix dimension.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for a 0×0 matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between items `i` and `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        if i == j {
            return 0.0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        // Offset of pair (a, b) in lexicographic upper-triangle order.
        let idx = a * self.n - a * (a + 1) / 2 + (b - a - 1);
        self.upper[idx]
    }

    /// The flattened upper triangle in pair order.
    pub fn distances(&self) -> &[f64] {
        &self.upper
    }

    /// The `(i, j, distance)` of the maximally distant pair, if any.
    pub fn max_pair(&self) -> Option<(usize, usize, f64)> {
        self.iter_pairs()
            .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// The `(i, j, distance)` of the minimally distant pair, if any.
    pub fn min_pair(&self) -> Option<(usize, usize, f64)> {
        self.iter_pairs()
            .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Iterates `(i, j, distance)` over the upper triangle.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let n = self.n;
        (0..n).flat_map(move |i| ((i + 1)..n).map(move |j| (i, j, self.get(i, j))))
    }

    /// Mean distance from item `i` to every other item (used to rank the
    /// most "isolated" — i.e. most unfairly treated — group).
    pub fn mean_from(&self, i: usize) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let sum: f64 = (0..self.n).filter(|&j| j != i).map(|j| self.get(i, j)).sum();
        sum / (self.n - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::{Histogram, HistogramSpec};

    fn hists() -> Vec<Histogram> {
        let spec = HistogramSpec::unit(10).unwrap();
        vec![
            Histogram::from_scores(spec, [0.05, 0.05]),
            Histogram::from_scores(spec, [0.55, 0.55]),
            Histogram::from_scores(spec, [0.95, 0.95]),
        ]
    }

    #[test]
    fn pairwise_count_and_values() {
        let d = pairwise_distances(&hists(), &Emd::default()).unwrap();
        assert_eq!(d.len(), 3);
        assert!((d[0] - 0.5).abs() < 1e-9); // bin 0 center 0.05 -> bin 5 center 0.55
        assert!((d[1] - 0.9).abs() < 1e-9);
        assert!((d[2] - 0.4).abs() < 1e-9);
    }

    #[test]
    fn pairwise_of_small_sets_is_empty() {
        let spec = HistogramSpec::unit(4).unwrap();
        let h = Histogram::from_scores(spec, [0.5]);
        assert!(pairwise_distances(&[], &Emd::default()).unwrap().is_empty());
        assert!(pairwise_distances(std::slice::from_ref(&h), &Emd::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn cross_distances_shape() {
        let hs = hists();
        let d = cross_distances(&hs[..1], &hs[1..], &Emd::default()).unwrap();
        assert_eq!(d.len(), 2);
        let d2 = cross_distances(&hs, &hs, &Emd::default()).unwrap();
        assert_eq!(d2.len(), 9);
        // Diagonal entries of the self-cross are zero.
        assert!(d2[0].abs() < 1e-12 && d2[4].abs() < 1e-12 && d2[8].abs() < 1e-12);
    }

    #[test]
    fn matrix_indexing_is_symmetric() {
        let m = DistanceMatrix::compute(&hists(), &Emd::default()).unwrap();
        assert_eq!(m.len(), 3);
        for i in 0..3 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
        assert!((m.get(0, 2) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn matrix_extremes() {
        let m = DistanceMatrix::compute(&hists(), &Emd::default()).unwrap();
        let (i, j, d) = m.max_pair().unwrap();
        assert_eq!((i, j), (0, 2));
        assert!((d - 0.9).abs() < 1e-9);
        let (i, j, d) = m.min_pair().unwrap();
        assert_eq!((i, j), (1, 2));
        assert!((d - 0.4).abs() < 1e-9);
    }

    #[test]
    fn mean_from_ranks_isolation() {
        let m = DistanceMatrix::compute(&hists(), &Emd::default()).unwrap();
        // Item 0 (low scores) is farther from the others on average than 1.
        assert!(m.mean_from(0) > m.mean_from(1));
    }

    #[test]
    fn empty_matrix() {
        let m = DistanceMatrix::compute(&[], &Emd::default()).unwrap();
        assert!(m.is_empty());
        assert!(m.max_pair().is_none());
        assert!(m.min_pair().is_none());
        assert_eq!(m.mean_from(0), 0.0);
    }
}
