//! Beam search over the partitioning space — an extension of the paper's
//! greedy Algorithm 1 that trades latency for solution quality.
//!
//! A *state* is a set of finalized partitions plus a frontier of groups not
//! yet decided. Expanding a state pops one frontier group and branches:
//! keep it as a final partition, or split it on any remaining attribute.
//! After each expansion wave only the `width` best states (by the
//! criterion's objective, evaluated on `finalized ∪ frontier`) survive.
//!
//! `width = 1` behaves like a slightly stronger greedy (it evaluates whole
//! partitionings, not sibling sets); `width = ∞` degenerates into the
//! exhaustive enumeration. Experiment E13 measures the quality/latency
//! trade-off against both ends.

use std::time::{Duration, Instant};

use crate::cancel::RunBudget;
use crate::engine::{EngineStats, SplitEngine};
use crate::error::{CoreError, Result};
use crate::fairness::FairnessCriterion;
use crate::partition::{is_full_disjoint, Partition};
use crate::space::RankingSpace;

/// Total order for beam pruning: best state first under `objective`, with
/// NaN ranking strictly worst under *both* objectives.
///
/// The previous comparator (`partial_cmp(..).unwrap_or(Equal)`) was not a
/// total order when a NaN value appeared — `sort_by` may panic on (or
/// arbitrarily reorder under) an inconsistent comparator, and declaring NaN
/// "equal" to everything let a poisoned state crowd real candidates out of
/// the beam. A bare `total_cmp` + reverse would be worse still: positive
/// NaN compares greatest, so reversing for `MostUnfair` would rank a NaN
/// state *best*. Hence the explicit NaN arm before the objective flip.
fn state_order(objective: crate::fairness::Objective, a: f64, b: f64) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => {
            let ord = a.total_cmp(&b);
            match objective {
                crate::fairness::Objective::MostUnfair => ord.reverse(),
                crate::fairness::Objective::LeastUnfair => ord,
            }
        }
    }
}

/// One search state: finalized partitions + undecided frontier groups.
#[derive(Debug, Clone)]
struct State {
    finalized: Vec<Partition>,
    frontier: Vec<(Partition, Vec<usize>)>,
    /// Criterion value over `finalized ∪ frontier` partitions.
    value: f64,
}

impl State {
    fn is_complete(&self) -> bool {
        self.frontier.is_empty()
    }

    fn all_partitions(&self) -> Vec<Partition> {
        let mut out = self.finalized.clone();
        out.extend(self.frontier.iter().map(|(p, _)| p.clone()));
        out
    }
}

/// Outcome of a beam search.
#[derive(Debug, Clone)]
pub struct BeamOutcome {
    /// The best complete partitioning found.
    pub partitions: Vec<Partition>,
    /// Its unfairness under the criterion.
    pub unfairness: f64,
    /// States expanded during the search.
    pub states_expanded: usize,
    /// Evaluation-work counters from the shared split engine (states
    /// revisit the same partitions constantly, so cache hits dominate).
    pub engine_stats: EngineStats,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// Configured beam search.
#[derive(Debug, Clone)]
pub struct BeamSearch {
    criterion: FairnessCriterion,
    width: usize,
    budget: RunBudget,
}

impl BeamSearch {
    /// A beam of the given width under `criterion`.
    pub fn new(criterion: FairnessCriterion, width: usize) -> Self {
        BeamSearch {
            criterion,
            width: width.max(1),
            budget: RunBudget::unlimited(),
        }
    }

    /// The beam width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Attaches a cooperative cancellation budget; a fired budget aborts
    /// with [`CoreError::Cancelled`] (`nodes_evaluated` = states expanded).
    pub fn with_run_budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Runs the search on a prepared ranking space.
    pub fn run_space(&self, space: &RankingSpace) -> Result<BeamOutcome> {
        if space.num_individuals() == 0 {
            return Err(CoreError::EmptyInput);
        }
        let start = Instant::now();
        let mut engine = SplitEngine::new(space, self.criterion);
        engine.set_run_budget(&self.budget);
        let mut states_expanded = 0usize;
        match self.search(&mut engine, space, &mut states_expanded) {
            Ok((partitions, unfairness)) => Ok(BeamOutcome {
                partitions,
                unfairness,
                states_expanded,
                engine_stats: engine.stats(),
                elapsed: start.elapsed(),
            }),
            Err(CoreError::Cancelled { reason, mut stats }) => {
                stats.nodes_evaluated = states_expanded;
                Err(CoreError::Cancelled { reason, stats })
            }
            Err(e) => Err(e),
        }
    }

    fn search(
        &self,
        engine: &mut SplitEngine<'_>,
        space: &RankingSpace,
        states_expanded: &mut usize,
    ) -> Result<(Vec<Partition>, f64)> {
        let attrs: Vec<usize> = (0..space.attributes().len()).collect();
        let root = Partition::root(space);
        let initial = State {
            value: 0.0, // single group: no pairs
            finalized: Vec::new(),
            frontier: vec![(root, attrs)],
        };

        let mut beam = vec![initial];
        let mut best: Option<(Vec<Partition>, f64)> = None;

        while !beam.is_empty() {
            let mut next: Vec<State> = Vec::new();
            for state in beam.drain(..) {
                if state.is_complete() {
                    let better = match &best {
                        None => true,
                        Some((_, incumbent)) => {
                            self.criterion.objective.is_better(state.value, *incumbent)
                        }
                    };
                    if better {
                        best = Some((state.finalized.clone(), state.value));
                    }
                    continue;
                }
                // State boundary: poll even when the state's evaluation is
                // fully memoized.
                engine.check_budget()?;
                *states_expanded += 1;
                let mut state = state;
                let (group, avail) = state.frontier.pop().expect("non-complete state");

                // Branch 1: finalize the group.
                {
                    let mut s = state.clone();
                    s.finalized.push(group.clone());
                    s.value = engine.unfairness(&s.all_partitions())?;
                    next.push(s);
                }
                // Branch 2: split on each attribute that divides the group.
                for &attr in &avail {
                    let children = group.split(space, attr);
                    if children.len() < 2 {
                        continue;
                    }
                    let rest: Vec<usize> =
                        avail.iter().copied().filter(|&a| a != attr).collect();
                    let mut s = state.clone();
                    for child in children {
                        s.frontier.push((child, rest.clone()));
                    }
                    s.value = engine.unfairness(&s.all_partitions())?;
                    next.push(s);
                }
            }
            // Keep the `width` best states. The stable sort preserves
            // creation order among equal values, so pruning is deterministic.
            next.sort_by(|a, b| state_order(self.criterion.objective, a.value, b.value));
            next.truncate(self.width);
            beam = next;
        }

        let (partitions, unfairness) =
            best.expect("the all-leaf branch always completes");
        debug_assert!(is_full_disjoint(&partitions, space.num_individuals()));
        Ok((partitions, unfairness))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveSearch;
    use crate::fairness::{Aggregator, Objective};
    use crate::quantify::Quantify;
    use crate::space::ProtectedAttribute;

    fn space() -> RankingSpace {
        let g = ProtectedAttribute::from_values(
            "g",
            &["a", "a", "b", "b", "a", "b", "a", "b"],
        );
        let h = ProtectedAttribute::from_values(
            "h",
            &["x", "y", "x", "y", "y", "x", "x", "y"],
        );
        RankingSpace::new(
            vec![g, h],
            vec![0.1, 0.2, 0.8, 0.9, 0.15, 0.85, 0.12, 0.88],
        )
        .unwrap()
    }

    #[test]
    fn beam_produces_valid_partitionings() {
        let s = space();
        for width in [1usize, 2, 8] {
            let out = BeamSearch::new(FairnessCriterion::default(), width)
                .run_space(&s)
                .unwrap();
            assert!(is_full_disjoint(&out.partitions, 8), "width {width}");
            assert!(out.unfairness.is_finite());
            assert!(out.states_expanded > 0);
        }
    }

    #[test]
    fn wide_beam_matches_exhaustive_optimum() {
        let s = space();
        let crit = FairnessCriterion::default();
        let exact = ExhaustiveSearch::new(crit).run_space(&s).unwrap();
        let beam = BeamSearch::new(crit, 10_000).run_space(&s).unwrap();
        assert!(
            (beam.unfairness - exact.best_value).abs() < 1e-12,
            "beam {} vs exact {}",
            beam.unfairness,
            exact.best_value
        );
    }

    #[test]
    fn beam_quality_is_monotone_in_width() {
        let s = space();
        let crit = FairnessCriterion::default();
        let narrow = BeamSearch::new(crit, 1).run_space(&s).unwrap();
        let wide = BeamSearch::new(crit, 64).run_space(&s).unwrap();
        assert!(wide.unfairness >= narrow.unfairness - 1e-12);
    }

    #[test]
    fn beam_never_beats_exhaustive() {
        let s = space();
        for objective in [Objective::MostUnfair, Objective::LeastUnfair] {
            let crit = FairnessCriterion::new(objective, Aggregator::Mean);
            let exact = ExhaustiveSearch::new(crit).run_space(&s).unwrap();
            let beam = BeamSearch::new(crit, 4).run_space(&s).unwrap();
            match objective {
                Objective::MostUnfair => {
                    assert!(beam.unfairness <= exact.best_value + 1e-12)
                }
                Objective::LeastUnfair => {
                    assert!(beam.unfairness >= exact.best_value - 1e-12)
                }
            }
        }
    }

    #[test]
    fn beam_at_least_as_good_as_greedy_here() {
        // Not a theorem in general, but on this separable space the whole-
        // partitioning evaluation should not lose to the sibling heuristic.
        let s = space();
        let crit = FairnessCriterion::default();
        let greedy = Quantify::new(crit).run_space(&s).unwrap();
        let beam = BeamSearch::new(crit, 16).run_space(&s).unwrap();
        assert!(beam.unfairness >= greedy.unfairness - 1e-12);
    }

    #[test]
    fn cancelled_token_aborts_beam_search() {
        use crate::cancel::{CancelReason, CancelToken, RunBudget};
        let space = space();
        let criterion = FairnessCriterion::default().fit_range(&space);
        let token = CancelToken::new();
        token.cancel(CancelReason::Disconnected);
        let err = BeamSearch::new(criterion, 3)
            .with_run_budget(RunBudget::unlimited().with_token(token))
            .run_space(&space)
            .unwrap_err();
        match err {
            CoreError::Cancelled { reason, .. } => {
                assert_eq!(reason, CancelReason::Disconnected);
            }
            other => panic!("expected cancellation, got {other:?}"),
        }
    }

    #[test]
    fn beam_states_share_the_engine_caches() {
        let s = space();
        let out = BeamSearch::new(FairnessCriterion::default(), 4)
            .run_space(&s)
            .unwrap();
        // Sibling states differ in one group only, so most distance lookups
        // are repeats served from the memo.
        assert!(out.engine_stats.emd_cache_hits > 0);
        assert!(out.engine_stats.emd_calls > 0);
        assert!(out.engine_stats.histograms_built > 0);
    }

    #[test]
    fn zero_width_is_clamped_to_one() {
        let s = space();
        let out = BeamSearch::new(FairnessCriterion::default(), 0)
            .run_space(&s)
            .unwrap();
        assert!(is_full_disjoint(&out.partitions, 8));
        assert_eq!(
            BeamSearch::new(FairnessCriterion::default(), 0).width(),
            1
        );
    }

    #[test]
    fn state_order_is_total_and_ranks_nan_strictly_worst() {
        use std::cmp::Ordering;
        let values = [f64::NAN, 0.3, f64::NAN, 0.0, 0.7, -0.0, 0.3];
        for objective in [Objective::MostUnfair, Objective::LeastUnfair] {
            // NaN loses to every real value under BOTH objectives (the old
            // comparator declared NaN equal to everything, and a bare
            // total_cmp+reverse would rank NaN *best* under MostUnfair).
            assert_eq!(state_order(objective, f64::NAN, 0.0), Ordering::Greater);
            assert_eq!(state_order(objective, 0.0, f64::NAN), Ordering::Less);
            assert_eq!(state_order(objective, f64::NAN, f64::NAN), Ordering::Equal);

            // Totality: antisymmetry and transitivity over a mixed set, so
            // sort_by can never panic on an inconsistent comparator.
            for &a in &values {
                for &b in &values {
                    let ab = state_order(objective, a, b);
                    let ba = state_order(objective, b, a);
                    assert_eq!(ab.reverse(), ba, "antisymmetry for {a} vs {b}");
                    for &c in &values {
                        if state_order(objective, a, b) != Ordering::Greater
                            && state_order(objective, b, c) != Ordering::Greater
                        {
                            assert_ne!(
                                state_order(objective, a, c),
                                Ordering::Greater,
                                "transitivity for {a} ≤ {b} ≤ {c}"
                            );
                        }
                    }
                }
            }

            // Sorting a beam containing NaN pushes it to the back, so
            // truncation drops the poisoned state first.
            let mut vals = values.to_vec();
            vals.sort_by(|a, b| state_order(objective, *a, *b));
            assert!(vals[vals.len() - 1].is_nan());
            assert!(vals[vals.len() - 2].is_nan());
            assert!(vals[..vals.len() - 2].iter().all(|v| !v.is_nan()));
        }
        // The finite prefix is objective-ordered: best first.
        let mut most = [0.3, 0.0, 0.7].to_vec();
        most.sort_by(|a, b| state_order(Objective::MostUnfair, *a, *b));
        assert_eq!(most, vec![0.7, 0.3, 0.0]);
        let mut least = [0.3, 0.0, 0.7].to_vec();
        least.sort_by(|a, b| state_order(Objective::LeastUnfair, *a, *b));
        assert_eq!(least, vec![0.0, 0.3, 0.7]);
    }

    #[test]
    fn single_individual_space_yields_trivial_partitioning() {
        let s = space();
        let single = s.select(&[0]).unwrap();
        let out = BeamSearch::new(FairnessCriterion::default(), 2)
            .run_space(&single)
            .unwrap();
        assert_eq!(out.partitions.len(), 1);
        assert_eq!(out.unfairness, 0.0);
    }
}
