//! Exhaustive enumeration of the tree-structured partitioning space —
//! the exact (exponential) baseline Algorithm 1 approximates.
//!
//! The space matches the search space of `QUANTIFY`: a partitioning is
//! obtained by recursively either *stopping* at a group or *splitting* it on
//! one still-unused protected attribute (Figure 2 of the paper shows such a
//! partitioning: split on Gender, then split only the Male side on
//! Language). Distinct trees can induce the same leaf partitioning (e.g.
//! different split orders followed by full expansion); the enumerator visits
//! trees and reports both the tree count and the number of distinct leaf
//! partitionings it saw.
//!
//! This module exists for evaluation (experiment E3: heuristic vs. optimum)
//! and is deliberately budgeted: enumeration stops with
//! [`CoreError::BudgetExceeded`] once the configured number of partitionings
//! has been visited.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use crate::cancel::RunBudget;
use crate::engine::{EngineStats, SplitEngine};
use crate::error::{CoreError, Result};
use crate::fairness::FairnessCriterion;
use crate::partition::{is_full_disjoint, Partition};
use crate::space::RankingSpace;

/// Default enumeration budget: generous for the instance sizes E3 uses,
/// small enough to fail fast on accidentally huge inputs.
pub const DEFAULT_BUDGET: u64 = 5_000_000;

/// Outcome of an exhaustive search.
#[derive(Debug, Clone)]
pub struct ExhaustiveOutcome {
    /// The best partitioning found (leaf set).
    pub best_partitions: Vec<Partition>,
    /// Its unfairness under the criterion.
    pub best_value: f64,
    /// Number of (tree-shaped) partitionings enumerated.
    pub trees_enumerated: u64,
    /// Number of *distinct* leaf partitionings among them.
    pub distinct_partitionings: u64,
    /// Evaluation-work counters from the shared split engine (enumerated
    /// partitionings overlap heavily, so cache hits dominate).
    pub engine_stats: EngineStats,
    /// Wall-clock time of the enumeration.
    pub elapsed: Duration,
}

/// Budgeted exhaustive search over the tree-partitioning space.
#[derive(Debug, Clone)]
pub struct ExhaustiveSearch {
    criterion: FairnessCriterion,
    budget: u64,
    dedupe: bool,
    run_budget: RunBudget,
}

impl Default for ExhaustiveSearch {
    fn default() -> Self {
        ExhaustiveSearch {
            criterion: FairnessCriterion::default(),
            budget: DEFAULT_BUDGET,
            dedupe: true,
            run_budget: RunBudget::unlimited(),
        }
    }
}

impl ExhaustiveSearch {
    /// A search under `criterion` with the default budget.
    pub fn new(criterion: FairnessCriterion) -> Self {
        ExhaustiveSearch {
            criterion,
            ..Default::default()
        }
    }

    /// Caps the number of partitionings enumerated.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Disables distinct-partitioning tracking (saves memory on large runs;
    /// `distinct_partitionings` then equals 0).
    pub fn without_dedupe(mut self) -> Self {
        self.dedupe = false;
        self
    }

    /// Attaches a cooperative cancellation budget; a fired budget aborts
    /// with [`CoreError::Cancelled`] (`nodes_evaluated` = trees enumerated).
    pub fn with_run_budget(mut self, budget: RunBudget) -> Self {
        self.run_budget = budget;
        self
    }

    /// Runs the enumeration, returning the optimum under the criterion.
    pub fn run_space(&self, space: &RankingSpace) -> Result<ExhaustiveOutcome> {
        if space.num_individuals() == 0 {
            return Err(CoreError::EmptyInput);
        }
        let start = Instant::now();
        let root = Partition::root(space);
        let attrs: Vec<usize> = (0..space.attributes().len()).collect();

        let mut engine = SplitEngine::new(space, self.criterion);
        engine.set_run_budget(&self.run_budget);
        let mut state = EnumState {
            space,
            criterion: &self.criterion,
            engine,
            budget: self.budget,
            trees: 0,
            best: None,
            seen: self.dedupe.then(HashSet::new),
        };
        let mut worklist = vec![(root, attrs)];
        let mut acc: Vec<Partition> = Vec::new();
        if let Err(err) = state.recurse(&mut worklist, &mut acc) {
            if let CoreError::Cancelled { reason, mut stats } = err {
                stats.nodes_evaluated = usize::try_from(state.trees).unwrap_or(usize::MAX);
                return Err(CoreError::Cancelled { reason, stats });
            }
            return Err(err);
        }

        let (best_partitions, best_value) = state
            .best
            .expect("at least the trivial partitioning is enumerated");
        debug_assert!(is_full_disjoint(&best_partitions, space.num_individuals()));
        Ok(ExhaustiveOutcome {
            best_partitions,
            best_value,
            trees_enumerated: state.trees,
            distinct_partitionings: state.seen.map_or(0, |s| s.len() as u64),
            engine_stats: state.engine.stats(),
            elapsed: start.elapsed(),
        })
    }

    /// Counts the partitioning trees for a space without evaluating any of
    /// them (cheap dry run used by experiments to report the search-space
    /// size). Stops at the budget and reports `None` when it is exceeded.
    pub fn count_trees(space: &RankingSpace, budget: u64) -> Option<u64> {
        fn count(
            space: &RankingSpace,
            worklist: &mut Vec<(Partition, Vec<usize>)>,
            budget: u64,
            so_far: &mut u64,
        ) -> bool {
            let Some((node, avail)) = worklist.pop() else {
                *so_far += 1;
                return *so_far <= budget;
            };
            // Option 1: leaf.
            if !count(space, worklist, budget, so_far) {
                worklist.push((node, avail));
                return false;
            }
            // Option 2: split on each usable attribute.
            for &a in &avail {
                let children = node.split(space, a);
                if children.len() < 2 {
                    continue;
                }
                let rest: Vec<usize> = avail.iter().copied().filter(|&x| x != a).collect();
                let mark = worklist.len();
                for c in children {
                    worklist.push((c, rest.clone()));
                }
                let ok = count(space, worklist, budget, so_far);
                worklist.truncate(mark);
                if !ok {
                    worklist.push((node, avail));
                    return false;
                }
            }
            worklist.push((node, avail));
            true
        }

        let root = Partition::root(space);
        let attrs: Vec<usize> = (0..space.attributes().len()).collect();
        let mut worklist = vec![(root, attrs)];
        let mut so_far = 0u64;
        count(space, &mut worklist, budget, &mut so_far).then_some(so_far)
    }
}

struct EnumState<'a> {
    space: &'a RankingSpace,
    criterion: &'a FairnessCriterion,
    engine: SplitEngine<'a>,
    budget: u64,
    trees: u64,
    best: Option<(Vec<Partition>, f64)>,
    seen: Option<HashSet<Vec<u64>>>,
}

impl EnumState<'_> {
    /// Worklist-driven recursion: pop a group, either keep it as a leaf or
    /// split it every possible way, recursing over the remaining worklist to
    /// build the cartesian product of per-group choices.
    fn recurse(
        &mut self,
        worklist: &mut Vec<(Partition, Vec<usize>)>,
        acc: &mut Vec<Partition>,
    ) -> Result<()> {
        let Some((node, avail)) = worklist.pop() else {
            // A complete partitioning.
            self.trees += 1;
            if self.trees > self.budget {
                return Err(CoreError::BudgetExceeded {
                    budget: self.budget,
                });
            }
            // Tree boundary: poll even when evaluation is fully memoized.
            self.engine.check_budget()?;
            let value = self.engine.unfairness(acc)?;
            if let Some(seen) = &mut self.seen {
                seen.insert(signature(acc, self.space.num_individuals()));
            }
            let better = match &self.best {
                None => true,
                Some((_, incumbent)) => self.criterion.objective.is_better(value, *incumbent),
            };
            if better {
                self.best = Some((acc.clone(), value));
            }
            return Ok(());
        };

        // Option 1: the group is final.
        acc.push(node.clone());
        let r = self.recurse(worklist, acc);
        acc.pop();
        r?;

        // Option 2: split on each attribute that actually divides the group.
        for &a in &avail {
            let children = node.split(self.space, a);
            if children.len() < 2 {
                continue;
            }
            let rest: Vec<usize> = avail.iter().copied().filter(|&x| x != a).collect();
            let mark = worklist.len();
            for c in children {
                worklist.push((c, rest.clone()));
            }
            let r = self.recurse(worklist, acc);
            worklist.truncate(mark);
            r?;
        }

        worklist.push((node, avail));
        Ok(())
    }
}

/// Canonical signature of a leaf partitioning: for each row, the index of
/// its partition after sorting partitions by their smallest row. Packed into
/// a `Vec<u64>` bitset-of-groups representation.
fn signature(partitions: &[Partition], n: usize) -> Vec<u64> {
    let mut group_of = vec![u32::MAX; n];
    let mut order: Vec<usize> = (0..partitions.len()).collect();
    order.sort_by_key(|&i| partitions[i].rows.iter().min().copied().unwrap_or(u32::MAX));
    for (gid, &pi) in order.iter().enumerate() {
        for &r in &partitions[pi].rows {
            group_of[r as usize] = gid as u32;
        }
    }
    // Pack two u32 per u64 for compactness.
    let mut packed = Vec::with_capacity(n.div_ceil(2));
    for chunk in group_of.chunks(2) {
        let lo = chunk[0] as u64;
        let hi = chunk.get(1).copied().unwrap_or(0) as u64;
        packed.push(lo | (hi << 32));
    }
    packed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fairness::{Aggregator, Objective};
    use crate::quantify::Quantify;
    use crate::space::ProtectedAttribute;

    fn small_space() -> RankingSpace {
        let gender = ProtectedAttribute::from_values("g", &["F", "M", "F", "M", "F", "M"]);
        let lang = ProtectedAttribute::from_values("l", &["en", "en", "fr", "fr", "en", "fr"]);
        RankingSpace::new(
            vec![gender, lang],
            vec![0.1, 0.9, 0.3, 0.7, 0.2, 0.8],
        )
        .unwrap()
    }

    #[test]
    fn enumerates_trivial_space() {
        let space = RankingSpace::new(vec![], vec![0.5, 0.7]).unwrap();
        let out = ExhaustiveSearch::default().run_space(&space).unwrap();
        assert_eq!(out.trees_enumerated, 1);
        assert_eq!(out.distinct_partitionings, 1);
        assert_eq!(out.best_partitions.len(), 1);
        assert_eq!(out.best_value, 0.0);
    }

    #[test]
    fn tree_count_matches_manual_enumeration() {
        // One binary attribute: {leaf} or {split} = 2 trees.
        let g = ProtectedAttribute::from_values("g", &["a", "b"]);
        let space = RankingSpace::new(vec![g], vec![0.2, 0.8]).unwrap();
        let out = ExhaustiveSearch::default().run_space(&space).unwrap();
        assert_eq!(out.trees_enumerated, 2);
        assert_eq!(
            ExhaustiveSearch::count_trees(&space, 100),
            Some(2)
        );
    }

    #[test]
    fn two_binary_attributes_tree_count() {
        // Root choices: leaf; split g then each child {leaf, split l} (2×2);
        // split l then each child {leaf, split g} (2×2) = 1 + 4 + 4 = 9.
        let space = small_space();
        // Restrict to 4 rows covering all combos to keep children binary.
        let sub = space.select(&[0, 1, 2, 3]).unwrap();
        let out = ExhaustiveSearch::default().run_space(&sub).unwrap();
        assert_eq!(out.trees_enumerated, 9);
        assert_eq!(ExhaustiveSearch::count_trees(&sub, 100), Some(9));
    }

    #[test]
    fn distinct_leaf_partitionings_deduplicate_orders() {
        let space = small_space();
        let sub = space.select(&[0, 1, 2, 3]).unwrap();
        let out = ExhaustiveSearch::default().run_space(&sub).unwrap();
        // Of the 9 trees, fully-split trees through either order coincide:
        // {g-split then both l} == {l-split then both g} → 9 trees map to
        // 8 distinct leaf partitionings.
        assert_eq!(out.distinct_partitionings, 8);
    }

    #[test]
    fn exhaustive_value_dominates_heuristic() {
        let space = small_space();
        for objective in [Objective::MostUnfair, Objective::LeastUnfair] {
            let crit = FairnessCriterion::new(objective, Aggregator::Mean);
            let exact = ExhaustiveSearch::new(crit).run_space(&space).unwrap();
            let greedy = Quantify::new(crit).run_space(&space).unwrap();
            match objective {
                Objective::MostUnfair => {
                    assert!(exact.best_value >= greedy.unfairness - 1e-12)
                }
                Objective::LeastUnfair => {
                    assert!(exact.best_value <= greedy.unfairness + 1e-12)
                }
            }
        }
    }

    #[test]
    fn budget_is_enforced() {
        let space = small_space();
        let err = ExhaustiveSearch::default()
            .with_budget(3)
            .run_space(&space)
            .unwrap_err();
        assert_eq!(err, CoreError::BudgetExceeded { budget: 3 });
        assert_eq!(ExhaustiveSearch::count_trees(&space, 3), None);
    }

    #[test]
    fn best_partitioning_is_full_disjoint() {
        let space = small_space();
        let out = ExhaustiveSearch::default().run_space(&space).unwrap();
        assert!(is_full_disjoint(
            &out.best_partitions,
            space.num_individuals()
        ));
    }

    #[test]
    fn cancelled_token_aborts_enumeration() {
        use crate::cancel::{CancelReason, CancelToken, RunBudget};
        let space = small_space();
        let criterion = FairnessCriterion::default().fit_range(&space);
        let token = CancelToken::new();
        token.cancel(CancelReason::Deadline);
        let err = ExhaustiveSearch::new(criterion)
            .with_run_budget(RunBudget::unlimited().with_token(token))
            .run_space(&space)
            .unwrap_err();
        match err {
            CoreError::Cancelled { reason, .. } => {
                assert_eq!(reason, CancelReason::Deadline);
            }
            other => panic!("expected cancellation, got {other:?}"),
        }
    }

    #[test]
    fn enumeration_shares_the_engine_caches() {
        let space = small_space();
        let out = ExhaustiveSearch::default().run_space(&space).unwrap();
        // Enumerated partitionings overlap heavily, so repeated distance
        // lookups are served from the memo.
        assert!(out.engine_stats.emd_cache_hits > 0);
        assert!(out.engine_stats.emd_calls > 0);
        assert!(out.engine_stats.histograms_built > 0);
    }

    #[test]
    fn without_dedupe_skips_tracking() {
        let space = small_space();
        let out = ExhaustiveSearch::default()
            .without_dedupe()
            .run_space(&space)
            .unwrap();
        assert_eq!(out.distinct_partitionings, 0);
        assert!(out.trees_enumerated > 0);
    }

    #[test]
    fn empty_space_errors() {
        // RankingSpace::new rejects empty scores, so build via select error.
        let space = RankingSpace::new(vec![], vec![0.5]).unwrap();
        assert!(space.select(&[]).is_err());
    }
}
