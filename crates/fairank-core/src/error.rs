//! Error type shared by the core fairness-quantification pipeline.

use std::fmt;

use crate::cancel::CancelReason;
use crate::quantify::SearchStats;

/// Errors produced by the core crate.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A histogram specification was invalid (zero bins, inverted or
    /// degenerate range, non-finite bounds).
    InvalidHistogramSpec(String),
    /// Two histograms that must be comparable (same spec) were not.
    IncompatibleHistograms { left: usize, right: usize },
    /// A [`crate::space::RankingSpace`] failed validation.
    InvalidSpace(String),
    /// A scoring function referenced an observed attribute that the table
    /// does not provide.
    UnknownObservedAttribute(String),
    /// A scoring input was structurally invalid (e.g. a ranking that is not
    /// a permutation, or an empty weight list).
    InvalidScoring(String),
    /// Scores contained a non-finite value at the given row.
    NonFiniteScore { row: usize, value: f64 },
    /// The exhaustive search exceeded its configured enumeration budget.
    BudgetExceeded { budget: u64 },
    /// The operation needs at least one individual.
    EmptyInput,
    /// A cooperative [`crate::cancel::RunBudget`] aborted the search.
    /// Carries the statistics accumulated before the run was cut short.
    Cancelled {
        reason: CancelReason,
        stats: SearchStats,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidHistogramSpec(msg) => {
                write!(f, "invalid histogram specification: {msg}")
            }
            CoreError::IncompatibleHistograms { left, right } => write!(
                f,
                "histograms are incompatible: {left} bins vs {right} bins"
            ),
            CoreError::InvalidSpace(msg) => write!(f, "invalid ranking space: {msg}"),
            CoreError::UnknownObservedAttribute(name) => {
                write!(f, "unknown observed attribute: {name:?}")
            }
            CoreError::InvalidScoring(msg) => write!(f, "invalid scoring input: {msg}"),
            CoreError::NonFiniteScore { row, value } => {
                write!(f, "non-finite score {value} at row {row}")
            }
            CoreError::BudgetExceeded { budget } => write!(
                f,
                "exhaustive enumeration exceeded its budget of {budget} partitionings"
            ),
            CoreError::EmptyInput => write!(f, "operation requires at least one individual"),
            CoreError::Cancelled { reason, stats } => write!(
                f,
                "search cancelled ({reason}) after {} node evaluations and {} EMD calls",
                stats.nodes_evaluated, stats.emd_calls
            ),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(CoreError, &str)> = vec![
            (
                CoreError::InvalidHistogramSpec("zero bins".into()),
                "zero bins",
            ),
            (
                CoreError::IncompatibleHistograms { left: 4, right: 8 },
                "4 bins vs 8 bins",
            ),
            (CoreError::InvalidSpace("bad".into()), "bad"),
            (
                CoreError::UnknownObservedAttribute("rating".into()),
                "rating",
            ),
            (CoreError::InvalidScoring("empty".into()), "empty"),
            (
                CoreError::NonFiniteScore {
                    row: 3,
                    value: f64::NAN,
                },
                "row 3",
            ),
            (CoreError::BudgetExceeded { budget: 10 }, "10"),
            (CoreError::EmptyInput, "at least one"),
            (
                CoreError::Cancelled {
                    reason: CancelReason::Deadline,
                    stats: SearchStats::default(),
                },
                "deadline exceeded",
            ),
        ];
        for (err, needle) in cases {
            let rendered = err.to_string();
            assert!(
                rendered.contains(needle),
                "{rendered:?} should contain {needle:?}"
            );
        }
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CoreError::EmptyInput, CoreError::EmptyInput);
        assert_ne!(
            CoreError::EmptyInput,
            CoreError::BudgetExceeded { budget: 1 }
        );
    }
}
