//! # fairank-core
//!
//! The scientific contribution of *FaiRank* (EDBT 2019): quantifying the
//! group fairness of a scoring function over a set of individuals by
//! searching the space of partitionings induced by protected attributes.
//!
//! The pipeline is:
//!
//! 1. Individuals and their **protected attributes** form a
//!    [`space::RankingSpace`], together with one score per individual
//!    produced by a [`scoring::ScoreSource`] (a transparent linear function,
//!    raw scores, or — under function opacity — a ranking).
//! 2. Each candidate partition's score distribution is summarized as a
//!    fixed-bin [`histogram::Histogram`].
//! 3. Distances between partitions are [`emd`] (Earth Mover's Distance)
//!    values between their histograms.
//! 4. [`fairness`] aggregates pairwise distances into a single
//!    `unfairness(P, f)` number, under a configurable aggregator
//!    (mean/max/min/variance/…) and objective (most vs. least unfair).
//! 5. [`quantify`] implements the paper's Algorithm 1 (`QUANTIFY`), a greedy
//!    decision-tree-style search for an extremal partitioning;
//!    [`exhaustive`] enumerates the full tree-partitioning space as the
//!    exact (exponential) baseline.
//! 6. All searches evaluate splits through [`engine::SplitEngine`], which
//!    caches per-row bin indices, histograms, and EMDs (keyed by partition
//!    path) and scores candidate splits in one counting pass — bit-identical
//!    results, an order of magnitude less work.
//!
//! The crate is deliberately self-contained: it knows nothing about CSV
//! files, anonymization or marketplaces. Those substrates live in the
//! sibling crates and feed this one through [`space::RankingSpace`] and the
//! [`scoring::ObservedTable`] trait.

pub mod beam;
pub mod cancel;
pub mod emd;
pub mod engine;
pub mod error;
pub mod exhaustive;
pub mod fault;
pub mod explain;
pub mod exposure;
pub mod fairness;
pub mod fingerprint;
pub mod histogram;
pub mod incremental;
pub mod pairwise;
pub mod partition;
pub mod plan;
pub mod quantify;
pub mod scoring;
pub mod space;
pub mod subgroup;

pub use cancel::{CancelReason, CancelToken, RunBudget};
pub use error::{CoreError, Result};
