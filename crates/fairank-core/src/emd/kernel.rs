//! The structure-of-arrays 1-D EMD kernel.
//!
//! [`one_d::emd_1d_mass`] folds one pair at a time: for each bin it updates
//! a running CDF difference and accumulates its absolute value. That fold
//! is a chain of dependent adds, so a per-pair loop leaves the FPU idle
//! between bins. This module transposes the computation: masses are laid
//! out bin-major (`soa[bin * width + slot]`, one *slot* per histogram of
//! the batch) and **all pairs advance together**, one bin level at a time,
//! over dense `cum`/`total` accumulator arrays indexed by pair. The inner
//! loop over pairs is branchless (`abs` is a sign-bit mask) and carries no
//! loop-to-loop dependency, so it autovectorizes; the dependent chain of
//! any single pair is unchanged.
//!
//! Bit-identity: for a fixed pair `p`, the kernel executes *exactly* the
//! reference sequence — `cum[p] += a_i − b_i; total[p] += |cum[p]|` for
//! `i = 0, 1, …` — only interleaved with other pairs' (independent) IEEE
//! operations. Floating-point results depend on the operation sequence per
//! value, not on scheduling across independent values, so every distance is
//! bit-identical (0 ULP) to [`super::backend::OneDBackend`]. The
//! conformance suite (`tests/emd_backend_equivalence.rs`) pins this.

use crate::error::Result;
use crate::histogram::{Histogram, HistogramSpec};

use super::backend::EmdBackend;
use super::EmdBackendKind;

/// One pair of slots (indices into the batch's SoA columns) to fold.
pub(crate) type SlotPair = (u32, u32);

/// Folds every `(a, b)` pair of `pairs` over a bin-major SoA mass matrix
/// (`soa[bin * width + slot]`, `bins × width` entries), appending one
/// distance per pair to `out` in `pairs` order. `cum` and `total` are
/// caller-provided scratch (cleared here) so steady-state callers never
/// reallocate. Empty-histogram conventions are the caller's business: the
/// kernel folds whatever masses it is given (all-zero columns fold to 0).
// The flat argument list IS the design: the kernel's inputs are disjoint
// borrows of caller-owned scratch so the hot loop stays allocation-free;
// bundling them into a struct would force either owned buffers or a
// borrow-splitting wrapper at every call site.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fold_pairs(
    soa: &[f64],
    width: usize,
    bins: usize,
    pairs: &[SlotPair],
    bin_width: f64,
    cum: &mut Vec<f64>,
    total: &mut Vec<f64>,
    out: &mut Vec<f64>,
) {
    debug_assert_eq!(soa.len(), bins * width, "SoA matrix must be bins × width");
    let n = pairs.len();
    cum.clear();
    cum.resize(n, 0.0);
    total.clear();
    total.resize(n, 0.0);
    for bin in 0..bins {
        let level = &soa[bin * width..(bin + 1) * width];
        // Branchless and dependency-free across pairs: each lane updates
        // its own accumulators with the reference fold's two operations.
        for (p, &(a, b)) in pairs.iter().enumerate() {
            let c = cum[p] + (level[a as usize] - level[b as usize]);
            cum[p] = c;
            total[p] += c.abs();
        }
    }
    out.extend(total.iter().map(|t| t * bin_width));
}

/// Scatters each histogram's normalized mass into column `slot` of a
/// bin-major SoA matrix sized `bins × width`.
fn fill_soa(hists: &[Histogram], bins: usize, scratch: &mut Vec<f64>) -> Vec<f64> {
    let width = hists.len();
    let mut soa = vec![0.0f64; bins * width];
    for (slot, h) in hists.iter().enumerate() {
        scratch.clear();
        scratch.resize(bins, 0.0);
        h.mass_into(scratch);
        for (bin, &m) in scratch.iter().enumerate() {
            soa[bin * width + slot] = m;
        }
    }
    soa
}

/// Checks that all histograms of a batch share `spec`, and records which
/// are empty (conventions are applied per pair after the fold).
fn check_batch(hists: &[Histogram], spec: &HistogramSpec) -> Result<Vec<bool>> {
    let probe = Histogram::empty(*spec);
    hists
        .iter()
        .map(|h| probe.check_compatible(h).map(|()| h.is_empty()))
        .collect()
}

/// The structure-of-arrays 1-D backend: bit-identical to
/// [`super::backend::OneDBackend`], batch entry points fold all pairs
/// together one bin level at a time.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelOneDBackend;

impl KernelOneDBackend {
    /// Shared tail of both batch entry points: fold every pair over the
    /// SoA matrix, then overwrite the pairs a convention decides.
    fn fold_batch(
        soa: &[f64],
        width: usize,
        spec: &HistogramSpec,
        empties: &[bool],
        pairs: &[SlotPair],
        out: &mut Vec<f64>,
    ) {
        let base = out.len();
        let mut cum = Vec::new();
        let mut total = Vec::new();
        fold_pairs(
            soa,
            width,
            spec.bins(),
            pairs,
            spec.bin_width(),
            &mut cum,
            &mut total,
            out,
        );
        for (p, &(a, b)) in pairs.iter().enumerate() {
            if let Some(d) =
                super::backend::convention(empties[a as usize], empties[b as usize], spec)
            {
                out[base + p] = d;
            }
        }
    }
}

impl EmdBackend for KernelOneDBackend {
    fn kind(&self) -> EmdBackendKind {
        EmdBackendKind::Kernel
    }

    fn pair(&self, a: &Histogram, b: &Histogram) -> Result<f64> {
        // A single pair has no batch to transpose over; the reference path
        // already is the per-pair fold.
        super::backend::one_d_pair(a, b)
    }

    fn pairwise(&self, hists: &[Histogram], out: &mut Vec<f64>) -> Result<()> {
        let Some(first) = hists.first() else {
            return Ok(());
        };
        let spec = *first.spec();
        let empties = check_batch(hists, &spec)?;
        let mut scratch = Vec::new();
        let soa = fill_soa(hists, spec.bins(), &mut scratch);
        let n = hists.len();
        let mut pairs = Vec::with_capacity(n.saturating_sub(1) * n / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                pairs.push((i as u32, j as u32));
            }
        }
        Self::fold_batch(&soa, n, &spec, &empties, &pairs, out);
        Ok(())
    }

    fn cross(&self, left: &[Histogram], right: &[Histogram], out: &mut Vec<f64>) -> Result<()> {
        let Some(first) = left.first() else {
            return Ok(());
        };
        let spec = *first.spec();
        let mut empties = check_batch(left, &spec)?;
        empties.extend(check_batch(right, &spec)?);
        // One SoA over both sides: left occupies slots 0..|L|, right the
        // rest, so a pair is (left slot, |L| + right slot).
        let width = left.len() + right.len();
        let mut scratch = Vec::new();
        let mut soa = vec![0.0f64; spec.bins() * width];
        for (slot, h) in left.iter().chain(right.iter()).enumerate() {
            scratch.clear();
            scratch.resize(spec.bins(), 0.0);
            h.mass_into(&mut scratch);
            for (bin, &m) in scratch.iter().enumerate() {
                soa[bin * width + slot] = m;
            }
        }
        let mut pairs = Vec::with_capacity(left.len() * right.len());
        for i in 0..left.len() {
            for j in 0..right.len() {
                pairs.push((i as u32, (left.len() + j) as u32));
            }
        }
        Self::fold_batch(&soa, width, &spec, &empties, &pairs, out);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emd::backend::OneDBackend;
    use crate::histogram::HistogramSpec;

    fn hist(scores: &[f64]) -> Histogram {
        Histogram::from_scores(HistogramSpec::unit(10).unwrap(), scores.iter().copied())
    }

    #[test]
    fn fold_pairs_matches_reference_fold_bitwise() {
        let masses = [
            vec![0.5, 0.25, 0.125, 0.0625, 0.0625],
            vec![0.1, 0.2, 0.3, 0.25, 0.15],
            vec![0.0, 0.0, 1.0, 0.0, 0.0],
            vec![0.33, 0.17, 0.0, 0.29, 0.21],
        ];
        let bins = 5;
        let width = masses.len();
        let mut soa = vec![0.0; bins * width];
        for (slot, m) in masses.iter().enumerate() {
            for (bin, &v) in m.iter().enumerate() {
                soa[bin * width + slot] = v;
            }
        }
        let pairs: Vec<SlotPair> =
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 0)];
        let (mut cum, mut total, mut out) = (Vec::new(), Vec::new(), Vec::new());
        fold_pairs(&soa, width, bins, &pairs, 0.2, &mut cum, &mut total, &mut out);
        for (k, &(a, b)) in pairs.iter().enumerate() {
            let reference =
                crate::emd::one_d::emd_1d_mass(&masses[a as usize], &masses[b as usize], 0.2);
            assert_eq!(out[k].to_bits(), reference.to_bits(), "pair {a},{b}");
        }
    }

    #[test]
    fn kernel_batches_are_bit_identical_to_one_d() {
        let hists = vec![
            hist(&[0.05, 0.15, 0.15, 0.35, 0.75, 0.85]),
            hist(&[0.25, 0.45, 0.55, 0.95]),
            hist(&[0.95, 0.95]),
            hist(&[0.05]),
        ];
        let mut reference = Vec::new();
        OneDBackend.pairwise(&hists, &mut reference).unwrap();
        let mut kernel = Vec::new();
        KernelOneDBackend.pairwise(&hists, &mut kernel).unwrap();
        assert_eq!(reference.len(), kernel.len());
        for (r, k) in reference.iter().zip(&kernel) {
            assert_eq!(r.to_bits(), k.to_bits());
        }
        let (left, right) = hists.split_at(2);
        let mut reference = Vec::new();
        OneDBackend.cross(left, right, &mut reference).unwrap();
        let mut kernel = Vec::new();
        KernelOneDBackend.cross(left, right, &mut kernel).unwrap();
        for (r, k) in reference.iter().zip(&kernel) {
            assert_eq!(r.to_bits(), k.to_bits());
        }
    }

    #[test]
    fn kernel_batches_honor_empty_conventions() {
        let spec = HistogramSpec::unit(10).unwrap();
        let empty = Histogram::empty(spec);
        let full = hist(&[0.5]);
        let hists = vec![empty.clone(), full.clone(), Histogram::empty(spec)];
        let mut out = Vec::new();
        KernelOneDBackend.pairwise(&hists, &mut out).unwrap();
        assert_eq!(out, vec![1.0, 0.0, 1.0]);
        let mut out = Vec::new();
        KernelOneDBackend
            .cross(std::slice::from_ref(&empty), &hists, &mut out)
            .unwrap();
        assert_eq!(out, vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn kernel_rejects_incompatible_specs_in_batches() {
        let a = Histogram::empty(HistogramSpec::unit(5).unwrap());
        let b = Histogram::empty(HistogramSpec::unit(10).unwrap());
        let mut out = Vec::new();
        assert!(KernelOneDBackend.pairwise(&[a.clone(), b.clone()], &mut out).is_err());
        let mut out = Vec::new();
        assert!(KernelOneDBackend
            .cross(std::slice::from_ref(&a), std::slice::from_ref(&b), &mut out)
            .is_err());
    }
}
